#!/usr/bin/env python3
"""Quickstart: build a PMC power model in five steps.

Runs the paper's complete methodology — data acquisition, PMC event
selection, Equation 1 formulation, and 10-fold cross validation — on a
reduced campaign (six workloads, two DVFS states) so it finishes in a
few seconds.

    python examples/quickstart.py
"""

from repro import get_workload, run_workflow


def main() -> None:
    workloads = [
        get_workload(name)
        for name in ("idle", "busywait", "compute", "memory_read", "md", "swim")
    ]

    print("Running the modeling workflow (acquire -> select -> fit -> CV)…")
    result = run_workflow(
        workloads=workloads,
        frequencies_mhz=(1200, 2400),
        selection_frequency_mhz=2400,
        n_events=4,
    )

    print()
    print(result.summary())

    print()
    print("Selected counters (Algorithm 1):")
    for step in result.selection.steps:
        vif = "n/a" if step.mean_vif != step.mean_vif else f"{step.mean_vif:.2f}"
        print(
            f"  {step.counter:<8s}  R2={step.rsquared:.3f}  "
            f"Adj.R2={step.rsquared_adj:.3f}  mean VIF={vif}"
        )

    print()
    print("Equation 1 coefficients (P = sum a_n*E_n*V^2*f + b*V^2*f + c*V + d):")
    print(result.model.summary())

    print()
    print("Per-workload MAPE of the cross-validated model:")
    for workload, mape in sorted(
        result.validation.per_workload_mape().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {workload:<12s} {mape:6.2f} %")


if __name__ == "__main__":
    main()
