#!/usr/bin/env python3
"""Cross-generation study: does a power model transfer between CPUs?

The paper's outlook asks for "more experiments on different
generations of x86 processors".  This example trains Equation 1 on the
simulated Haswell-EP node, applies it unchanged to a simulated
Skylake-SP node, and then re-runs the methodology natively on Skylake —
showing that the *method* generalizes while the *coefficients* do not.

    python examples/cross_platform.py
"""

from repro import Platform, PowerModel, all_workloads, run_campaign
from repro.core import scenario_cv_all, select_events
from repro.experiments import full_dataset, selected_counters
from repro.hardware import SKYLAKE_SP_CONFIG, SKYLAKE_SP_POWER_PARAMS


def main() -> None:
    haswell_ds = full_dataset()
    hw_counters = selected_counters()

    print("Acquiring the Skylake-SP campaign (2 x 20 cores, 14 nm)…")
    skylake = Platform(SKYLAKE_SP_CONFIG, SKYLAKE_SP_POWER_PARAMS)
    print(f"  {skylake.describe()}")
    skylake_ds = run_campaign(skylake, all_workloads(), [1200, 1600, 2000, 2400])
    print(f"  {skylake_ds.n_samples} phase profiles")

    print()
    print("1) Haswell-trained model, native cross validation:")
    hw_cv = scenario_cv_all(haswell_ds, hw_counters)
    print(f"   MAPE = {hw_cv.mape:.2f} %")

    print()
    print("2) The same fitted model applied verbatim to Skylake:")
    hw_model = PowerModel(hw_counters).fit(haswell_ds)
    cross = hw_model.evaluate(skylake_ds)
    print(f"   MAPE = {cross['mape']:.2f} %  (coefficients do not transfer)")

    print()
    print("3) Methodology re-run natively on Skylake:")
    sk_selection = select_events(skylake_ds.filter(frequency_mhz=2000), 6)
    print(f"   selected counters: {', '.join(sk_selection.selected)}")
    sk_cv = scenario_cv_all(skylake_ds, sk_selection.selected)
    print(f"   native CV MAPE = {sk_cv.mape:.2f} %")

    print()
    print(
        "Conclusion: re-running selection + fitting per machine restores "
        "accuracy;\nthe statistical approach is portable, the model instance "
        "is not."
    )


if __name__ == "__main__":
    main()
