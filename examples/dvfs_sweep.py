#!/usr/bin/env python3
"""DVFS sweep: the full Section IV evaluation at paper scale.

Acquires the complete campaign (all 20 workloads, five frequencies,
full PMU multiplexing — the cache makes re-runs instant), reruns the
counter selection, and reports how estimation accuracy behaves per
DVFS state, including the voltage readings the model consumes instead
of a voltage model.

    python examples/dvfs_sweep.py
"""

import numpy as np

from repro import PAPER_FREQUENCIES_MHZ, PowerModel
from repro.core import cv_out_of_fold_predictions
from repro.experiments import full_dataset, selected_counters
from repro.stats import mape


def main() -> None:
    print("Building (or loading) the full measurement campaign…")
    dataset = full_dataset()
    counters = selected_counters()
    print(
        f"  {dataset.n_samples} phase profiles, "
        f"{len(set(dataset.workloads))} workloads, "
        f"{len(set(map(int, dataset.frequency_mhz)))} DVFS states"
    )
    print(f"  selected counters: {', '.join(counters)}")

    print()
    print("Average measured voltage and power per DVFS state:")
    print(f"  {'f [MHz]':>8s} {'V [V]':>8s} {'P min':>8s} {'P max':>8s}")
    for f in PAPER_FREQUENCIES_MHZ:
        sub = dataset.filter(frequency_mhz=f)
        print(
            f"  {f:>8d} {sub.voltage_v.mean():>8.3f} "
            f"{sub.power_w.min():>8.1f} {sub.power_w.max():>8.1f}"
        )

    print()
    print("Cross-validated estimation error per DVFS state:")
    preds, fold_mapes, _ = cv_out_of_fold_predictions(dataset, counters)
    print(f"  overall MAPE: {np.mean(fold_mapes):.2f} %")
    for f in PAPER_FREQUENCIES_MHZ:
        mask = dataset.frequency_mhz == f
        err = mape(dataset.power_w[mask], preds[mask])
        print(f"  {f:>6d} MHz: {err:5.2f} %")

    print()
    print("Fit across all DVFS states (single model, Equation 1):")
    fitted = PowerModel(counters).fit(dataset)
    print(
        f"  R2={fitted.rsquared:.4f}  Adj.R2={fitted.rsquared_adj:.4f}  "
        f"beta={fitted.beta:.2f} W/(V^2*GHz)  "
        f"static @0.97V = {fitted.gamma * 0.97 + fitted.delta:.1f} W"
    )


if __name__ == "__main__":
    main()
