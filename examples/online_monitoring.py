#!/usr/bin/env python3
"""Deploying the model: calibrate once, save, monitor live.

The full deployment story: fit Equation 1 against the calibrated
reference instrumentation, persist the model to JSON, restore it on a
"production" host (same machine, no sensors needed), and stream power
estimates from counter samples at sub-second cadence — the "real-time
power information" of the paper's introduction.

    python examples/online_monitoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Platform, PowerModel, get_workload
from repro.core import estimate_run, load_model, save_model
from repro.experiments import full_dataset, selected_counters


def main() -> None:
    # --- calibration site: fit against reference sensors --------------
    dataset = full_dataset()
    counters = selected_counters()
    fitted = PowerModel(counters).fit(dataset)
    model_file = Path(tempfile.gettempdir()) / "haswell_power_model.json"
    save_model(fitted, model_file)
    print(f"Calibrated model saved to {model_file}")
    print(f"  counters: {', '.join(counters)}")
    print(f"  fit: R2={fitted.rsquared:.4f}")

    # --- production site: restore and monitor -------------------------
    deployed = load_model(model_file)
    platform = Platform()
    run = platform.execute(get_workload("mgrid331"), 2400, 24)
    timeline = estimate_run(
        platform, run, deployed, interval_s=0.5, smoothing=0.4
    )

    print()
    print("Live monitoring of mgrid331 (0.5 s cadence), estimate vs sensor:")
    step = max(len(timeline.times_s) // 18, 1)
    peak = timeline.measured_w.max()
    for i in range(0, len(timeline.times_s), step):
        bar = "#" * int(timeline.smoothed_w[i] / peak * 40)
        print(
            f"  t={timeline.times_s[i]:6.1f}s  est={timeline.smoothed_w[i]:6.1f} W"
            f"  sensor={timeline.measured_w[i]:6.1f} W  {bar}"
        )
    print()
    print(
        f"streamed estimate vs reference sensors: "
        f"MAPE {timeline.mape():.2f} % over {timeline.times_s.size} samples; "
        f"phase transitions tracked: {timeline.tracks_phase_changes()}"
    )


if __name__ == "__main__":
    main()
