#!/usr/bin/env python3
"""Energy-aware DVFS tuning — what the power model is *for*.

The paper's abstract motivates PMC power models with "energy-aware
performance optimization".  This example closes that loop: it uses the
energy-accounting layer to find the energy- and EDP-optimal frequency
per workload (race-to-idle vs slow-down), and the attribution layer to
explain *where* the watts go.

    python examples/energy_tuning.py
"""

import numpy as np

from repro import Platform, PowerModel, get_workload
from repro.core import (
    attribute,
    dvfs_energy_profile,
    optimal_frequency,
)
from repro.experiments import full_dataset, selected_counters
from repro.hardware import PAPER_FREQUENCIES_MHZ


def main() -> None:
    platform = Platform()

    print("Work-normalized DVFS sweep (same instruction budget per state):")
    print(f"  {'workload':<12s} {'E-optimal':>10s} {'EDP-optimal':>12s}  note")
    for name in ("compute", "addpd", "memory_read", "ilbdc", "md"):
        profile = dvfs_energy_profile(
            platform, get_workload(name), 24, PAPER_FREQUENCIES_MHZ
        )
        e_opt = optimal_frequency(profile, objective="energy")
        edp_opt = optimal_frequency(profile, objective="edp")
        # Memory-bound codes gain so little runtime from frequency that
        # even the delay-penalizing EDP objective keeps them slow.
        note = (
            "memory-bound: slow down even for EDP"
            if edp_opt.frequency_mhz <= 1600
            else "race for performance, slow for energy"
        )
        print(
            f"  {name:<12s} {e_opt.frequency_mhz:>8d} MHz "
            f"{edp_opt.frequency_mhz:>10d} MHz  {note}"
        )

    print()
    print("Where do the watts go?  Model-based attribution @ 2400 MHz, 24T:")
    dataset = full_dataset()
    counters = selected_counters()
    fitted = PowerModel(counters).fit(dataset)
    for name in ("busywait", "memory_read", "md"):
        sub = dataset.filter(workloads=[name], frequency_mhz=2400)
        i = int(np.argmax(sub.threads))
        att = attribute(
            fitted,
            counter_rates={c: float(sub.column(c)[i]) for c in counters},
            voltage_v=float(sub.voltage_v[i]),
            frequency_mhz=2400.0,
        )
        parts = ", ".join(
            f"{fam}={watts:.0f}W"
            for fam, watts in sorted(
                att.by_family().items(), key=lambda kv: -kv[1]
            )
        )
        print(f"  {name:<12s} total={att.total_w:6.1f} W  ({parts})")

    print()
    print(
        "The model turns one wall-power number into an actionable "
        "decomposition —\nthe 'component resolution' advantage the "
        "paper's introduction claims for\nmodel-based estimation."
    )


if __name__ == "__main__":
    main()
