#!/usr/bin/env python3
"""Stability study: what happens on workloads the model never saw?

Reproduces the scenario analysis of Section IV-B (Fig. 4 / Fig. 5a)
and then goes beyond the paper: it uses the randomized workload
generator to ask how much synthetic training diversity would have been
needed to close the generalization gap.

    python examples/unseen_workloads.py
"""

from repro import Platform, PowerModel, generate_workloads, run_campaign
from repro.core import run_all_scenarios
from repro.experiments import full_dataset, selected_counters
from repro.workloads import WIDE_SPACE


def main() -> None:
    dataset = full_dataset()
    counters = selected_counters()

    print("The four training scenarios of the paper (Fig. 4):")
    scenarios = run_all_scenarios(dataset, counters)
    for name, result in scenarios.items():
        print(f"  {name:<22s} MAPE = {result.mape:5.2f} %")

    spec_to_synth = scenarios["2:synthetic-to-spec"]
    print()
    print("Scenario 2 per-workload bias (positive = overestimated):")
    for workload, bias in sorted(
        spec_to_synth.per_workload_bias().items(), key=lambda kv: -kv[1]
    ):
        marker = " <- systematic" if abs(bias) > 10 else ""
        print(f"  {workload:<10s} {bias:+7.1f} W{marker}")

    print()
    print("Beyond the paper: training on randomly generated workloads")
    platform = Platform()
    spec = dataset.filter(suite="spec_omp2012")
    for n in (8, 16, 32):
        train_ds = run_campaign(
            platform,
            generate_workloads(n, space=WIDE_SPACE, seed=99, thread_counts=(1, 8, 24)),
            [1200, 2000, 2600],
        )
        fitted = PowerModel(counters).fit(train_ds)
        err = fitted.evaluate(spec)["mape"]
        print(f"  {n:>3d} generated workloads -> SPEC MAPE = {err:5.2f} %")
    print(
        "\nRandomly generated training sets covering the latent "
        "dimensions beat the\nhand-written kernels (scenario 2 above), "
        "though returns are not monotone —\nthe paper's diversity "
        "conclusion, quantified."
    )


if __name__ == "__main__":
    main()
