"""The repraudit rule catalogue (AU001–AU011).

Each rule encodes one methodological validity condition the paper's
reporting implicitly relies on.  Thresholds come from
:class:`~repro.audit.config.AuditConfig` and are calibrated so the
repository's own reference workflows (Tables I–IV) audit ``pass``;
they flag regressions of rigor, not the baseline.

Rules are duck-typed over :class:`~repro.audit.framework.AuditContext`
fields and stay silent on artifacts that do not carry the fields they
check.  Diagnostics that cannot run on an artifact (degenerate
residuals, too few rows) are themselves evidence and are graded, not
swallowed.
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

import numpy as np

from repro.audit.config import AuditConfig
from repro.audit.framework import AuditContext, AuditFinding, AuditRule
from repro.reporting import SEVERITY_FAIL, SEVERITY_MAJOR, SEVERITY_MINOR
from repro.stats.errors import (
    DegenerateResidualsError,
    EstimationError,
)

__all__ = ["all_rules", "rules_by_id"]


def _finite(value: Optional[float]) -> bool:
    return value is not None and math.isfinite(value)


class ResidualNormalityRule(AuditRule):
    """AU001 — small-sample inference needs near-normal residuals.

    On large samples the CLT covers non-normal errors, so the rule only
    fires below ``normality_small_n`` observations, where a rejected
    Jarque–Bera test means the quoted t/p statistics are not to be
    trusted.
    """

    id = "AU001"
    name = "residual-normality"
    description = (
        "Jarque–Bera rejects residual normality on a sample too small "
        "for asymptotic inference"
    )

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.ols is None:
            return []
        resid = np.asarray(ctx.ols.residuals, dtype=np.float64)
        if resid.size == 0:  # restored models do not persist residuals
            return []
        if resid.size >= config.normality_small_n:
            return []
        from repro.stats.diagnostics import jarque_bera

        try:
            test = jarque_bera(resid)
        except DegenerateResidualsError:
            return []  # a collapsed fit is AU009's finding, not ours
        except EstimationError as exc:
            return [
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"residual normality untestable: {exc}",
                )
            ]
        if not test.rejects_normality(config.alpha):
            return []
        return [
            self.finding(
                ctx,
                SEVERITY_MINOR,
                f"Jarque–Bera rejects residual normality "
                f"(p={test.pvalue:.3g}) on only n={test.n} observations; "
                "t/p statistics are unreliable below "
                f"n={config.normality_small_n}",
            )
        ]


class HeteroscedasticityCovRule(AuditRule):
    """AU002 — heteroscedastic residuals demand a robust covariance.

    The paper adopts HC3 exactly because Breusch–Pagan rejects
    homoscedasticity on power residuals; quoting nonrobust standard
    errors on such a fit invalidates every downstream interval.
    """

    id = "AU002"
    name = "heteroscedasticity-cov-mismatch"
    description = (
        "Breusch–Pagan rejects homoscedasticity but the fit quotes a "
        "nonrobust covariance"
    )

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.ols is None or ctx.exog is None:
            return []
        cov = (ctx.cov_type or getattr(ctx.ols, "cov_type", "")).lower()
        if cov != "nonrobust":
            return []  # HC0–HC3 already price the heteroscedasticity in
        from repro.stats.diagnostics import breusch_pagan

        try:
            test = breusch_pagan(
                np.asarray(ctx.ols.residuals, dtype=np.float64), ctx.exog
            )
        except DegenerateResidualsError:
            return []
        except EstimationError as exc:
            return [
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    "nonrobust covariance quoted but heteroscedasticity "
                    f"is untestable: {exc}",
                )
            ]
        if not test.rejects_homoscedasticity(config.alpha):
            return []
        return [
            self.finding(
                ctx,
                SEVERITY_MAJOR,
                f"Breusch–Pagan rejects homoscedasticity "
                f"(LM={test.statistic:.1f}, p={test.pvalue:.3g}) yet the "
                "fit quotes nonrobust standard errors; use HC3",
            )
        ]


class FoldAdequacyRule(AuditRule):
    """AU003 — cross-validation folds must be large enough to mean
    anything: every training fold needs rows to estimate the parameters
    and every held-out fold needs rows for its error statistic."""

    id = "AU003"
    name = "cv-fold-adequacy"
    description = "fold count is inadequate for the sample size"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.n_splits is None or ctx.n_samples is None:
            return []
        findings: List[AuditFinding] = []
        n, k_folds = ctx.n_samples, ctx.n_splits
        train_rows = n - math.ceil(n / k_folds)
        if ctx.n_params is not None and ctx.n_params > 0:
            needed = config.min_train_per_param * ctx.n_params
            if train_rows < needed:
                findings.append(
                    self.finding(
                        ctx,
                        SEVERITY_MAJOR,
                        f"{k_folds}-fold CV on n={n} leaves ~{train_rows} "
                        f"training rows for {ctx.n_params} parameters "
                        f"(need ≥ {needed:.0f}); fold fits are "
                        "underdetermined in practice",
                    )
                )
        test_rows = n // k_folds
        if test_rows < config.min_fold_rows:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"{k_folds}-fold CV on n={n} holds out only "
                    f"~{test_rows} rows per fold (< "
                    f"{config.min_fold_rows}); per-fold error statistics "
                    "are noise",
                )
            )
        return findings


class SampleAdequacyRule(AuditRule):
    """AU004 — an R² quoted on too few observations per parameter is
    mostly a property of the parameter count, not the model."""

    id = "AU004"
    name = "obs-per-param"
    description = "too few observations per fitted parameter"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        n = ctx.n_samples
        k = ctx.n_params
        if (n is None or k is None) and ctx.ols is not None:
            n = int(getattr(ctx.ols, "nobs", 0)) or n
            params = getattr(ctx.ols, "params", None)
            if params is not None:
                k = int(np.asarray(params).size)
        if not n or not k:
            return []
        ratio = n / k
        if ratio < config.hard_obs_per_param:
            severity = SEVERITY_MAJOR
        elif ratio < config.min_obs_per_param:
            severity = SEVERITY_MINOR
        else:
            return []
        return [
            self.finding(
                ctx,
                severity,
                f"only {ratio:.1f} observations per parameter "
                f"(n={n}, k={k}); quoted fit quality is not "
                "generalizable below "
                f"{config.min_obs_per_param:.0f} obs/param",
            )
        ]


class LeverageRule(AuditRule):
    """AU005 — rows with hat-diagonal near 1 pin the fit to themselves;
    the R² earned on them is self-fulfilling."""

    id = "AU005"
    name = "high-leverage"
    description = "design rows with dominating leverage"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.exog is None:
            return []
        from repro.stats.diagnostics import leverage_scores

        try:
            h = leverage_scores(ctx.exog)
        except EstimationError as exc:
            return [
                self.finding(
                    ctx, SEVERITY_MINOR, f"leverage untestable: {exc}"
                )
            ]
        h_max = float(h.max())
        if h_max <= config.leverage_minor:
            return []
        n_high = int(np.count_nonzero(h > config.leverage_minor))
        severity = (
            SEVERITY_MAJOR if h_max > config.leverage_major else SEVERITY_MINOR
        )
        return [
            self.finding(
                ctx,
                severity,
                f"max leverage h={h_max:.3f} ({n_high} row(s) above "
                f"{config.leverage_minor}); the fit is pinned to these "
                "rows and R² overstates what was learned",
            )
        ]


class VifEscalationRule(AuditRule):
    """AU006 — a selection that ends above the paper's VIF threshold
    (or on an outright collinear design) produced coefficients whose
    individual interpretation is void."""

    id = "AU006"
    name = "vif-escalation"
    description = "final selected counter set exceeds the VIF threshold"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.selection is None:
            return []
        steps = getattr(ctx.selection, "steps", ())
        if not steps:
            return []
        final = steps[-1]
        v = float(getattr(final, "mean_vif", float("nan")))
        if math.isnan(v):
            return []  # single-counter models have no VIF
        if math.isinf(v):
            return [
                self.finding(
                    ctx,
                    SEVERITY_FAIL,
                    "final counter set is exactly collinear "
                    "(mean VIF = inf); at least one selected counter is a "
                    "linear combination of the others",
                )
            ]
        if v <= config.vif_threshold:
            return []
        return [
            self.finding(
                ctx,
                SEVERITY_MAJOR,
                f"final mean VIF {v:.1f} exceeds the threshold "
                f"{config.vif_threshold:.0f}; per-counter α coefficients "
                "are not individually interpretable",
            )
        ]


class MissingCIRule(AuditRule):
    """AU007 — a point estimate without a usable interval is a bare
    number; degenerate standard errors (all-zero or non-finite) mean no
    uncertainty was actually quantified."""

    id = "AU007"
    name = "missing-ci"
    description = "point estimates reported without usable intervals"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if ctx.has_ci is False:
            return [
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    "artifact reports bare point estimates with no "
                    "interval estimates attached",
                )
            ]
        if ctx.ols is None:
            return []
        bse = np.asarray(getattr(ctx.ols, "bse", ()), dtype=np.float64)
        if bse.size == 0:
            return []
        if not np.all(np.isfinite(bse)):
            return [
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    "coefficient standard errors are non-finite; "
                    "confidence intervals cannot be formed",
                )
            ]
        if np.all(bse == 0.0):  # replint: ignore[RL004] -- degenerate-SE detection needs exact zeros
            return [
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    "all coefficient standard errors are exactly zero; "
                    "the quoted estimates carry no uncertainty "
                    "quantification",
                )
            ]
        return []


class R2MapeDisagreementRule(AuditRule):
    """AU008 — R² and MAPE answer different questions; when they tell
    opposite stories the headline number is cherry-picked."""

    id = "AU008"
    name = "r2-mape-disagreement"
    description = "R² and MAPE tell contradictory stories"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        if not _finite(ctx.r2) or not _finite(ctx.mape_pct):
            return []
        r2, mape_pct = float(ctx.r2), float(ctx.mape_pct)
        if (
            r2 >= config.r2_mape_high_r2
            and mape_pct >= config.r2_mape_high_mape_pct
        ):
            return [
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"R²={r2:.3f} suggests an excellent fit but "
                    f"MAPE={mape_pct:.1f}% contradicts it; the variance "
                    "explained is dominated by scale, not accuracy",
                )
            ]
        if (
            mape_pct <= config.r2_mape_low_mape_pct
            and r2 <= config.r2_mape_low_r2
        ):
            return [
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"MAPE={mape_pct:.1f}% looks accurate but "
                    f"R²={r2:.3f} shows almost no variance explained; "
                    "the target barely varies and the relative error "
                    "flatters the model",
                )
            ]
        return []


class SuspiciousPerfectionRule(AuditRule):
    """AU009 — fits too good to be true usually are: leakage,
    duplicated rows, or an identity between target and regressors.
    Numerically perfect or impossible fits grade ``fail`` and block
    strict persistence."""

    id = "AU009"
    name = "suspicious-perfection"
    description = "fit quality is implausibly perfect"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        r2 = ctx.r2
        if r2 is None and ctx.ols is not None:
            r2 = float(getattr(ctx.ols, "rsquared", float("nan")))
        if r2 is None:
            return []
        r2 = float(r2)
        if ctx.ols is not None:
            params = np.asarray(ctx.ols.params, dtype=np.float64)
            if not np.all(np.isfinite(params)):
                return [
                    self.finding(
                        ctx,
                        SEVERITY_FAIL,
                        "fitted coefficients are non-finite; the model "
                        "is unusable",
                    )
                ]
        if not math.isfinite(r2) or r2 > 1.0 + 1e-12:
            return [
                self.finding(
                    ctx,
                    SEVERITY_FAIL,
                    f"R²={r2} is outside [0, 1]; the fit statistics are "
                    "numerically invalid",
                )
            ]
        if r2 >= 1.0 - 1e-12:
            return [
                self.finding(
                    ctx,
                    SEVERITY_FAIL,
                    "R²=1 to machine precision: the target is an exact "
                    "linear function of the regressors (leakage or "
                    "identity), not a measured relationship",
                )
            ]
        if r2 >= config.r2_suspicious:
            return [
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    f"R²={r2:.6f} exceeds the plausibility bound "
                    f"{config.r2_suspicious}; check for duplicated rows "
                    "or target leakage before quoting it",
                )
            ]
        return []


class DegradedProvenanceRule(AuditRule):
    """AU010 — results built from degraded data must say so.  The rule
    surfaces campaign faults, quarantines, dropped counters, workflow
    degradation warnings and online drift next to the numbers they
    taint."""

    id = "AU010"
    name = "degraded-provenance"
    description = "artifact was built from degraded data"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        findings: List[AuditFinding] = []
        findings.extend(self._campaign_findings(ctx))
        findings.extend(self._drift_findings(ctx, config))
        for w in ctx.warnings:
            if w.startswith("fastfit:"):
                continue  # AU011's signal, not a data-provenance note
            findings.append(
                self.finding(
                    ctx, SEVERITY_MINOR, f"degraded-data provenance: {w}"
                )
            )
        return findings

    def _campaign_findings(self, ctx: AuditContext) -> List[AuditFinding]:
        rep = ctx.campaign
        if rep is None:
            return []
        findings: List[AuditFinding] = []
        quarantined = getattr(rep, "quarantined", ())
        dropped = getattr(rep, "dropped_counters", ())
        degraded = int(getattr(rep, "degraded_phases", 0))
        if quarantined:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    f"{len(quarantined)} campaign cell(s) quarantined; "
                    "the dataset under-represents part of the "
                    "workload × frequency grid",
                )
            )
        if dropped:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    f"counters dropped for insufficient coverage: "
                    f"{', '.join(dropped)}; the candidate pool the model "
                    "chose from was incomplete",
                )
            )
        if degraded:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"{degraded} merged phase(s) dropped for incomplete "
                    "counter coverage",
                )
            )
        retries = int(getattr(rep, "retries", 0))
        merge_issues = getattr(rep, "merge_issues", ())
        if retries or merge_issues:
            parts = []
            if retries:
                parts.append(f"{retries} retried attempt(s)")
            if merge_issues:
                parts.append(f"{len(merge_issues)} merge issue(s)")
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    "campaign recovered from faults ("
                    + ", ".join(parts)
                    + "); results are reproducible but the acquisition "
                    "was not clean",
                )
            )
        return findings

    def _drift_findings(
        self, ctx: AuditContext, config: AuditConfig
    ) -> List[AuditFinding]:
        rep = ctx.drift
        if rep is None:
            return []
        findings: List[AuditFinding] = []
        if getattr(rep, "breaker_open", False) or getattr(
            rep, "drift_detected", False
        ):
            what = []
            if getattr(rep, "drift_detected", False):
                frac = float(getattr(rep, "drift_fraction", 0.0))
                what.append(f"drift detected ({frac:.0%} implausible)")
            if getattr(rep, "breaker_open", False):
                what.append("circuit breaker open at session end")
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MAJOR,
                    "; ".join(what)
                    + " — the fitted model no longer describes the "
                    "observed platform",
                )
            )
        degraded_fraction = float(getattr(rep, "degraded_fraction", 0.0))
        if (
            not findings
            and degraded_fraction > config.drift_degraded_fraction
        ):
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_MINOR,
                    f"{degraded_fraction:.0%} of online estimates came "
                    "from the baseline fallback, not the model",
                )
            )
        return findings


#: Shape of the fold-fallback provenance note emitted by
#: ``cross_validate`` and surfaced through workflow warnings.
_FASTFIT_NOTE = re.compile(
    r"fastfit: (\d+)/(\d+) fold\(s\) fell back to the exact fit path"
)


class FastfitFallbackRule(AuditRule):
    """AU011 — the Gram fast path declines folds whose training design
    is degraded or ill-conditioned, so a mostly-declined CV run is a
    data-quality anomaly wearing a performance costume."""

    id = "AU011"
    name = "fastfit-fallback-rate"
    description = "anomalous fraction of CV folds declined the fast path"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        findings: List[AuditFinding] = []
        for w in ctx.warnings:
            m = _FASTFIT_NOTE.search(w)
            if not m:
                continue
            declined, total = int(m.group(1)), int(m.group(2))
            if total == 0:
                continue
            fraction = declined / total
            if fraction > config.fastfit_fallback_fraction:
                findings.append(
                    self.finding(
                        ctx,
                        SEVERITY_MINOR,
                        f"{declined}/{total} CV folds "
                        f"({fraction:.0%}) were declined by the Gram "
                        "fast path; the per-fold training designs are "
                        "borderline degenerate",
                    )
                )
        return findings


class ExcessiveReassignmentRule(AuditRule):
    """AU012 — a scheduled campaign that spent a large share of its
    cells on reassignment (node death, blown deadlines) or gave cells
    up entirely produced correct-but-expensively-acquired data; the
    cluster's health belongs next to the numbers it measured."""

    id = "AU012"
    name = "excessive-reassignment"
    description = "cluster placement was heavily disrupted"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        rep = ctx.campaign
        sched = getattr(rep, "scheduling", None) if rep is not None else None
        if sched is None:
            return []
        findings: List[AuditFinding] = []
        total = int(getattr(sched, "total_cells", 0))
        completed = int(getattr(sched, "completed_cells", 0))
        quarantined = getattr(sched, "quarantined", {})
        if total > 0 and completed == 0:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_FAIL,
                    f"the cluster completed 0/{total} cell placements — "
                    "no usable acquisition happened",
                )
            )
            return findings
        disrupted = int(
            getattr(
                sched,
                "disrupted_cells",
                int(getattr(sched, "reassigned_cells", 0))
                + len(quarantined),
            )
        )
        fraction = disrupted / total if total > 0 else 0.0
        if fraction > config.reassign_major_fraction:
            severity = SEVERITY_MAJOR
        elif fraction > config.reassign_minor_fraction:
            severity = SEVERITY_MINOR
        else:
            return findings
        reassignments = int(getattr(sched, "reassignments", 0))
        detail = (
            f"{disrupted}/{total} cell(s) ({fraction:.0%}) lost at least "
            f"one placement ({reassignments} reassignment(s)"
        )
        if quarantined:
            detail += f", {len(quarantined)} quarantined"
        detail += (
            ") — the cluster redid a large share of the campaign; "
            "check node health before trusting throughput numbers"
        )
        findings.append(self.finding(ctx, severity, detail))
        return findings


class FleetDegradationRule(AuditRule):
    """AU013 — a fleet service quietly answering a growing share of its
    nodes from quarantine or the baseline fallback is drifting away
    from the model it claims to serve; the degradation must be graded
    next to the estimates, never silently absorbed."""

    id = "AU013"
    name = "fleet-degradation"
    description = "too many fleet nodes quarantined or degraded"

    def check(self, ctx: AuditContext, config: AuditConfig) -> List[AuditFinding]:
        fleet = ctx.fleet
        if fleet is None:
            return []
        findings: List[AuditFinding] = []
        n_nodes = int(getattr(fleet, "n_nodes", 0))
        if n_nodes == 0:
            return findings
        healthy = int(getattr(fleet, "healthy_nodes", 0))
        quarantined = int(getattr(fleet, "quarantined_nodes", 0))
        degraded = int(getattr(fleet, "degraded_nodes", 0))
        if healthy == 0:
            findings.append(
                self.finding(
                    ctx,
                    SEVERITY_FAIL,
                    f"no healthy node left in a {n_nodes}-node fleet "
                    f"({quarantined} quarantined, {degraded} degraded) — "
                    "the service is effectively serving the baseline "
                    "model everywhere",
                )
            )
            return findings
        fraction = (quarantined + degraded) / n_nodes
        if fraction > config.fleet_degraded_major_fraction:
            severity = SEVERITY_MAJOR
        elif fraction > config.fleet_degraded_minor_fraction:
            severity = SEVERITY_MINOR
        else:
            return findings
        findings.append(
            self.finding(
                ctx,
                severity,
                f"{quarantined + degraded}/{n_nodes} node(s) "
                f"({fraction:.0%}) are quarantined or serving the "
                "baseline fallback — estimates for those nodes no "
                "longer reflect live counters; investigate drift before "
                "trusting fleet-level power numbers",
            )
        )
        return findings


def all_rules() -> List[AuditRule]:
    """Fresh instances of the full catalogue, in id order."""
    return [
        ResidualNormalityRule(),
        HeteroscedasticityCovRule(),
        FoldAdequacyRule(),
        SampleAdequacyRule(),
        LeverageRule(),
        VifEscalationRule(),
        MissingCIRule(),
        R2MapeDisagreementRule(),
        SuspiciousPerfectionRule(),
        DegradedProvenanceRule(),
        FastfitFallbackRule(),
        ExcessiveReassignmentRule(),
        FleetDegradationRule(),
    ]


def rules_by_id() -> dict:
    return {r.id: r for r in all_rules()}
