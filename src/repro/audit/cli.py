"""``repraudit`` command line: ``python -m repro.audit [models...]``.

With no arguments the paper-reference workflows are audited (counter
selection, fitted model, four validation scenarios).  With paths, each
is loaded as a saved model JSON (:mod:`repro.core.persistence`) and
audited individually.

Exit codes follow the shared :mod:`repro.reporting` convention: 0 when
the gate passes, 1 on gating findings, 2 on usage or I/O error.  The
default gate tolerates ``minor`` findings; ``--strict`` requires a
``pass`` verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.audit.config import AuditConfig
from repro.audit.engine import model_context, run_audit
from repro.audit.framework import AuditReport
from repro.audit.reference import reference_contexts
from repro.audit.rules import all_rules
from repro.reporting import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    render_json_report,
    render_text_report,
)
from repro.seeding import DEFAULT_SEED

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repraudit",
        description=(
            "Statistical-rigor audit over fitted artifacts: residual "
            "assumptions, sample adequacy, collinearity, uncertainty "
            "reporting and degraded-data provenance, graded on the "
            "pass/minor/major/fail verdict scale."
        ),
    )
    parser.add_argument(
        "models", nargs="*", metavar="MODEL_JSON",
        help=(
            "saved model files to audit (default: audit the paper's "
            "reference workflows)"
        ),
    )
    parser.add_argument(
        "-f", "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="also write the report to this file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="require a 'pass' verdict (default gate tolerates 'minor')",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root seed for the reference workflows (default: %(default)s)",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. AU004,AU009)",
    )
    parser.add_argument(
        "--disable", metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render(report: AuditReport, fmt: str) -> str:
    if fmt == "json":
        return render_json_report(
            report.findings,
            checked=len(report.artifacts),
            checked_key="artifacts_checked",
            extra={
                "verdict": report.verdict,
                "artifacts": list(report.artifacts),
                "rules_run": list(report.rules_run),
            },
        )
    return render_text_report(
        "repraudit",
        report.findings,
        checked=len(report.artifacts),
        noun="artifacts",
        trailer=f"verdict: {report.verdict}",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:28s} {rule.description}")
        return EXIT_CLEAN

    config = AuditConfig.load()
    if args.select:
        config.enable = {
            s.strip().upper() for s in args.select.split(",") if s.strip()
        }
    if args.disable:
        config.disable |= {
            s.strip().upper() for s in args.disable.split(",") if s.strip()
        }

    try:
        if args.models:
            from repro.core.persistence import load_model

            contexts = []
            for raw in args.models:
                path = Path(raw)
                model = load_model(path)
                contexts.append(
                    model_context(model, artifact=path.name)
                )
        else:
            contexts = reference_contexts(seed=args.seed)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"repraudit: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    report = run_audit(contexts, config)
    rendered = _render(report, args.format)
    print(rendered)
    if args.output:
        from repro.io.atomic import atomic_write_text

        atomic_write_text(Path(args.output), rendered + "\n")
    return (
        EXIT_CLEAN if report.gate_passed(strict=args.strict) else EXIT_FINDINGS
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
