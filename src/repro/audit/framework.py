"""Core abstractions of the ``repraudit`` statistical-rigor pass.

Where :mod:`repro.lint` audits *source trees*, this pass audits
*fitted artifacts*: the OLS fits, selection tables, cross-validation
summaries, campaign reports and drift tallies the pipeline produces at
scale.  The paper's headline claims — per-scenario R², MAPE, VIF
trajectories, cross-validated errors — are statistical artifacts, and
nothing about a number being computed makes it methodologically valid.
Each validity condition is encoded as an :class:`AuditRule`; rules
emit :class:`AuditFinding` objects graded on the Statistical Rigor QA
verdict scale (``pass``/``minor``/``major``/``fail``), and an
:class:`AuditReport` folds the findings of one audited result set into
a single verdict that gates reporting and persistence.

Rules receive an :class:`AuditContext` — a uniform, duck-typed view of
whatever artifact is under audit — and check only the fields they
understand, so one catalogue serves models, CV runs, scenario results,
campaigns and online sessions alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.reporting import (
    SEVERITY_FAIL,
    SEVERITY_MAJOR,
    SEVERITY_MINOR,
    SEVERITY_PASS,
    BaseFinding,
    severity_rank,
    worst_severity,
)

__all__ = [
    "AuditFinding",
    "AuditReport",
    "AuditRule",
    "AuditContext",
    "AuditGateError",
    "VERDICTS",
]

#: Verdict scale, least to most severe (shared with
#: :mod:`repro.reporting`; re-exported here because it is the audit
#: layer's primary vocabulary).
VERDICTS = (SEVERITY_PASS, SEVERITY_MINOR, SEVERITY_MAJOR, SEVERITY_FAIL)


class AuditGateError(RuntimeError):
    """A ``fail``-verdict artifact hit a strict audit gate.

    Raised by consumers that refuse to proceed on failed audits — most
    prominently strict-mode model persistence
    (:func:`repro.core.persistence.save_model`).
    """


@dataclass(frozen=True, order=True)
class AuditFinding(BaseFinding):
    """One diagnostic: a rigor rule violated by a fitted artifact."""

    artifact: str
    """Which audited artifact tripped the rule (e.g. ``model``,
    ``scenario:3:cv-all``, ``campaign``)."""
    rule_id: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in (SEVERITY_MINOR, SEVERITY_MAJOR, SEVERITY_FAIL):
            raise ValueError(
                f"finding severity must be minor/major/fail, got "
                f"{self.severity!r}"
            )

    def format(self) -> str:
        return (
            f"{self.artifact}: {self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "artifact": self.artifact,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class AuditReport:
    """Verdict-graded account of one audit pass.

    ``verdict`` is the worst finding severity (``pass`` for an empty
    finding set) — the single value reporting and persistence gate on.
    """

    findings: Tuple[AuditFinding, ...]
    artifacts: Tuple[str, ...] = ()
    """Labels of every artifact the pass examined (also the ones that
    produced no findings — an empty report over zero artifacts is
    vacuous, not a pass)."""
    rules_run: Tuple[str, ...] = ()

    @property
    def verdict(self) -> str:
        return worst_severity([f.severity for f in self.findings])

    @property
    def clean(self) -> bool:
        return not self.findings

    def findings_for(self, artifact: str) -> Tuple[AuditFinding, ...]:
        return tuple(f for f in self.findings if f.artifact == artifact)

    def worst_at_least(self, severity: str) -> bool:
        """True when the verdict reaches the given severity."""
        return severity_rank(self.verdict) >= severity_rank(severity)

    def gate_passed(self, *, strict: bool = False) -> bool:
        """The exit-code gate: strict rejects any non-``pass`` verdict,
        the default rejects ``major``/``fail``."""
        if strict:
            return self.verdict == SEVERITY_PASS
        return not self.worst_at_least(SEVERITY_MAJOR)

    def merged(self, other: "AuditReport") -> "AuditReport":
        """Union of two passes (deduplicated, sorted)."""
        return AuditReport(
            findings=tuple(sorted(set(self.findings + other.findings))),
            artifacts=tuple(dict.fromkeys(self.artifacts + other.artifacts)),
            rules_run=tuple(dict.fromkeys(self.rules_run + other.rules_run)),
        )

    def summary(self) -> str:
        """Human-readable multi-line account."""
        lines = [
            f"audit verdict: {self.verdict} "
            f"({len(self.findings)} finding"
            f"{'s' if len(self.findings) != 1 else ''} over "
            f"{len(self.artifacts)} artifact"
            f"{'s' if len(self.artifacts) != 1 else ''})"
        ]
        lines.extend(f"  {f.format()}" for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "artifacts": list(self.artifacts),
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "count": len(self.findings),
        }


@dataclass
class AuditContext:
    """Duck-typed view of one audited artifact.

    Every field is optional; a rule checks only the fields it
    understands and stays silent on artifacts that do not carry them.
    The builders in :mod:`repro.audit.engine` populate contexts from
    the concrete result types (``FittedPowerModel``, ``WorkflowResult``,
    ``CampaignReport``, ``DriftReport``, …) without this module ever
    importing them — the audit layer must not depend on the layers it
    audits.
    """

    artifact: str
    kind: str = "model"
    """``model`` / ``cv`` / ``scenario`` / ``selection`` / ``campaign``
    / ``drift`` / ``fleet`` / ``workflow``."""

    # --- regression-fit view -------------------------------------------
    ols: Optional[object] = None
    """An ``OLSResult``-shaped object (params/bse/residuals/rsquared)."""
    exog: Optional[object] = None
    """Design matrix the fit ran on (needed for BP/leverage checks)."""
    estimator: str = "ols"
    cov_type: Optional[str] = None
    r2: Optional[float] = None
    mape_pct: Optional[float] = None

    # --- cross-validation view -----------------------------------------
    n_samples: Optional[int] = None
    n_params: Optional[int] = None
    n_splits: Optional[int] = None
    fold_mapes: Tuple[float, ...] = ()

    # --- pipeline-artifact view ----------------------------------------
    selection: Optional[object] = None
    """A ``SelectionResult``-shaped object (steps with mean_vif)."""
    campaign: Optional[object] = None
    """A ``CampaignReport``-shaped object."""
    drift: Optional[object] = None
    """A ``DriftReport``-shaped object."""
    fleet: Optional[object] = None
    """A ``FleetReport``-shaped object (serving-layer health roll-up)."""
    warnings: Tuple[str, ...] = ()
    """Degraded-data provenance notes attached to the artifact."""
    has_ci: Optional[bool] = None
    """Whether the artifact reports interval estimates next to points;
    ``None`` derives it from ``ols.bse`` when available."""


class AuditRule:
    """Base class: subclasses set ``id``, ``name``, ``description`` and
    implement :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: AuditContext, config) -> List[AuditFinding]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, ctx: AuditContext, severity: str, message: str
    ) -> AuditFinding:
        return AuditFinding(
            artifact=ctx.artifact,
            rule_id=self.id,
            severity=severity,
            message=message,
        )
