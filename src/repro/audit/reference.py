"""Reference-workflow audit: the four paper pipelines under the gate.

``repraudit`` with no arguments runs the rule catalogue over the
artifacts behind the paper's headline tables — the counter selection
(Table I), the fitted Equation 1 model, and the four validation
scenarios (Tables II–IV / Fig. 4) — all built from the shared cached
campaign.  A clean checkout audits ``pass``; CI runs this in strict
mode so any statistical-rigor regression fails the build.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.audit.config import AuditConfig
from repro.audit.engine import (
    model_context,
    run_audit,
    scenario_context,
    selection_context,
)
from repro.audit.framework import AuditContext, AuditReport
from repro.seeding import DEFAULT_SEED

__all__ = ["reference_contexts", "audit_reference"]


def reference_contexts(
    *,
    seed: int = DEFAULT_SEED,
    dataset=None,
    counters=None,
) -> List[AuditContext]:
    """Contexts for the paper-reference artifacts.

    ``dataset``/``counters`` are injectable for tests; by default the
    shared cached campaign and its Algorithm 1 selection are used.
    """
    from repro.core.model import PowerModel
    from repro.core.scenarios import run_all_scenarios
    from repro.experiments.data import (
        full_dataset,
        selection_result,
    )

    if dataset is None:
        dataset = full_dataset(seed=seed)
    selection = None
    if counters is None:
        selection = selection_result(seed=seed)
        counters = selection.selected
    model = PowerModel(counters).fit(dataset)
    n_params = int(np.asarray(model.ols.params).size)

    contexts = [model_context(model, dataset)]
    if selection is not None:
        contexts.append(selection_context(selection))
    scenarios = run_all_scenarios(dataset, counters, seed=seed)
    contexts.extend(
        scenario_context(res, n_params=n_params, artifact=f"scenario:{name}")
        for name, res in scenarios.items()
    )
    return contexts


def audit_reference(
    *,
    seed: int = DEFAULT_SEED,
    config: Optional[AuditConfig] = None,
    dataset=None,
    counters=None,
) -> AuditReport:
    """Audit the Table I–IV reference workflows."""
    return run_audit(
        reference_contexts(seed=seed, dataset=dataset, counters=counters),
        config,
    )
