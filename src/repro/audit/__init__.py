"""repraudit — statistical-rigor audit over fitted artifacts.

Where :mod:`repro.lint` gates the *source tree*, this package gates the
*results*: every fitted model, cross-validation summary, scenario
result, campaign report and online-drift tally can be run through a
catalogue of methodological validity rules (AU001–AU013) and graded on
the ``pass``/``minor``/``major``/``fail`` verdict scale.  The verdict
gates reporting and model persistence; CI audits the paper-reference
workflows in strict mode.

Entry points
------------
* :func:`audit_model` / :func:`audit_workflow` / :func:`audit_campaign`
  / :func:`audit_drift` — one-call audits of the concrete result types;
* :func:`~repro.audit.reference.audit_reference` — the Table I–IV
  reference workflows;
* ``repraudit`` / ``python -m repro.audit`` — the command line.

Configuration lives in ``[tool.repro.audit]`` of ``pyproject.toml``
(see :class:`~repro.audit.config.AuditConfig`).
"""

from repro.audit.config import AuditConfig, PERSISTENCE_MODES
from repro.audit.engine import (
    audit_campaign,
    audit_drift,
    audit_fleet,
    audit_model,
    audit_workflow,
    campaign_context,
    drift_context,
    fleet_context,
    model_context,
    run_audit,
    scenario_context,
    selection_context,
    workflow_contexts,
)
from repro.audit.framework import (
    VERDICTS,
    AuditContext,
    AuditFinding,
    AuditGateError,
    AuditReport,
    AuditRule,
)
from repro.audit.reference import audit_reference, reference_contexts
from repro.audit.rules import all_rules, rules_by_id

__all__ = [
    "AuditConfig",
    "PERSISTENCE_MODES",
    "AuditContext",
    "AuditFinding",
    "AuditGateError",
    "AuditReport",
    "AuditRule",
    "VERDICTS",
    "run_audit",
    "audit_model",
    "audit_workflow",
    "audit_campaign",
    "audit_drift",
    "audit_fleet",
    "audit_reference",
    "reference_contexts",
    "model_context",
    "scenario_context",
    "selection_context",
    "campaign_context",
    "drift_context",
    "fleet_context",
    "workflow_contexts",
    "all_rules",
    "rules_by_id",
]
