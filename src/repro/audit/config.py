"""``[tool.repro.audit]`` configuration loaded from ``pyproject.toml``.

All thresholds default to values calibrated against the repository's
own reference workflows (the Table I–IV pipelines audit ``pass`` out
of the box); the pyproject section only needs to list deviations.

Example::

    [tool.repro.audit]
    disable = ["AU001"]
    persistence-mode = "strict"
    r2-suspicious = 0.9995
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Set

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # degrade to defaults

__all__ = ["AuditConfig", "PERSISTENCE_MODES"]

#: How :func:`repro.core.persistence.save_model` treats a ``fail``
#: verdict: ignore it, warn about it, or refuse to persist.
PERSISTENCE_MODES = ("off", "warn", "strict")


@dataclass
class AuditConfig:
    """Resolved repraudit configuration."""

    enable: Optional[Set[str]] = None
    """If set, only these rule ids run."""
    disable: Set[str] = field(default_factory=set)

    alpha: float = 0.05
    """Significance level for the assumption tests (BP, JB)."""
    normality_small_n: int = 40
    """Below this sample size, non-normal residuals undermine t/p
    inference (the CLT has not kicked in); at or above it the rule
    stays quiet — HC3 inference is asymptotic anyway."""
    min_fold_rows: int = 5
    """Fewest held-out rows per CV fold before the fold statistics are
    too noisy to quote."""
    min_train_per_param: float = 3.0
    """Fewest training rows per model parameter a CV fold may fit on."""
    min_obs_per_param: float = 10.0
    """n/k below this rates a quoted R² ``minor`` (rule-of-thumb
    adequacy); below ``hard_obs_per_param`` it rates ``major``."""
    hard_obs_per_param: float = 3.0
    leverage_minor: float = 0.5
    """Hat-diagonal above this: one row dominates its own prediction."""
    leverage_major: float = 0.98
    """Hat-diagonal above this: the fit is pinned to the row; its
    residual is structurally ~0 and R² is partly self-fulfilling."""
    vif_threshold: float = 10.0
    """Mean-VIF escalation bound (Kutner/Hair, quoted in the paper)."""
    r2_suspicious: float = 0.999
    """R² at/above this is flagged as too good — duplicated rows,
    leakage, or an identity fit are the usual culprits."""
    r2_mape_high_r2: float = 0.95
    r2_mape_high_mape_pct: float = 20.0
    """R² ≥ ``r2_mape_high_r2`` with MAPE ≥ this disagree: the variance
    explained and the relative error tell different stories."""
    r2_mape_low_r2: float = 0.5
    r2_mape_low_mape_pct: float = 5.0
    """MAPE ≤ this with R² ≤ ``r2_mape_low_r2`` is the mirror-image
    disagreement (tiny relative error, no variance explained)."""
    fastfit_fallback_fraction: float = 0.5
    """Fast-path decline rate above this is an anomaly worth surfacing:
    the Gram kernels decline degraded or ill-conditioned fits, so a
    mostly-declined run is a data-quality signal, not a perf detail."""
    drift_degraded_fraction: float = 0.25
    """Online sessions serving more than this fraction of estimates
    from the baseline fallback are degraded."""
    reassign_minor_fraction: float = 0.1
    """Scheduled campaigns with more than this fraction of cells
    disrupted (reassigned or quarantined) grade minor (AU012)."""
    reassign_major_fraction: float = 0.25
    """Disruption above this fraction grades major: the cluster spent
    a large share of the campaign redoing lost placements."""
    fleet_degraded_minor_fraction: float = 0.05
    """Fleet services with more than this fraction of nodes quarantined
    or degraded grade minor (AU013)."""
    fleet_degraded_major_fraction: float = 0.20
    """Quarantined/degraded node fraction above this grades major; a
    fleet with no healthy node at all fails outright."""

    persistence_mode: str = "warn"
    """Default :func:`save_model` gate (``off``/``warn``/``strict``)."""

    # ------------------------------------------------------------------
    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        if self.enable is not None:
            return rule_id in self.enable
        return True

    # ------------------------------------------------------------------
    @classmethod
    def from_pyproject(cls, pyproject: Optional[Path]) -> "AuditConfig":
        """Load ``[tool.repro.audit]`` (missing file/section → defaults)."""
        cfg = cls()
        if pyproject is None or not pyproject.is_file() or _toml is None:
            return cfg
        with pyproject.open("rb") as fh:
            data = _toml.load(fh)
        section = data.get("tool", {}).get("repro", {}).get("audit", {})
        if not isinstance(section, dict):
            return cfg
        if "enable" in section:
            cfg.enable = {str(r).upper() for r in section["enable"]}
        if "disable" in section:
            cfg.disable = {str(r).upper() for r in section["disable"]}
        for toml_key, attr, cast in (
            ("alpha", "alpha", float),
            ("normality-small-n", "normality_small_n", int),
            ("min-fold-rows", "min_fold_rows", int),
            ("min-train-per-param", "min_train_per_param", float),
            ("min-obs-per-param", "min_obs_per_param", float),
            ("hard-obs-per-param", "hard_obs_per_param", float),
            ("leverage-minor", "leverage_minor", float),
            ("leverage-major", "leverage_major", float),
            ("vif-threshold", "vif_threshold", float),
            ("r2-suspicious", "r2_suspicious", float),
            ("r2-mape-high-r2", "r2_mape_high_r2", float),
            ("r2-mape-high-mape-pct", "r2_mape_high_mape_pct", float),
            ("r2-mape-low-r2", "r2_mape_low_r2", float),
            ("r2-mape-low-mape-pct", "r2_mape_low_mape_pct", float),
            ("fastfit-fallback-fraction", "fastfit_fallback_fraction", float),
            ("drift-degraded-fraction", "drift_degraded_fraction", float),
            ("reassign-minor-fraction", "reassign_minor_fraction", float),
            ("reassign-major-fraction", "reassign_major_fraction", float),
            (
                "fleet-degraded-minor-fraction",
                "fleet_degraded_minor_fraction",
                float,
            ),
            (
                "fleet-degraded-major-fraction",
                "fleet_degraded_major_fraction",
                float,
            ),
        ):
            if toml_key in section:
                setattr(cfg, attr, cast(section[toml_key]))
        if "persistence-mode" in section:
            mode = str(section["persistence-mode"])
            if mode not in PERSISTENCE_MODES:
                raise ValueError(
                    f"persistence-mode must be one of {PERSISTENCE_MODES}, "
                    f"got {mode!r}"
                )
            cfg.persistence_mode = mode
        return cfg

    @classmethod
    def load(cls, start: Optional[Path] = None) -> "AuditConfig":
        """Config from the nearest pyproject at/above ``start`` (cwd)."""
        from repro.lint.config import find_pyproject

        return cls.from_pyproject(find_pyproject(start or Path.cwd()))
