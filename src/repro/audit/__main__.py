"""``python -m repro.audit`` entry point."""

import sys

from repro.audit.cli import main

if __name__ == "__main__":
    sys.exit(main())
