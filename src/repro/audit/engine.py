"""Audit engine: build contexts from fitted artifacts and run rules.

The builders here are the only place the audit layer touches concrete
result types — and even then only through duck typing plus one lazy
import of :func:`repro.core.features.design_matrix` (needed to
reconstruct the design a model was fit on).  The core layers import
:mod:`repro.audit`, never the reverse.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.audit.config import AuditConfig
from repro.audit.framework import AuditContext, AuditReport, AuditRule
from repro.audit.rules import all_rules

__all__ = [
    "run_audit",
    "audit_model",
    "audit_workflow",
    "audit_campaign",
    "audit_drift",
    "audit_fleet",
    "model_context",
    "scenario_context",
    "selection_context",
    "campaign_context",
    "drift_context",
    "fleet_context",
    "workflow_contexts",
]


def run_audit(
    contexts: Iterable[AuditContext],
    config: Optional[AuditConfig] = None,
    rules: Optional[Sequence[AuditRule]] = None,
) -> AuditReport:
    """Run the (enabled) rule catalogue over a set of artifact contexts."""
    cfg = config or AuditConfig()
    active = [
        r for r in (rules if rules is not None else all_rules())
        if cfg.rule_enabled(r.id)
    ]
    contexts = list(contexts)
    findings = []
    for ctx in contexts:
        for rule in active:
            findings.extend(rule.check(ctx, cfg))
    return AuditReport(
        findings=tuple(sorted(set(findings))),
        artifacts=tuple(dict.fromkeys(c.artifact for c in contexts)),
        rules_run=tuple(r.id for r in active),
    )


# --------------------------------------------------------------------------
# context builders


def model_context(
    model,
    dataset=None,
    *,
    artifact: str = "model",
) -> AuditContext:
    """Context for a ``FittedPowerModel`` (or bare ``OLSResult``).

    ``dataset`` (the training data) enables the design-dependent checks
    — heteroscedasticity, leverage; without it the residual- and
    coefficient-level rules still run.
    """
    ols = getattr(model, "ols", model)
    exog = None
    mape_pct = None
    if dataset is not None and hasattr(model, "counters"):
        from repro.core.features import design_matrix

        exog = design_matrix(dataset, model.counters)
        mape_pct = float(model.evaluate(dataset)["mape"])
    params = np.asarray(getattr(ols, "params", ()), dtype=np.float64)
    return AuditContext(
        artifact=artifact,
        kind="model",
        ols=ols,
        exog=exog,
        estimator=getattr(model, "estimator", "ols"),
        cov_type=getattr(model, "cov_type", getattr(ols, "cov_type", None)),
        r2=float(getattr(ols, "rsquared", float("nan"))),
        mape_pct=mape_pct,
        n_samples=int(getattr(ols, "nobs", 0)) or None,
        n_params=int(params.size) or None,
    )


def scenario_context(
    scenario,
    *,
    n_params: Optional[int] = None,
    artifact: Optional[str] = None,
) -> AuditContext:
    """Context for a ``ScenarioResult`` (per-scenario validation)."""
    fold_mapes = tuple(float(m) for m in getattr(scenario, "fold_mapes", ()))
    n_samples = int(getattr(scenario.validation, "n_samples", 0)) or None
    return AuditContext(
        artifact=artifact or f"scenario:{getattr(scenario, 'name', '?')}",
        kind="scenario",
        r2=float(scenario.r2),
        mape_pct=float(scenario.mape),
        n_samples=n_samples,
        n_params=n_params,
        n_splits=len(fold_mapes) or None,
        fold_mapes=fold_mapes,
    )


def selection_context(selection, *, artifact: str = "selection") -> AuditContext:
    """Context for a ``SelectionResult`` (the chosen counter set)."""
    return AuditContext(
        artifact=artifact, kind="selection", selection=selection
    )


def campaign_context(report, *, artifact: str = "campaign") -> AuditContext:
    """Context for a ``CampaignReport`` (acquisition provenance)."""
    return AuditContext(artifact=artifact, kind="campaign", campaign=report)


def drift_context(report, *, artifact: str = "drift") -> AuditContext:
    """Context for a ``DriftReport`` (online estimation session)."""
    return AuditContext(artifact=artifact, kind="drift", drift=report)


def fleet_context(report, *, artifact: str = "fleet") -> AuditContext:
    """Context for a ``FleetReport`` (serving-layer health roll-up)."""
    return AuditContext(artifact=artifact, kind="fleet", fleet=report)


def workflow_contexts(result) -> List[AuditContext]:
    """Contexts for every artifact a ``WorkflowResult`` carries."""
    warnings = tuple(getattr(result, "warnings", ()))
    contexts = [
        model_context(result.model, result.full_dataset),
        selection_context(result.selection),
        scenario_context(
            result.validation,
            n_params=int(np.asarray(result.model.ols.params).size),
            artifact="validation:cv",
        ),
    ]
    if warnings:
        contexts.append(
            AuditContext(
                artifact="workflow", kind="workflow", warnings=warnings
            )
        )
    return contexts


# --------------------------------------------------------------------------
# one-call audits


def audit_model(
    model,
    dataset=None,
    *,
    config: Optional[AuditConfig] = None,
    artifact: str = "model",
) -> AuditReport:
    """Audit one fitted model (the persistence-gate entry point)."""
    return run_audit(
        [model_context(model, dataset, artifact=artifact)], config
    )


def audit_workflow(result, *, config: Optional[AuditConfig] = None) -> AuditReport:
    """Audit everything a workflow run produced."""
    return run_audit(workflow_contexts(result), config)


def audit_campaign(report, *, config: Optional[AuditConfig] = None) -> AuditReport:
    """Audit a campaign's acquisition provenance."""
    return run_audit([campaign_context(report)], config)


def audit_drift(report, *, config: Optional[AuditConfig] = None) -> AuditReport:
    """Audit an online estimation session."""
    return run_audit([drift_context(report)], config)


def audit_fleet(report, *, config: Optional[AuditConfig] = None) -> AuditReport:
    """Audit a fleet service's health roll-up (AU013)."""
    return run_audit([fleet_context(report)], config)
