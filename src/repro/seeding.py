"""Deterministic random-stream derivation for the whole reproduction.

Every stochastic component (sensor noise, run-to-run counter variation,
latent workload factors, …) draws from a :class:`numpy.random.Generator`
derived from a root seed plus a structured key, e.g.::

    rng = derive_rng(seed, "sensor", socket_id, run_index)

Two properties matter:

* **bit-reproducibility** — the same root seed regenerates every table
  and figure exactly, across processes and platforms;
* **independence** — streams for different keys are statistically
  independent, so adding a new noise source never perturbs existing
  experiment outputs (numpy's ``SeedSequence.spawn``-style keying).
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Union

import numpy as np
from numpy.random import PCG64, Generator
from numpy.random.bit_generator import ISeedSequence

__all__ = [
    "derive_seed",
    "derive_rng",
    "SeedHasher",
    "DEFAULT_SEED",
    "seedseq_state_words",
    "rng_from_state_words",
]

#: Root seed used by all experiments unless explicitly overridden.
DEFAULT_SEED = 20170529  # IPDPSW 2017 workshop date

_Key = Union[str, int, float, bytes]


def _encode(part: _Key) -> bytes:
    if isinstance(part, bytes):
        return b"b" + part
    if isinstance(part, bool):
        return b"o" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i" + str(part).encode()
    if isinstance(part, float):
        return b"f" + repr(part).encode()
    if isinstance(part, str):
        return b"s" + part.encode()
    raise TypeError(f"unsupported key part type: {type(part).__name__}")


def derive_seed(root: int, *key: _Key) -> int:
    """Derive a 64-bit child seed from a root seed and a structured key.

    The key parts are length-prefixed and hashed with BLAKE2b so that
    ``("ab", "c")`` and ``("a", "bc")`` produce different seeds.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for part in key:
        enc = _encode(part)
        h.update(len(enc).to_bytes(4, "little"))
        h.update(enc)
    return int.from_bytes(h.digest(), "little")


def derive_rng(root: int, *key: _Key) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the given key path."""
    return np.random.default_rng(derive_seed(root, *key))


class SeedHasher:
    """Incremental :func:`derive_seed` over a shared key prefix.

    Hot loops (the tracer derives one stream per plugin per phase) pay
    :func:`derive_seed` for the full key on every call even though most
    parts repeat.  A ``SeedHasher`` absorbs the repeated prefix into one
    BLAKE2b state; each :meth:`seed` call then only copies the state
    and hashes the varying suffix.  Because the parts are
    length-prefixed identically, ``SeedHasher(root, *a).seed(*b) ==
    derive_seed(root, *a, *b)`` holds exactly for every split of the
    key — pinned by ``tests/test_seeding.py``.
    """

    def __init__(self, root: int, *prefix: _Key) -> None:
        h = hashlib.blake2b(digest_size=8)
        h.update(str(int(root)).encode())
        for part in prefix:
            enc = _encode(part)
            h.update(len(enc).to_bytes(4, "little"))
            h.update(enc)
        self._state = h

    def child(self, *suffix: _Key) -> "SeedHasher":
        """A new hasher whose prefix extends this one by ``suffix``.

        ``SeedHasher(root, *a).child(*b).seed(*c) ==
        derive_seed(root, *a, *b, *c)`` exactly: the child just absorbs
        more of the shared prefix into the copied BLAKE2b state, so hot
        loops can hash a constant head once and reuse it.
        """
        child = SeedHasher.__new__(SeedHasher)
        h = self._state.copy()
        for part in suffix:
            enc = _encode(part)
            h.update(len(enc).to_bytes(4, "little"))
            h.update(enc)
        child._state = h
        return child

    @staticmethod
    def encode(*parts: _Key) -> bytes:
        """The length-prefixed byte form of a key suffix.

        Feeding ``encode(*k)`` to the ``*_encoded`` methods is exactly
        equivalent to passing ``*k`` to :meth:`child`/:meth:`seed`/
        :meth:`rng` — the hash absorbs identical bytes either way.
        Callers that derive many streams against the same suffix (the
        tracer hits every phase name once per plugin per run) encode it
        once and skip the per-call re-encoding.
        """
        out = []
        for part in parts:
            enc = _encode(part)
            out.append(len(enc).to_bytes(4, "little"))
            out.append(enc)
        return b"".join(out)

    def child_encoded(self, blob: bytes) -> "SeedHasher":
        """:meth:`child` over a pre-:meth:`encode`-d suffix."""
        child = SeedHasher.__new__(SeedHasher)
        h = self._state.copy()
        h.update(blob)
        child._state = h
        return child

    def seed_encoded(self, blob: bytes) -> int:
        """:meth:`seed` over a pre-:meth:`encode`-d suffix."""
        h = self._state.copy()
        h.update(blob)
        return int.from_bytes(h.digest(), "little")

    def rng_encoded(self, blob: bytes) -> np.random.Generator:
        """:meth:`rng` over a pre-:meth:`encode`-d suffix."""
        h = self._state.copy()
        h.update(blob)
        return np.random.default_rng(int.from_bytes(h.digest(), "little"))

    def seed(self, *suffix: _Key) -> int:
        """Child seed for the prefix plus ``suffix``."""
        h = self._state.copy()
        for part in suffix:
            enc = _encode(part)
            h.update(len(enc).to_bytes(4, "little"))
            h.update(enc)
        return int.from_bytes(h.digest(), "little")

    def rng(self, *suffix: _Key) -> np.random.Generator:
        """Generator for the prefix plus ``suffix``."""
        return np.random.default_rng(self.seed(*suffix))


# ---------------------------------------------------------------------------
# batched generator construction
# ---------------------------------------------------------------------------
#
# ``np.random.default_rng(seed)`` spends nearly all of its time inside
# ``SeedSequence`` — the entropy-pool expansion that turns a 64-bit seed
# into the four uint64 words PCG64 is seeded from.  That expansion is a
# fixed schedule of elementwise uint32 operations, so a *batch* of seeds
# can run it as a handful of vectorized passes instead of one Python/
# Cython round-trip per seed.  ``seedseq_state_words`` reimplements
# ``SeedSequence(seed).generate_state(4, np.uint64)`` exactly (pinned
# against numpy itself in ``tests/test_seeding.py``, including the
# 0 / small-seed edge cases, where the zero high word makes the 1-word
# and 2-word entropy paths coincide); ``rng_from_state_words`` then
# feeds the precomputed words to numpy's own PCG64 seeding via an
# ``ISeedSequence`` shim, so the resulting generator's stream is
# byte-for-byte the ``default_rng(seed)`` stream.

_SS_XSHIFT = np.uint32(16)
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)


def _hash_const_schedule(init: int, mult: int, n: int):
    """(pre-xor, post-advance) constants of ``n`` sequential hashes.

    ``SeedSequence`` advances one shared hash constant across calls
    (``value ^= hc; hc *= MULT; value *= hc``); with the call order
    fixed, the whole evolution is a compile-time table.
    """
    out = []
    const = init
    for _ in range(n):
        pre = const
        const = (const * mult) & 0xFFFFFFFF
        out.append((np.uint32(pre), np.uint32(const)))
    return out


#: mix_entropy makes 16 hashes: 4 filling the pool, 12 mixing it.
_SS_HASH_A = _hash_const_schedule(0x43B0D7E5, 0x931E8875, 16)
#: generate_state(4, uint64) makes 8 hashes (one per uint32 word).
_SS_HASH_B = _hash_const_schedule(0x8B51F9DD, 0x58F38DED, 8)
#: Pool-mixing visit order: every (src, dst) pair, src-major.
_SS_MIX_ORDER = [(s, d) for s in range(4) for d in range(4) if s != d]


def seedseq_state_words(seeds: Sequence[int]) -> np.ndarray:
    """``SeedSequence(s).generate_state(4, np.uint64)`` for a batch.

    Takes 64-bit seeds, returns an ``(n, 4)`` uint64 array whose row i
    equals numpy's expansion of ``seeds[i]`` bit for bit.  All lanes run
    the two-entropy-word schedule; a seed below 2**32 has a zero high
    word, which hashes exactly as the one-word path's ``hashmix(0)``
    pool filler, so no separate small-seed branch exists.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
    n = seeds.shape[0]

    def hashed(value: np.ndarray, schedule_entry) -> np.ndarray:
        # value is never modified: the xor allocates the working copy.
        pre, mult = schedule_entry
        v = value ^ pre
        np.multiply(v, mult, out=v)
        v ^= v >> _SS_XSHIFT
        return v

    entropy = (
        (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        (seeds >> np.uint64(32)).astype(np.uint32),
        np.zeros(n, dtype=np.uint32),
        np.zeros(n, dtype=np.uint32),
    )
    pool = [hashed(entropy[i], _SS_HASH_A[i]) for i in range(4)]
    for call, (src, dst) in enumerate(_SS_MIX_ORDER, start=4):
        # mix(x, y) = (x*L - y*R) ^ ((x*L - y*R) >> 16), y pre-hashed
        h = hashed(pool[src], _SS_HASH_A[call])
        np.multiply(h, _SS_MIX_R, out=h)
        r = pool[dst] * _SS_MIX_L
        np.subtract(r, h, out=r)
        r ^= r >> _SS_XSHIFT
        pool[dst] = r
    lo = [hashed(pool[i % 4], _SS_HASH_B[i]) for i in range(0, 8, 2)]
    hi = [hashed(pool[i % 4], _SS_HASH_B[i]) for i in range(1, 8, 2)]
    words = np.empty((4, n), dtype=np.uint64)
    for k in range(4):
        words[k] = lo[k]
        words[k] |= hi[k].astype(np.uint64) << np.uint64(32)
    return np.ascontiguousarray(words.T)


class _PrecomputedSeedSequence(ISeedSequence):
    """Feeds pre-expanded state words to a bit generator's seeding.

    Stands in for the ``SeedSequence`` a ``PCG64`` constructor expects,
    answering the single ``generate_state(4, np.uint64)`` request that
    seeding makes with the already-computed words.
    """

    __slots__ = ("_words",)

    def __init__(self, words: np.ndarray) -> None:
        self._words = words

    def generate_state(self, n_words, dtype=np.uint32):
        if n_words != 4 or dtype is not np.uint64:
            raise ValueError(
                "precomputed seed words hold exactly the (4, uint64) "
                f"request of PCG64 seeding, not ({n_words}, {dtype})"
            )
        return self._words


def rng_from_state_words(words: np.ndarray) -> np.random.Generator:
    """The ``default_rng(seed)`` generator for a precomputed words row.

    ``rng_from_state_words(seedseq_state_words([s])[0])`` draws the
    exact stream of ``np.random.default_rng(s)``: PCG64 consumes the
    same four words either way.
    """
    return Generator(PCG64(_PrecomputedSeedSequence(words)))
