"""Deterministic random-stream derivation for the whole reproduction.

Every stochastic component (sensor noise, run-to-run counter variation,
latent workload factors, …) draws from a :class:`numpy.random.Generator`
derived from a root seed plus a structured key, e.g.::

    rng = derive_rng(seed, "sensor", socket_id, run_index)

Two properties matter:

* **bit-reproducibility** — the same root seed regenerates every table
  and figure exactly, across processes and platforms;
* **independence** — streams for different keys are statistically
  independent, so adding a new noise source never perturbs existing
  experiment outputs (numpy's ``SeedSequence.spawn``-style keying).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["derive_seed", "derive_rng", "DEFAULT_SEED"]

#: Root seed used by all experiments unless explicitly overridden.
DEFAULT_SEED = 20170529  # IPDPSW 2017 workshop date

_Key = Union[str, int, float, bytes]


def _encode(part: _Key) -> bytes:
    if isinstance(part, bytes):
        return b"b" + part
    if isinstance(part, bool):
        return b"o" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i" + str(part).encode()
    if isinstance(part, float):
        return b"f" + repr(part).encode()
    if isinstance(part, str):
        return b"s" + part.encode()
    raise TypeError(f"unsupported key part type: {type(part).__name__}")


def derive_seed(root: int, *key: _Key) -> int:
    """Derive a 64-bit child seed from a root seed and a structured key.

    The key parts are length-prefixed and hashed with BLAKE2b so that
    ``("ab", "c")`` and ``("a", "bc")`` produce different seeds.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for part in key:
        enc = _encode(part)
        h.update(len(enc).to_bytes(4, "little"))
        h.update(enc)
    return int.from_bytes(h.digest(), "little")


def derive_rng(root: int, *key: _Key) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the given key path."""
    return np.random.default_rng(derive_seed(root, *key))
