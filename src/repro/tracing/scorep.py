"""Score-P-like tracer: execute a run and record an instrumented trace.

Mirrors the paper's acquisition path: the application (workload) runs
with compiler instrumentation (phase enter/leave events) while the
configured metric plugins asynchronously add power, voltage and PAPI
samples to the trace (Section III-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.hardware.fastsim import fastsim_enabled
from repro.hardware.platform import Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.seeding import SeedHasher, derive_rng, rng_from_state_words
from repro.tracing.otf2 import MetricStream, Trace
from repro.tracing.plugins import ApapiPlugin, MetricPlugin, PowerPlugin, VoltagePlugin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → tracing)
    from repro.faults.injector import FaultInjector

__all__ = ["ScorePTracer", "trace_run", "trace_multiplexed_run"]

#: Shared sample-grid cache of the fast recording path, keyed by the
#: run's phase timings and the sampling interval.  Grids are a pure
#: function of the key, and the cached arrays are read-only, so every
#: trace of every event-set run of an experiment reuses one times
#: array (which also lets profile extraction reuse its window bounds).
_GRID_CACHE: dict = {}
_GRID_CACHE_CAPACITY = 512


def _sample_grids(phases, dt: float):
    """Per-phase sample grids and their concatenation, cached.

    Sample times are a pure function of the phase timings and the
    sampling interval — identical across every event-set run of an
    experiment — so the arrays are computed once, frozen, and shared
    between traces.  (Trace consumers never write times in place; the
    fault injector copies before corrupting.)
    """
    key = (tuple((p.start_s, p.end_s) for p in phases), dt)
    cached = _GRID_CACHE.get(key)
    if cached is not None:
        return cached
    grids = []
    for phase in phases:
        n = max(int(np.floor(phase.duration_s / dt)), 1)
        sample_times = phase.start_s + dt * np.arange(1, n + 1)
        sample_times = sample_times[sample_times <= phase.end_s + 1e-9]
        if sample_times.size == 0:
            sample_times = np.array([phase.end_s])
        sample_times.setflags(write=False)
        grids.append(sample_times)
    shared_times = np.concatenate(grids) if grids else np.array([])
    shared_times.setflags(write=False)
    if len(_GRID_CACHE) >= _GRID_CACHE_CAPACITY:
        _GRID_CACHE.pop(next(iter(_GRID_CACHE)))
    _GRID_CACHE[key] = (tuple(grids), shared_times)
    return _GRID_CACHE[key]


class ScorePTracer:
    """Traces platform executions with a set of metric plugins."""

    def __init__(
        self,
        platform: Platform,
        plugins: Sequence[MetricPlugin],
        *,
        sampling_interval_s: float = 0.1,
        fault_injector: Optional["FaultInjector"] = None,
        fast: Optional[bool] = None,
    ) -> None:
        if sampling_interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not plugins:
            raise ValueError("need at least one metric plugin")
        self.platform = platform
        self.plugins = list(plugins)
        self.sampling_interval_s = sampling_interval_s
        self.fault_injector = fault_injector
        self.fast = fast
        self._defs = {}
        self._plugin_defs = []
        for plugin in self.plugins:
            defs = tuple(plugin.metric_defs())
            for mdef in defs:
                if mdef.name in self._defs:
                    raise ValueError(f"metric {mdef.name!r} provided twice")
                self._defs[mdef.name] = mdef
            self._plugin_defs.append(defs)
        # Constant head of every plugin's RNG key, hashed once (the
        # per-run tail goes through SeedHasher.child in _trace_fast).
        self._plugin_names = [type(plugin).__name__ for plugin in self.plugins]
        self._base_hashers = [
            SeedHasher(platform.seed, "plugin", name)
            for name in self._plugin_names
        ]
        # Encoded phase-name suffixes, filled as names are first seen:
        # every event-set run of an experiment re-derives one stream
        # per (plugin, phase), so the byte form is worth keeping.
        self._name_blobs: dict = {}

    def trace(self, run: RunExecution, *, attempt: int = 0) -> Trace:
        """Record the trace of one executed run.

        Sample times form a run-global grid (plugins sample on their
        own clock, not aligned to phases), as Score-P async plugins do.

        With a ``fault_injector`` attached, the finished trace passes
        through :meth:`~repro.faults.injector.FaultInjector.corrupt_trace`
        keyed by ``attempt`` — the measurement infrastructure, not the
        system under test, is what glitches.

        Two bit-identical recording paths exist: the scalar reference
        below (``REPRO_FASTSIM=0``) and :meth:`_trace_fast`, which
        shares one sample grid across streams and derives plugin RNG
        streams incrementally (see :mod:`repro.hardware.fastsim`).
        """
        if fastsim_enabled(self.fast):
            trace = self._trace_fast(run)
        else:
            trace = self._trace_scalar(run)
        if self.fault_injector is not None:
            trace = self.fault_injector.corrupt_trace(trace, attempt=attempt)
        return trace

    def _trace_scalar(self, run: RunExecution) -> Trace:
        """Scalar reference recording path.

        Routes sampling through each plugin's
        ``sample_phase_reference`` — the original event-at-a-time
        loops, kept verbatim — so ``REPRO_FASTSIM=0`` replays the
        pre-vectorization acquisition implementation end to end.
        """
        trace = Trace(
            meta={
                "workload": run.workload_name,
                "suite": run.suite,
                "frequency_mhz": run.op.frequency_mhz,
                "threads": run.threads,
                "run_index": run.run_index,
            }
        )
        dt = self.sampling_interval_s
        # Per-metric accumulators across phases.
        defs = self._defs
        times_acc: dict = {name: [] for name in defs}
        values_acc: dict = {name: [] for name in defs}

        for phase in run.phases:
            trace.record_enter(
                phase.phase.name, phase.start_s, phase.phase.active_threads
            )
            # Sample grid within the phase: first tick one interval in.
            n = max(int(np.floor(phase.duration_s / dt)), 1)
            sample_times = phase.start_s + dt * np.arange(1, n + 1)
            sample_times = sample_times[sample_times <= phase.end_s + 1e-9]
            if sample_times.size == 0:
                sample_times = np.array([phase.end_s])
            for plugin in self.plugins:
                rng = derive_rng(
                    self.platform.seed,
                    "plugin",
                    type(plugin).__name__,
                    run.workload_name,
                    run.op.frequency_mhz,
                    run.threads,
                    run.run_index,
                    phase.phase.name,
                )
                sampled = plugin.sample_phase_reference(
                    run, phase, sample_times, dt, rng
                )
                for name, vals in sampled.items():
                    if name not in defs:
                        raise ValueError(
                            f"plugin produced undeclared metric {name!r}"
                        )
                    times_acc[name].append(sample_times)
                    values_acc[name].append(np.asarray(vals, dtype=np.float64))
            trace.record_leave(
                phase.phase.name, phase.end_s, phase.phase.active_threads
            )

        for name, mdef in defs.items():
            times = (
                np.concatenate(times_acc[name]) if times_acc[name] else np.array([])
            )
            values = (
                np.concatenate(values_acc[name]) if values_acc[name] else np.array([])
            )
            trace.add_metric_stream(
                MetricStream(definition=mdef, times_s=times, values=values)
            )
        return trace

    def _trace_fast(self, run: RunExecution) -> Trace:
        """Batched recording path, bit-identical to :meth:`_trace_scalar`.

        Every plugin samples the same per-phase grid, so all metric
        streams of a trace share ONE concatenated times array (also
        what lets :func:`repro.tracing.phases.profile_trace` reuse its
        window bounds across streams).  Per-plugin RNG streams come
        from a :class:`~repro.seeding.SeedHasher` holding the hashed
        run prefix — the derived seeds equal ``derive_seed`` on the
        full key by construction, so every draw matches the scalar
        path.
        """
        trace = Trace(
            meta={
                "workload": run.workload_name,
                "suite": run.suite,
                "frequency_mhz": run.op.frequency_mhz,
                "threads": run.threads,
                "run_index": run.run_index,
            }
        )
        dt = self.sampling_interval_s
        phases = run.phases
        for phase in phases:
            trace.record_enter(
                phase.phase.name, phase.start_s, phase.phase.active_threads
            )
            trace.record_leave(
                phase.phase.name, phase.end_s, phase.phase.active_threads
            )
        grids, shared_times = _sample_grids(phases, dt)
        shape = shared_times.shape

        # A primed platform (Platform.prime_rng_words) already expanded
        # every stream seed of this run to PCG64 state words; the entry
        # replays them in phase order — guarded by the phase-name
        # tuple — and skips per-stream hashing and SeedSequence
        # entirely, yielding the very generators a cold construction
        # would.  Cold tracers take the incremental-hasher path: the
        # run suffix and phase names are hashed by every plugin, so
        # each is encoded once (phase-name byte forms persist across
        # the event-set runs re-deriving the same streams).
        plugin_names = self._plugin_names
        names = [phase.phase.name for phase in phases]
        entry = self.platform._rng_words.get(
            (run.workload_name, run.op.frequency_mhz,
             run.threads, run.run_index)
        )
        if entry is not None and entry.get("phases") != tuple(names):
            entry = None
        run_blob = None
        phase_blobs = None
        if entry is None or not all(p in entry for p in plugin_names):
            run_blob = SeedHasher.encode(
                run.workload_name, run.op.frequency_mhz,
                run.threads, run.run_index,
            )
            name_blobs = self._name_blobs
            phase_blobs = []
            for name in names:
                blob = name_blobs.get(name)
                if blob is None:
                    if len(name_blobs) >= 4096:
                        name_blobs.clear()
                    name_blobs[name] = blob = SeedHasher.encode(name)
                phase_blobs.append(blob)

        # Metric names are unique across plugins (checked in __init__),
        # so streams go straight into trace.metrics in definition order.
        metrics = trace.metrics
        for plugin, pname, base, defs in zip(
            self.plugins, plugin_names, self._base_hashers, self._plugin_defs
        ):
            words = entry.get(pname) if entry is not None else None
            if words is not None:
                rngs = [rng_from_state_words(w) for w in words]
            else:
                hasher = base.child_encoded(run_blob)
                rngs = [hasher.rng_encoded(blob) for blob in phase_blobs]
            sampled = plugin.sample_run(run, phases, grids, dt, rngs)
            for mdef in defs:
                values = sampled.pop(mdef.name, None)
                if values is None:
                    empty = np.array([])
                    metrics[mdef.name] = MetricStream.trusted(
                        mdef, empty, empty
                    )
                    continue
                if values.shape != shape:
                    raise ValueError(
                        f"metric {mdef.name!r} not sampled on the shared grid"
                    )
                metrics[mdef.name] = MetricStream.trusted(
                    mdef, shared_times, values
                )
            if sampled:
                raise ValueError(
                    f"plugin produced undeclared metric "
                    f"{next(iter(sampled))!r}"
                )
        return trace


def trace_run(
    platform: Platform,
    run: RunExecution,
    event_set: EventSet,
    *,
    sampling_interval_s: float = 0.1,
    fault_injector: Optional["FaultInjector"] = None,
    attempt: int = 0,
    fast: Optional[bool] = None,
) -> Trace:
    """Convenience: trace a run with the paper's three plugins."""
    tracer = ScorePTracer(
        platform,
        [
            PowerPlugin(platform),
            VoltagePlugin(platform),
            ApapiPlugin(platform, event_set),
        ],
        sampling_interval_s=sampling_interval_s,
        fault_injector=fault_injector,
        fast=fast,
    )
    return tracer.trace(run, attempt=attempt)


def trace_multiplexed_run(
    platform: Platform,
    run: RunExecution,
    events: Sequence[str],
    *,
    sampling_interval_s: float = 0.1,
    fault_injector: Optional["FaultInjector"] = None,
    attempt: int = 0,
    fast: Optional[bool] = None,
) -> Trace:
    """Trace a run with time-division-multiplexed counter sampling:
    all requested events from a single run (see
    :class:`~repro.tracing.plugins.MultiplexedApapiPlugin`)."""
    from repro.tracing.plugins import MultiplexedApapiPlugin

    tracer = ScorePTracer(
        platform,
        [
            PowerPlugin(platform),
            VoltagePlugin(platform),
            MultiplexedApapiPlugin(platform, events),
        ],
        sampling_interval_s=sampling_interval_s,
        fault_injector=fault_injector,
        fast=fast,
    )
    return tracer.trace(run, attempt=attempt)
