"""Score-P-like tracer: execute a run and record an instrumented trace.

Mirrors the paper's acquisition path: the application (workload) runs
with compiler instrumentation (phase enter/leave events) while the
configured metric plugins asynchronously add power, voltage and PAPI
samples to the trace (Section III-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.hardware.platform import Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.seeding import derive_rng
from repro.tracing.otf2 import MetricStream, Trace
from repro.tracing.plugins import ApapiPlugin, MetricPlugin, PowerPlugin, VoltagePlugin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → tracing)
    from repro.faults.injector import FaultInjector

__all__ = ["ScorePTracer", "trace_run", "trace_multiplexed_run"]


class ScorePTracer:
    """Traces platform executions with a set of metric plugins."""

    def __init__(
        self,
        platform: Platform,
        plugins: Sequence[MetricPlugin],
        *,
        sampling_interval_s: float = 0.1,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        if sampling_interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not plugins:
            raise ValueError("need at least one metric plugin")
        self.platform = platform
        self.plugins = list(plugins)
        self.sampling_interval_s = sampling_interval_s
        self.fault_injector = fault_injector

    def trace(self, run: RunExecution, *, attempt: int = 0) -> Trace:
        """Record the trace of one executed run.

        Sample times form a run-global grid (plugins sample on their
        own clock, not aligned to phases), as Score-P async plugins do.

        With a ``fault_injector`` attached, the finished trace passes
        through :meth:`~repro.faults.injector.FaultInjector.corrupt_trace`
        keyed by ``attempt`` — the measurement infrastructure, not the
        system under test, is what glitches.
        """
        trace = Trace(
            meta={
                "workload": run.workload_name,
                "suite": run.suite,
                "frequency_mhz": run.op.frequency_mhz,
                "threads": run.threads,
                "run_index": run.run_index,
            }
        )
        dt = self.sampling_interval_s
        # Per-metric accumulators across phases.
        times_acc: dict = {}
        values_acc: dict = {}
        defs = {}
        for plugin in self.plugins:
            for mdef in plugin.metric_defs():
                if mdef.name in defs:
                    raise ValueError(f"metric {mdef.name!r} provided twice")
                defs[mdef.name] = mdef
                times_acc[mdef.name] = []
                values_acc[mdef.name] = []

        for phase in run.phases:
            trace.record_enter(
                phase.phase.name, phase.start_s, phase.phase.active_threads
            )
            # Sample grid within the phase: first tick one interval in.
            n = max(int(np.floor(phase.duration_s / dt)), 1)
            sample_times = phase.start_s + dt * np.arange(1, n + 1)
            sample_times = sample_times[sample_times <= phase.end_s + 1e-9]
            if sample_times.size == 0:
                sample_times = np.array([phase.end_s])
            for plugin in self.plugins:
                rng = derive_rng(
                    self.platform.seed,
                    "plugin",
                    type(plugin).__name__,
                    run.workload_name,
                    run.op.frequency_mhz,
                    run.threads,
                    run.run_index,
                    phase.phase.name,
                )
                sampled = plugin.sample_phase(
                    run, phase, sample_times, dt, rng
                )
                for name, vals in sampled.items():
                    if name not in defs:
                        raise ValueError(
                            f"plugin produced undeclared metric {name!r}"
                        )
                    times_acc[name].append(sample_times)
                    values_acc[name].append(np.asarray(vals, dtype=np.float64))
            trace.record_leave(
                phase.phase.name, phase.end_s, phase.phase.active_threads
            )

        for name, mdef in defs.items():
            times = (
                np.concatenate(times_acc[name]) if times_acc[name] else np.array([])
            )
            values = (
                np.concatenate(values_acc[name]) if values_acc[name] else np.array([])
            )
            trace.add_metric_stream(
                MetricStream(definition=mdef, times_s=times, values=values)
            )
        if self.fault_injector is not None:
            trace = self.fault_injector.corrupt_trace(trace, attempt=attempt)
        return trace


def trace_run(
    platform: Platform,
    run: RunExecution,
    event_set: EventSet,
    *,
    sampling_interval_s: float = 0.1,
    fault_injector: Optional["FaultInjector"] = None,
    attempt: int = 0,
) -> Trace:
    """Convenience: trace a run with the paper's three plugins."""
    tracer = ScorePTracer(
        platform,
        [
            PowerPlugin(platform),
            VoltagePlugin(platform),
            ApapiPlugin(platform, event_set),
        ],
        sampling_interval_s=sampling_interval_s,
        fault_injector=fault_injector,
    )
    return tracer.trace(run, attempt=attempt)


def trace_multiplexed_run(
    platform: Platform,
    run: RunExecution,
    events: Sequence[str],
    *,
    sampling_interval_s: float = 0.1,
    fault_injector: Optional["FaultInjector"] = None,
    attempt: int = 0,
) -> Trace:
    """Trace a run with time-division-multiplexed counter sampling:
    all requested events from a single run (see
    :class:`~repro.tracing.plugins.MultiplexedApapiPlugin`)."""
    from repro.tracing.plugins import MultiplexedApapiPlugin

    tracer = ScorePTracer(
        platform,
        [
            PowerPlugin(platform),
            VoltagePlugin(platform),
            MultiplexedApapiPlugin(platform, events),
        ],
        sampling_interval_s=sampling_interval_s,
        fault_injector=fault_injector,
    )
    return tracer.trace(run, attempt=attempt)
