"""A lightweight OTF2-inspired trace format.

The paper's data path runs through Open Trace Format 2 files produced
by Score-P: "It consists of a stream of events chronologically ordered
by the time of their occurrence, and information about the state and
configuration of the target system" (Section III-A).

We keep that structure — definitions + chronologically ordered region
events + per-metric sample streams — but store each metric stream as a
pair of numpy arrays (timestamps, values).  That is both closer to how
OTF2 encodes metric classes than per-sample Python objects would be,
and orders of magnitude cheaper for the multi-minute SPEC traces.

Traces serialize to a JSON-lines file (one definition/event record per
line) so the post-processing tools can be exercised on real files, and
round-trip losslessly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.io.atomic import atomic_open

__all__ = ["MetricDef", "RegionEvent", "MetricStream", "Trace"]


@dataclass(frozen=True)
class MetricDef:
    """Definition record of one metric (name, unit, mode)."""

    name: str
    unit: str
    mode: str = "absolute_point"
    """``absolute_point`` (sampled value) or ``accumulated`` (counter)."""


@dataclass(frozen=True)
class RegionEvent:
    """An Enter or Leave event of an instrumented region."""

    kind: str  # "enter" | "leave"
    region: str
    time_s: float
    active_threads: int

    def __post_init__(self) -> None:
        if self.kind not in ("enter", "leave"):
            raise ValueError(f"event kind must be enter/leave, got {self.kind!r}")
        if self.time_s < 0:
            raise ValueError("event time cannot be negative")


@dataclass
class MetricStream:
    """Sampled values of one metric over the trace duration."""

    definition: MetricDef
    times_s: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times_s = np.asarray(self.times_s, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.times_s.shape != self.values.shape:
            raise ValueError("times and values must have the same shape")
        if self.times_s.ndim != 1:
            raise ValueError("metric streams are 1-D")
        if self.times_s.size and np.any(np.diff(self.times_s) < 0):
            raise ValueError(
                f"metric {self.definition.name!r}: samples not chronological"
            )

    @staticmethod
    def trusted(
        definition: MetricDef, times_s: np.ndarray, values: np.ndarray
    ) -> "MetricStream":
        """Construct without ``__post_init__`` validation.

        For internal producers whose arrays are float64, 1-D, equal
        length and chronological *by construction* (the tracer fast
        path, which also shares one times array across all streams of
        a trace).  External data must go through the normal
        constructor.
        """
        stream = MetricStream.__new__(MetricStream)
        stream.definition = definition
        stream.times_s = times_s
        stream.values = values
        return stream

    def window_mean(self, start_s: float, end_s: float) -> float:
        """Average of the samples inside ``[start_s, end_s)``.

        This is the aggregation the phase-profile generation performs
        ("the average over time for each async metric").  Returns NaN
        when no sample falls into the window.
        """
        if end_s < start_s:
            raise ValueError("window end before start")
        lo = int(np.searchsorted(self.times_s, start_s, side="left"))
        hi = int(np.searchsorted(self.times_s, end_s, side="left"))
        if hi <= lo:
            return float("nan")
        return float(self.values[lo:hi].mean())


class Trace:
    """One OTF2-like application trace.

    Region events must be recorded in chronological order with balanced
    enter/leave nesting (flat phase sequences in this reproduction).
    """

    def __init__(self, meta: Optional[Dict[str, Union[str, int, float]]] = None):
        self.meta: Dict[str, Union[str, int, float]] = dict(meta or {})
        self.events: List[RegionEvent] = []
        self.metrics: Dict[str, MetricStream] = {}
        self._open_regions: List[str] = []
        self._last_time = 0.0
        self._intervals_cache: Optional[
            List[Tuple[str, float, float, int]]
        ] = None

    # ------------------------------------------------------------------
    def record_enter(self, region: str, time_s: float, active_threads: int) -> None:
        self._check_time(time_s)
        self.events.append(RegionEvent("enter", region, time_s, active_threads))
        self._open_regions.append(region)
        self._intervals_cache = None

    def record_leave(self, region: str, time_s: float, active_threads: int) -> None:
        self._check_time(time_s)
        if not self._open_regions or self._open_regions[-1] != region:
            raise ValueError(
                f"unbalanced leave of region {region!r} "
                f"(open: {self._open_regions})"
            )
        self.events.append(RegionEvent("leave", region, time_s, active_threads))
        self._open_regions.pop()
        self._intervals_cache = None

    def _check_time(self, time_s: float) -> None:
        if time_s < self._last_time - 1e-12:
            raise ValueError(
                f"event at {time_s} out of chronological order "
                f"(last was {self._last_time})"
            )
        self._last_time = max(self._last_time, time_s)

    def add_metric_stream(self, stream: MetricStream) -> None:
        name = stream.definition.name
        if name in self.metrics:
            raise ValueError(f"duplicate metric stream {name!r}")
        self.metrics[name] = stream

    # ------------------------------------------------------------------
    def phase_intervals(self) -> List[Tuple[str, float, float, int]]:
        """(region, start, end, active_threads) per completed region.

        Memoized until the next recorded event: profile extraction and
        trace validation both walk the intervals, and the event list is
        final once tracing ends.
        """
        if self._open_regions:
            raise ValueError(f"trace has unclosed regions: {self._open_regions}")
        if self._intervals_cache is not None:
            return self._intervals_cache
        intervals: List[Tuple[str, float, float, int]] = []
        stack: List[RegionEvent] = []
        for ev in self.events:
            if ev.kind == "enter":
                stack.append(ev)
            else:
                enter = stack.pop()
                intervals.append(
                    (ev.region, enter.time_s, ev.time_s, enter.active_threads)
                )
        self._intervals_cache = intervals
        return intervals

    @property
    def duration_s(self) -> float:
        return self._last_time

    # ------------------------------------------------------------------
    # Serialization (JSONL: one record per line, defs first).
    # ------------------------------------------------------------------
    def write(self, path: Union[str, Path]) -> None:
        """Write the trace to a JSON-lines file."""
        path = Path(path)
        with atomic_open(path, "w") as fh:
            fh.write(json.dumps({"record": "meta", **self.meta}) + "\n")
            for m in self.metrics.values():
                fh.write(
                    json.dumps(
                        {
                            "record": "metric_def",
                            "name": m.definition.name,
                            "unit": m.definition.unit,
                            "mode": m.definition.mode,
                        }
                    )
                    + "\n"
                )
            for ev in self.events:
                fh.write(
                    json.dumps(
                        {
                            "record": "event",
                            "kind": ev.kind,
                            "region": ev.region,
                            "time_s": ev.time_s,
                            "active_threads": ev.active_threads,
                        }
                    )
                    + "\n"
                )
            for m in self.metrics.values():
                fh.write(
                    json.dumps(
                        {
                            "record": "metric_samples",
                            "name": m.definition.name,
                            "times_s": m.times_s.tolist(),
                            "values": m.values.tolist(),
                        }
                    )
                    + "\n"
                )

    @staticmethod
    def read(path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`write`."""
        path = Path(path)
        trace: Optional[Trace] = None
        defs: Dict[str, MetricDef] = {}
        pending_events: List[dict] = []
        with path.open() as fh:
            for line in fh:
                rec = json.loads(line)
                kind = rec.pop("record")
                if kind == "meta":
                    trace = Trace(meta=rec)
                elif kind == "metric_def":
                    defs[rec["name"]] = MetricDef(**rec)
                elif kind == "event":
                    pending_events.append(rec)
                elif kind == "metric_samples":
                    if trace is None:
                        raise ValueError("metric samples before meta record")
                    name = rec["name"]
                    if name not in defs:
                        raise ValueError(f"samples for undefined metric {name!r}")
                    trace.add_metric_stream(
                        MetricStream(
                            definition=defs[name],
                            times_s=np.asarray(rec["times_s"]),
                            values=np.asarray(rec["values"]),
                        )
                    )
                else:
                    raise ValueError(f"unknown record type {kind!r}")
        if trace is None:
            raise ValueError(f"{path}: missing meta record")
        for rec in pending_events:
            if rec["kind"] == "enter":
                trace.record_enter(rec["region"], rec["time_s"], rec["active_threads"])
            else:
                trace.record_leave(rec["region"], rec["time_s"], rec["active_threads"])
        return trace
