"""Tracing substrate: OTF2-like traces, Score-P-like tracer with metric
plugins, and phase-profile extraction."""

from repro.tracing.analysis import (
    MetricStats,
    RegionStats,
    TraceStatistics,
    trace_statistics,
)
from repro.tracing.otf2 import MetricDef, MetricStream, RegionEvent, Trace
from repro.tracing.phases import (
    PhaseProfile,
    haecsim_profiles,
    postprocess_profiles,
    profile_trace,
)
from repro.tracing.plugins import (
    ApapiPlugin,
    MetricPlugin,
    PowerPlugin,
    VoltagePlugin,
)
from repro.tracing.scorep import ScorePTracer, trace_run

__all__ = [
    "Trace",
    "MetricDef",
    "MetricStream",
    "RegionEvent",
    "MetricPlugin",
    "PowerPlugin",
    "VoltagePlugin",
    "ApapiPlugin",
    "ScorePTracer",
    "trace_run",
    "PhaseProfile",
    "profile_trace",
    "haecsim_profiles",
    "postprocess_profiles",
    "trace_statistics",
    "TraceStatistics",
    "RegionStats",
    "MetricStats",
]
