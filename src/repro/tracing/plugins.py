"""Score-P metric plugins.

"A metric plugin is an external dynamic linked library, which
implements the Score-P metric plugin interface" (Section III-A).  Here
a plugin is a Python object implementing :class:`MetricPlugin`: it
declares metric definitions and produces sampled values for a phase
execution.  The three plugins of the paper are modelled:

* :class:`PowerPlugin` — ``scorep_ni``: node power from the calibrated
  12 V sensors (per-socket channels summed).
* :class:`VoltagePlugin` — ``scorep_x86_adapt``: per-core voltage
  telemetry, reported as the mean over active cores.
* :class:`ApapiPlugin` — ``scorep_plugin_apapi``: asynchronous PAPI
  counter sampling for the currently programmed event set; each sample
  is the counter increment over the sampling interval, normalized to
  events/second (the post-processing converts to events per cycle).

Each plugin offers three bit-identical sampling entry points:

* ``sample_phase_reference`` — the original event-at-a-time loops,
  kept verbatim as the auditable reference (the ``REPRO_FASTSIM=0``
  recording path).
* ``sample_phase`` — one phase, vectorized: a single standard-normal
  block replaces the per-event/per-channel ``normal()`` calls.  The
  C-order fill consumes the ziggurat stream in the same order, and
  ``loc + (0.0 + sigma*z)`` is exactly how ``Generator.normal``
  assembles each draw, so values match the loops bit for bit.
* ``sample_run`` — a whole run, batched: per-phase RNG draws (the
  seeding contract) followed by one arithmetic pass over the stacked
  ``(events, total_samples)`` matrix.  Elementwise ufuncs are
  batch-size invariant, so this equals ``sample_phase`` per segment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.hardware.platform import PhaseExecution, Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.tracing.otf2 import MetricDef

__all__ = ["MetricPlugin", "PowerPlugin", "VoltagePlugin", "ApapiPlugin"]


class MetricPlugin:
    """Interface every metric plugin implements."""

    def metric_defs(self) -> List[MetricDef]:
        """Metric definitions this plugin contributes to the trace."""
        raise NotImplementedError

    def sample_phase(
        self,
        run: RunExecution,
        phase: PhaseExecution,
        sample_times: np.ndarray,
        interval_s: float,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        """Values for each metric at the given absolute sample times."""
        raise NotImplementedError

    def sample_phase_reference(
        self,
        run: RunExecution,
        phase: PhaseExecution,
        sample_times: np.ndarray,
        interval_s: float,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        """Scalar reference sampling (``REPRO_FASTSIM=0`` path).

        Defaults to :meth:`sample_phase`; the paper's plugins override
        it with their original loops, kept verbatim.
        """
        return self.sample_phase(run, phase, sample_times, interval_s, rng)

    def sample_run(
        self,
        run: RunExecution,
        phases: Sequence[PhaseExecution],
        grids: Sequence[np.ndarray],
        interval_s: float,
        rngs: Sequence[np.random.Generator],
    ) -> Dict[str, np.ndarray]:
        """All phases of a run in one call (fast recording path).

        ``rngs`` holds one per-phase generator, seeded exactly as the
        scalar path seeds them.  The default implementation falls back
        to per-phase :meth:`sample_phase` calls and concatenates.
        """
        acc: Dict[str, List[np.ndarray]] = {}
        for phase, grid, rng in zip(phases, grids, rngs):
            sampled = self.sample_phase(run, phase, grid, interval_s, rng)
            for name, vals in sampled.items():
                acc.setdefault(name, []).append(
                    np.asarray(vals, dtype=np.float64)
                )
        return {name: np.concatenate(parts) for name, parts in acc.items()}


def _fill_segments(
    out: np.ndarray, grids: Sequence[np.ndarray], per_phase: Sequence
) -> np.ndarray:
    """Write one value (or column) per phase across its grid segment."""
    pos = 0
    for grid, value in zip(grids, per_phase):
        out[..., pos : pos + grid.size] = value
        pos += grid.size
    return out


class PowerPlugin(MetricPlugin):
    """Node power sampled from the platform's sensor array."""

    METRIC = "power"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def metric_defs(self) -> List[MetricDef]:
        return [MetricDef(self.METRIC, "W")]

    def sample_phase_reference(self, run, phase, sample_times, interval_s, rng):
        # Each plugin sample is the mean of the raw sensor stream over
        # one sampling interval: one draw per socket channel per sample.
        n = sample_times.size
        total = np.zeros(n)
        for sensor, true_w in zip(
            self.platform.sensors.sensors, phase.power_breakdown.per_socket_w
        ):
            raw_per_sample = max(
                int(round(interval_s * sensor.sample_rate_hz)), 1
            )
            mean = true_w * sensor.calibration.gain + sensor.calibration.offset_w
            total += mean + rng.normal(
                0.0, sensor.noise_sigma_w / np.sqrt(raw_per_sample), size=n
            )
        return {self.METRIC: total}

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        # The sensor array draws every channel's noise in one block
        # (bit-identical to the per-channel reference loop).
        total = self.platform.sensors.sample_node_total(
            phase.power_breakdown.per_socket_w,
            sample_times.size,
            interval_s,
            rng,
        )
        return {self.METRIC: total}

    def sample_run(self, run, phases, grids, interval_s, rngs):
        total = np.empty(sum(grid.size for grid in grids))
        pos = 0
        for phase, grid, rng in zip(phases, grids, rngs):
            total[pos : pos + grid.size] = (
                self.platform.sensors.sample_node_total(
                    phase.power_breakdown.per_socket_w,
                    grid.size,
                    interval_s,
                    rng,
                )
            )
            pos += grid.size
        return {self.METRIC: total}


class VoltagePlugin(MetricPlugin):
    """Average active-core voltage from the x86_adapt telemetry."""

    METRIC = "voltage"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def metric_defs(self) -> List[MetricDef]:
        return [MetricDef(self.METRIC, "V")]

    def sample_phase_reference(self, run, phase, sample_times, interval_s, rng):
        telemetry = self.platform.voltage
        n = sample_times.size
        true = phase.true_voltage_v
        readings = true + rng.normal(0.0, telemetry.read_noise_v, size=n)
        step = telemetry.VID_STEP
        return {self.METRIC: np.round(readings / step) * step}

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        telemetry = self.platform.voltage
        z = rng.standard_normal(sample_times.size)
        readings = phase.true_voltage_v + (0.0 + telemetry.read_noise_v * z)
        step = telemetry.VID_STEP
        return {self.METRIC: np.round(readings / step) * step}

    def sample_run(self, run, phases, grids, interval_s, rngs):
        telemetry = self.platform.voltage
        blocks = [
            rng.standard_normal(grid.size) for grid, rng in zip(grids, rngs)
        ]
        if len(blocks) == 1:
            z = blocks[0]
            true = phases[0].true_voltage_v
        else:
            z = np.concatenate(blocks)
            true = _fill_segments(
                np.empty(z.size), grids, [p.true_voltage_v for p in phases]
            )
        readings = true + (0.0 + telemetry.read_noise_v * z)
        step = telemetry.VID_STEP
        return {self.METRIC: np.round(readings / step) * step}


class ApapiPlugin(MetricPlugin):
    """Asynchronous PAPI sampling of the programmed event set."""

    PREFIX = "papi:"

    def __init__(self, platform: Platform, event_set: EventSet) -> None:
        self.platform = platform
        self.event_set = event_set
        self._indices = np.array(
            [_counter_index(name) for name in event_set.events], dtype=np.intp
        )
        self._names = tuple(
            f"{self.PREFIX}{name}" for name in event_set.events
        )

    def metric_defs(self) -> List[MetricDef]:
        return [
            MetricDef(f"{self.PREFIX}{name}", "events/s", mode="accumulated")
            for name in self.event_set.events
        ]

    def sample_phase_reference(self, run, phase, sample_times, interval_s, rng):
        pmu = self.platform.pmu
        out: Dict[str, np.ndarray] = {}
        n = sample_times.size
        f_hz = run.op.frequency_hz
        rates = phase.state.counter_rates
        for name in self.event_set.events:
            idx_rate = float(rates[_counter_index(name)])
            true_per_s = idx_rate * f_hz
            noise = 1.0 + rng.normal(0.0, pmu.read_noise_sigma, size=n)
            counts = np.maximum(true_per_s * interval_s * noise, 0.0)
            out[f"{self.PREFIX}{name}"] = np.floor(counts) / interval_s
        return out

    def _values(self, true_per_s, z, sigmas, interval_s):
        """The shared rate arithmetic of both vectorized entry points."""
        noise = 1.0 + (0.0 + sigmas * z)
        counts = np.maximum(true_per_s * interval_s * noise, 0.0)
        return np.floor(counts) / interval_s

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        n = sample_times.size
        true_per_s = (
            phase.state.counter_rates[self._indices] * run.op.frequency_hz
        )
        z = rng.standard_normal((len(self._names), n))
        values = self._values(
            true_per_s[:, None], z, self.platform.pmu.read_noise_sigma, interval_s
        )
        return {name: values[i] for i, name in enumerate(self._names)}

    def sample_run(self, run, phases, grids, interval_s, rngs):
        n_events = len(self._names)
        f_hz = run.op.frequency_hz
        blocks = [
            rng.standard_normal((n_events, grid.size))
            for grid, rng in zip(grids, rngs)
        ]
        if len(blocks) == 1:
            # Single-phase run: broadcasting the rate column is the
            # same elementwise arithmetic as filling a matrix.
            z = blocks[0]
            true_per_s = (
                phases[0].state.counter_rates[self._indices] * f_hz
            )[:, None]
        else:
            z = np.concatenate(blocks, axis=1)
            true_per_s = _fill_segments(
                np.empty(z.shape),
                grids,
                [
                    (p.state.counter_rates[self._indices] * f_hz)[:, None]
                    for p in phases
                ],
            )
        values = self._values(
            true_per_s, z, self.platform.pmu.read_noise_sigma, interval_s
        )
        return {name: values[i] for i, name in enumerate(self._names)}


def _counter_index(name: str) -> int:
    from repro.hardware.counters import counter_index

    return counter_index(name)


class MultiplexedApapiPlugin(MetricPlugin):
    """Time-division-multiplexed PAPI sampling of *all* requested
    events in a single run.

    Avoids the multi-run campaigns of Section III-A at the price of
    extrapolation noise — see
    :meth:`repro.hardware.pmu.PMU.count_multiplexed`.
    """

    PREFIX = ApapiPlugin.PREFIX

    def __init__(self, platform: Platform, events: Sequence[str]) -> None:
        self.platform = platform
        self.events = tuple(events)
        from repro.hardware.counters import FIXED_COUNTERS, counter_index

        pmu = platform.pmu
        self._indices = np.array(
            [counter_index(name) for name in self.events], dtype=np.intp
        )
        self._names = tuple(f"{self.PREFIX}{name}" for name in self.events)
        prog = [e for e in self.events if e not in FIXED_COUNTERS]
        n_groups = max(-(-len(prog) // platform.cfg.programmable_slots), 1)
        mux_sigma = float(
            np.hypot(
                pmu.read_noise_sigma,
                pmu.multiplex_noise_sigma * np.sqrt(max(n_groups - 1, 0)),
            )
        )
        self._sigmas = np.array(
            [
                pmu.read_noise_sigma if name in FIXED_COUNTERS else mux_sigma
                for name in self.events
            ]
        )

    def metric_defs(self) -> List[MetricDef]:
        return [
            MetricDef(f"{self.PREFIX}{name}", "events/s", mode="accumulated")
            for name in self.events
        ]

    def sample_phase_reference(self, run, phase, sample_times, interval_s, rng):
        pmu = self.platform.pmu
        n = sample_times.size
        out: Dict[str, np.ndarray] = {}
        f_hz = run.op.frequency_hz
        rates = phase.state.counter_rates
        from repro.hardware.counters import FIXED_COUNTERS, counter_index

        prog = [e for e in self.events if e not in FIXED_COUNTERS]
        n_groups = max(
            -(-len(prog) // self.platform.cfg.programmable_slots), 1
        )
        for name in self.events:
            true_per_s = float(rates[counter_index(name)]) * f_hz
            if name in FIXED_COUNTERS:
                sigma = pmu.read_noise_sigma
            else:
                sigma = float(
                    np.hypot(
                        pmu.read_noise_sigma,
                        pmu.multiplex_noise_sigma * np.sqrt(max(n_groups - 1, 0)),
                    )
                )
            noise = 1.0 + rng.normal(0.0, sigma, size=n)
            counts = np.maximum(true_per_s * interval_s * noise, 0.0)
            out[f"{self.PREFIX}{name}"] = np.floor(counts) / interval_s
        return out

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        n = sample_times.size
        true_per_s = (
            phase.state.counter_rates[self._indices] * run.op.frequency_hz
        )
        z = rng.standard_normal((len(self._names), n))
        noise = 1.0 + (0.0 + self._sigmas[:, None] * z)
        counts = np.maximum(true_per_s[:, None] * interval_s * noise, 0.0)
        values = np.floor(counts) / interval_s
        return {name: values[i] for i, name in enumerate(self._names)}

    def sample_run(self, run, phases, grids, interval_s, rngs):
        n_events = len(self._names)
        f_hz = run.op.frequency_hz
        blocks = [
            rng.standard_normal((n_events, grid.size))
            for grid, rng in zip(grids, rngs)
        ]
        if len(blocks) == 1:
            z = blocks[0]
            true_per_s = (
                phases[0].state.counter_rates[self._indices] * f_hz
            )[:, None]
        else:
            z = np.concatenate(blocks, axis=1)
            true_per_s = _fill_segments(
                np.empty(z.shape),
                grids,
                [
                    (p.state.counter_rates[self._indices] * f_hz)[:, None]
                    for p in phases
                ],
            )
        noise = 1.0 + (0.0 + self._sigmas[:, None] * z)
        counts = np.maximum(true_per_s * interval_s * noise, 0.0)
        values = np.floor(counts) / interval_s
        return {name: values[i] for i, name in enumerate(self._names)}
