"""Score-P metric plugins.

"A metric plugin is an external dynamic linked library, which
implements the Score-P metric plugin interface" (Section III-A).  Here
a plugin is a Python object implementing :class:`MetricPlugin`: it
declares metric definitions and produces sampled values for a phase
execution.  The three plugins of the paper are modelled:

* :class:`PowerPlugin` — ``scorep_ni``: node power from the calibrated
  12 V sensors (per-socket channels summed).
* :class:`VoltagePlugin` — ``scorep_x86_adapt``: per-core voltage
  telemetry, reported as the mean over active cores.
* :class:`ApapiPlugin` — ``scorep_plugin_apapi``: asynchronous PAPI
  counter sampling for the currently programmed event set; each sample
  is the counter increment over the sampling interval, normalized to
  events/second (the post-processing converts to events per cycle).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.hardware.platform import PhaseExecution, Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.tracing.otf2 import MetricDef

__all__ = ["MetricPlugin", "PowerPlugin", "VoltagePlugin", "ApapiPlugin"]


class MetricPlugin:
    """Interface every metric plugin implements."""

    def metric_defs(self) -> List[MetricDef]:
        """Metric definitions this plugin contributes to the trace."""
        raise NotImplementedError

    def sample_phase(
        self,
        run: RunExecution,
        phase: PhaseExecution,
        sample_times: np.ndarray,
        interval_s: float,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        """Values for each metric at the given absolute sample times."""
        raise NotImplementedError


class PowerPlugin(MetricPlugin):
    """Node power sampled from the platform's sensor array."""

    METRIC = "power"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def metric_defs(self) -> List[MetricDef]:
        return [MetricDef(self.METRIC, "W")]

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        # Each plugin sample is the mean of the raw sensor stream over
        # one sampling interval: one draw per socket channel per sample.
        n = sample_times.size
        total = np.zeros(n)
        for sensor, true_w in zip(
            self.platform.sensors.sensors, phase.power_breakdown.per_socket_w
        ):
            raw_per_sample = max(
                int(round(interval_s * sensor.sample_rate_hz)), 1
            )
            mean = true_w * sensor.calibration.gain + sensor.calibration.offset_w
            total += mean + rng.normal(
                0.0, sensor.noise_sigma_w / np.sqrt(raw_per_sample), size=n
            )
        return {self.METRIC: total}


class VoltagePlugin(MetricPlugin):
    """Average active-core voltage from the x86_adapt telemetry."""

    METRIC = "voltage"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def metric_defs(self) -> List[MetricDef]:
        return [MetricDef(self.METRIC, "V")]

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        telemetry = self.platform.voltage
        n = sample_times.size
        true = phase.true_voltage_v
        readings = true + rng.normal(0.0, telemetry.read_noise_v, size=n)
        step = telemetry.VID_STEP
        return {self.METRIC: np.round(readings / step) * step}


class ApapiPlugin(MetricPlugin):
    """Asynchronous PAPI sampling of the programmed event set."""

    PREFIX = "papi:"

    def __init__(self, platform: Platform, event_set: EventSet) -> None:
        self.platform = platform
        self.event_set = event_set

    def metric_defs(self) -> List[MetricDef]:
        return [
            MetricDef(f"{self.PREFIX}{name}", "events/s", mode="accumulated")
            for name in self.event_set.events
        ]

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        pmu = self.platform.pmu
        out: Dict[str, np.ndarray] = {}
        n = sample_times.size
        f_hz = run.op.frequency_hz
        rates = phase.state.counter_rates
        for name in self.event_set.events:
            idx_rate = float(rates[_counter_index(name)])
            true_per_s = idx_rate * f_hz
            noise = 1.0 + rng.normal(0.0, pmu.read_noise_sigma, size=n)
            counts = np.maximum(true_per_s * interval_s * noise, 0.0)
            out[f"{self.PREFIX}{name}"] = np.floor(counts) / interval_s
        return out


def _counter_index(name: str) -> int:
    from repro.hardware.counters import counter_index

    return counter_index(name)


class MultiplexedApapiPlugin(MetricPlugin):
    """Time-division-multiplexed PAPI sampling of *all* requested
    events in a single run.

    Avoids the multi-run campaigns of Section III-A at the price of
    extrapolation noise — see
    :meth:`repro.hardware.pmu.PMU.count_multiplexed`.
    """

    PREFIX = ApapiPlugin.PREFIX

    def __init__(self, platform: Platform, events: Sequence[str]) -> None:
        self.platform = platform
        self.events = tuple(events)

    def metric_defs(self) -> List[MetricDef]:
        return [
            MetricDef(f"{self.PREFIX}{name}", "events/s", mode="accumulated")
            for name in self.events
        ]

    def sample_phase(self, run, phase, sample_times, interval_s, rng):
        pmu = self.platform.pmu
        n = sample_times.size
        out: Dict[str, np.ndarray] = {}
        f_hz = run.op.frequency_hz
        rates = phase.state.counter_rates
        from repro.hardware.counters import FIXED_COUNTERS, counter_index

        prog = [e for e in self.events if e not in FIXED_COUNTERS]
        n_groups = max(
            -(-len(prog) // self.platform.cfg.programmable_slots), 1
        )
        for name in self.events:
            true_per_s = float(rates[counter_index(name)]) * f_hz
            if name in FIXED_COUNTERS:
                sigma = pmu.read_noise_sigma
            else:
                sigma = float(
                    np.hypot(
                        pmu.read_noise_sigma,
                        pmu.multiplex_noise_sigma * np.sqrt(max(n_groups - 1, 0)),
                    )
                )
            noise = 1.0 + rng.normal(0.0, sigma, size=n)
            counts = np.maximum(true_per_s * interval_s * noise, 0.0)
            out[f"{self.PREFIX}{name}"] = np.floor(counts) / interval_s
        return out
