"""Trace analysis: summary statistics over OTF2-like traces.

The Score-P ecosystem ships analysis tools (otf2-profile, Vampir
statistics) that condense a trace into per-region and per-metric
summaries before any modeling happens.  This module provides that
layer for the simulated traces: region time accounting, metric
statistics over arbitrary windows, and a plain-text trace report used
by the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tracing.otf2 import Trace

__all__ = ["RegionStats", "MetricStats", "trace_statistics", "TraceStatistics"]


@dataclass(frozen=True)
class RegionStats:
    """Time accounting for one region name (aggregated over visits)."""

    region: str
    visits: int
    total_time_s: float
    min_time_s: float
    max_time_s: float

    @property
    def mean_time_s(self) -> float:
        return self.total_time_s / self.visits


@dataclass(frozen=True)
class MetricStats:
    """Distribution summary of one metric stream."""

    name: str
    unit: str
    n_samples: int
    mean: float
    std: float
    minimum: float
    maximum: float


@dataclass(frozen=True)
class TraceStatistics:
    """Complete summary of one trace."""

    duration_s: float
    regions: Tuple[RegionStats, ...]
    metrics: Tuple[MetricStats, ...]

    def region(self, name: str) -> RegionStats:
        for r in self.regions:
            if r.region == name:
                return r
        raise KeyError(f"no region {name!r} in trace")

    def metric(self, name: str) -> MetricStats:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"no metric {name!r} in trace")

    def coverage(self) -> float:
        """Fraction of the trace duration spent inside regions."""
        if self.duration_s <= 0:
            return 0.0
        return min(sum(r.total_time_s for r in self.regions) / self.duration_s, 1.0)

    def render(self) -> str:
        lines = [
            f"trace: {self.duration_s:.1f} s, region coverage "
            f"{self.coverage() * 100:.1f} %",
            f"{'region':<24s}{'visits':>8s}{'total s':>10s}{'mean s':>10s}",
        ]
        for r in sorted(self.regions, key=lambda r: -r.total_time_s):
            lines.append(
                f"{r.region:<24s}{r.visits:>8d}{r.total_time_s:>10.2f}"
                f"{r.mean_time_s:>10.2f}"
            )
        lines.append(
            f"{'metric':<24s}{'n':>8s}{'mean':>10s}{'std':>10s}{'max':>10s}"
        )
        for m in self.metrics:
            lines.append(
                f"{m.name:<24s}{m.n_samples:>8d}{m.mean:>10.3g}"
                f"{m.std:>10.3g}{m.maximum:>10.3g}"
            )
        return "\n".join(lines)


def trace_statistics(trace: Trace) -> TraceStatistics:
    """Summarize a trace: per-region time accounting + metric stats."""
    acc: Dict[str, List[float]] = {}
    for region, start, end, _threads in trace.phase_intervals():
        acc.setdefault(region, []).append(end - start)
    regions = tuple(
        RegionStats(
            region=name,
            visits=len(times),
            total_time_s=float(np.sum(times)),
            min_time_s=float(np.min(times)),
            max_time_s=float(np.max(times)),
        )
        for name, times in acc.items()
    )
    metrics = []
    for name, stream in trace.metrics.items():
        v = stream.values
        if v.size == 0:
            metrics.append(
                MetricStats(name, stream.definition.unit, 0, math.nan,
                            math.nan, math.nan, math.nan)
            )
            continue
        metrics.append(
            MetricStats(
                name=name,
                unit=stream.definition.unit,
                n_samples=int(v.size),
                mean=float(v.mean()),
                std=float(v.std()),
                minimum=float(v.min()),
                maximum=float(v.max()),
            )
        )
    return TraceStatistics(
        duration_s=trace.duration_s,
        regions=regions,
        metrics=tuple(metrics),
    )
