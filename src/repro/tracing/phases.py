"""Phase-profile generation from traces.

"The resulting phase profile contains the start and end time, the
average over time for each async metric, the average value of the
recorded PMC values, the number of active threads, and the
identification of the application" (Section III-A).

Two generators existed in the original pipeline — a HAEC-SIM module
for the roco2 kernel traces and "a custom python OTF2 post-processing
tool" for standardized benchmarks.  Both reduce to the same windowed
aggregation; we provide both entry points with the validation each
tool performed (HAEC-SIM insisted on homogeneous single-kernel phases),
sharing one engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.hardware.fastsim import fastsim_enabled
from repro.tracing.otf2 import MetricStream, Trace
from repro.tracing.plugins import ApapiPlugin, PowerPlugin, VoltagePlugin

__all__ = ["PhaseProfile", "profile_trace", "haecsim_profiles", "postprocess_profiles"]


@dataclass(frozen=True)
class PhaseProfile:
    """Aggregated view of one phase of one traced run."""

    workload: str
    suite: str
    frequency_mhz: int
    threads: int
    run_index: int
    phase_name: str
    start_s: float
    end_s: float
    active_threads: int
    power_w: float
    voltage_v: float
    counter_rates_per_s: Dict[str, float] = field(default_factory=dict)
    """Mean recorded PMC rates in events/second, keyed by counter name."""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def rate_per_cycle(self, counter: str) -> float:
        """Event rate per cpu cycle — the E_n of Equation 1."""
        return self.counter_rates_per_s[counter] / (self.frequency_mhz * 1e6)




def profile_trace(trace: Trace, *, min_duration_s: float = 0.5) -> List[PhaseProfile]:
    """Phase profiles of every sufficiently long region of a trace.

    Phases shorter than ``min_duration_s`` carry too few async samples
    for stable averages and are dropped, as the original tooling did.
    """
    meta = trace.meta
    for key in ("workload", "suite", "frequency_mhz", "threads", "run_index"):
        if key not in meta:
            raise ValueError(f"trace metadata missing {key!r}")
    power_metric = trace.metrics.get(PowerPlugin.METRIC)
    voltage_metric = trace.metrics.get(VoltagePlugin.METRIC)
    if power_metric is None or voltage_metric is None:
        raise ValueError("trace lacks power/voltage metric streams")

    # The windowed-extraction fast path rides the fastsim switch:
    # under REPRO_FASTSIM=0 extraction replays the original per-stream
    # window_mean calls, so the escape hatch covers the whole pipeline.
    if fastsim_enabled(None):
        return _profile_fast(
            trace, power_metric, voltage_metric, min_duration_s
        )

    papi_names = [
        name
        for name in trace.metrics
        if name.startswith(ApapiPlugin.PREFIX)
    ]
    out: List[PhaseProfile] = []
    for region, start, end, active in trace.phase_intervals():
        if end - start < min_duration_s:
            continue
        p = power_metric.window_mean(start, end)
        v = voltage_metric.window_mean(start, end)
        if math.isnan(p) or math.isnan(v):
            continue
        rates = {}
        for name in papi_names:
            mean = trace.metrics[name].window_mean(start, end)
            if not math.isnan(mean):
                rates[name[len(ApapiPlugin.PREFIX) :]] = mean
        out.append(
            PhaseProfile(
                workload=str(meta["workload"]),
                suite=str(meta["suite"]),
                frequency_mhz=int(meta["frequency_mhz"]),
                threads=int(meta["threads"]),
                run_index=int(meta["run_index"]),
                phase_name=region,
                start_s=start,
                end_s=end,
                active_threads=active,
                power_w=p,
                voltage_v=v,
                counter_rates_per_s=rates,
            )
        )
    return out


def _profile_fast(
    trace: Trace,
    power_metric: MetricStream,
    voltage_metric: MetricStream,
    min_duration_s: float,
) -> List[PhaseProfile]:
    """Batched windowed extraction, bit-identical to the scalar loop.

    Stream arrays and metadata conversions are hoisted out of the
    interval loop.  The tracer fast path gives every stream of a trace
    the *same* times array, so window bounds are computed once on the
    power stream and shared with every stream whose times array *is*
    that object (identity, not equality — streams with their own grid,
    e.g. fault-corrupted copies, recompute honestly).  The per-window
    arithmetic is unchanged: ``np.add.reduce`` is ``ndarray.mean``'s
    own pairwise summation without the method dispatch — sum/count,
    bit-identical to the ``window_mean`` calls of the reference loop
    above.
    """
    meta = trace.meta
    workload = str(meta["workload"])
    suite = str(meta["suite"])
    frequency_mhz = int(meta["frequency_mhz"])
    threads = int(meta["threads"])
    run_index = int(meta["run_index"])
    prefix = ApapiPlugin.PREFIX
    prefix_len = len(prefix)
    papi = [
        (name[prefix_len:], m.times_s, m.values)
        for name, m in trace.metrics.items()
        if name.startswith(prefix)
    ]
    p_times, p_values = power_metric.times_s, power_metric.values
    v_times, v_values = voltage_metric.times_s, voltage_metric.values
    nan = float("nan")
    searchsorted = np.searchsorted
    reduce = np.add.reduce
    out: List[PhaseProfile] = []
    for region, start, end, active in trace.phase_intervals():
        if end - start < min_duration_s:
            continue
        if end < start:
            raise ValueError("window end before start")
        lo = int(searchsorted(p_times, start, side="left"))
        hi = int(searchsorted(p_times, end, side="left"))
        p = float(reduce(p_values[lo:hi]) / (hi - lo)) if hi > lo else nan
        if v_times is p_times:
            vlo, vhi = lo, hi
        else:
            vlo = int(searchsorted(v_times, start, side="left"))
            vhi = int(searchsorted(v_times, end, side="left"))
        v = float(reduce(v_values[vlo:vhi]) / (vhi - vlo)) if vhi > vlo else nan
        if math.isnan(p) or math.isnan(v):
            continue
        rates = {}
        for counter, times, values in papi:
            if times is p_times:
                clo, chi = lo, hi
            else:
                clo = int(searchsorted(times, start, side="left"))
                chi = int(searchsorted(times, end, side="left"))
            if chi <= clo:
                continue
            mean = float(reduce(values[clo:chi]) / (chi - clo))
            if not math.isnan(mean):
                rates[counter] = mean
        out.append(
            PhaseProfile(
                workload=workload,
                suite=suite,
                frequency_mhz=frequency_mhz,
                threads=threads,
                run_index=run_index,
                phase_name=region,
                start_s=start,
                end_s=end,
                active_threads=active,
                power_w=p,
                voltage_v=v,
                counter_rates_per_s=rates,
            )
        )
    return out


def haecsim_profiles(trace: Trace) -> List[PhaseProfile]:
    """HAEC-SIM-style profiles for roco2 kernel traces.

    Validates the roco2 invariant the HAEC-SIM module relied on:
    homogeneous kernels, i.e. a flat sequence of non-overlapping
    phases with constant thread count within each phase.
    """
    if trace.meta.get("suite") not in ("roco2", "synthetic"):
        raise ValueError(
            "haecsim_profiles is only applicable to synthetic kernel traces; "
            f"got suite={trace.meta.get('suite')!r}"
        )
    intervals = trace.phase_intervals()
    ends = [e for (_, _, e, _) in intervals]
    starts = [s for (_, s, _, _) in intervals]
    for prev_end, next_start in zip(ends, starts[1:]):
        if next_start < prev_end - 1e-9:
            raise ValueError("roco2 phases must not overlap")
    return profile_trace(trace)


def postprocess_profiles(trace: Trace) -> List[PhaseProfile]:
    """Custom OTF2 post-processing for standardized benchmark traces."""
    return profile_trace(trace)
