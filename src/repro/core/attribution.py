"""Power attribution: decompose estimates into named contributions.

The paper's introduction argues that models "complement measurements in
terms of […] component resolution" — a sensor at the 12 V input sees
one number, while Equation 1's fitted terms attribute that number to
activities.  This module performs the decomposition:

* per-term: each α·Eₙ·V²f contribution, the β·V²f residual dynamic
  term, and the γ·V + δ static/system floor;
* grouped: the counter terms rolled up by microarchitectural family
  (memory, stalls, branches, …) using the counter metadata.

Attribution is exact by construction (terms sum to the prediction) and
is validated against the simulator's hidden component truth in the
tests: the attributed dynamic share must track the true dynamic share
across workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.core.model import FittedPowerModel
from repro.hardware.counters import describe

__all__ = ["PowerAttribution", "attribute", "attribute_dataset"]

#: Roll-up of counter groups into reporting categories.
_FAMILY_LABEL = {
    "cache_l1": "memory",
    "cache_l2": "memory",
    "cache_l3": "memory",
    "coherence": "memory",
    "prefetch": "memory",
    "tlb": "memory",
    "stall": "pipeline",
    "branch": "speculation",
    "instruction": "execution",
    "cycle": "execution",
}


@dataclass(frozen=True)
class PowerAttribution:
    """Decomposition of one power estimate (all values in watts)."""

    total_w: float
    per_counter_w: Dict[str, float]
    residual_dynamic_w: float
    """β·V²f — dynamic power not represented by captured events."""
    static_w: float
    """γ·V + δ·Z — voltage-dependent static plus system floor."""

    def by_family(self) -> Dict[str, float]:
        """Counter contributions rolled up by family, plus the
        structural terms."""
        out: Dict[str, float] = {}
        for counter, watts in self.per_counter_w.items():
            label = _FAMILY_LABEL[describe(counter).group]
            out[label] = out.get(label, 0.0) + watts
        out["residual-dynamic"] = self.residual_dynamic_w
        out["static+system"] = self.static_w
        return out

    @property
    def dynamic_w(self) -> float:
        return sum(self.per_counter_w.values()) + self.residual_dynamic_w

    def check_consistency(self, atol: float = 1e-8) -> bool:
        return abs(self.dynamic_w + self.static_w - self.total_w) <= atol


def attribute(
    model: FittedPowerModel,
    *,
    counter_rates: Dict[str, float],
    voltage_v: float,
    frequency_mhz: float,
) -> PowerAttribution:
    """Attribute one operating point's estimated power to model terms.

    ``counter_rates`` are events per cycle for (at least) the model's
    counters.
    """
    if voltage_v <= 0 or frequency_mhz <= 0:
        raise ValueError("voltage and frequency must be positive")
    coeffs = model.coefficients
    v2f = voltage_v * voltage_v * frequency_mhz / 1000.0
    per_counter = {}
    for counter in model.counters:
        if counter not in counter_rates:
            raise KeyError(f"missing rate for model counter {counter!r}")
        per_counter[counter] = (
            coeffs[f"alpha:{counter}"] * counter_rates[counter] * v2f
        )
    residual = coeffs["beta:V2f"] * v2f
    static = coeffs["gamma:V"] * voltage_v + coeffs["delta:Z"]
    total = sum(per_counter.values()) + residual + static
    return PowerAttribution(
        total_w=total,
        per_counter_w=per_counter,
        residual_dynamic_w=residual,
        static_w=static,
    )


def attribute_dataset(
    model: FittedPowerModel, dataset: PowerDataset
) -> List[PowerAttribution]:
    """Attribute every row of a dataset (e.g. for a per-workload power
    breakdown report)."""
    out = []
    for i in range(dataset.n_samples):
        rates = {
            c: float(dataset.column(c)[i]) for c in model.counters
        }
        out.append(
            attribute(
                model,
                counter_rates=rates,
                voltage_v=float(dataset.voltage_v[i]),
                frequency_mhz=float(dataset.frequency_mhz[i]),
            )
        )
    return out
