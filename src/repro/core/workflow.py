"""End-to-end modeling workflow (Fig. 1 of the paper).

``data acquisition → post-processing → PMC selection → model
formulation → validation`` in one call, so the examples and the CLI can
run the whole methodology without touching the individual layers.

The workflow accepts a pre-acquired ``dataset`` (e.g. the degraded
output of a fault-injected :class:`ResilientCampaign`) and a
``robust=True`` mode that switches the whole pipeline onto the hardened
path: Huber-IRLS fits, missing-candidate-tolerant selection, and a
clamped event count when the degraded data cannot support the requested
model size.  Degradation is surfaced, never swallowed — see
:attr:`WorkflowResult.warnings` and :attr:`WorkflowResult.diagnostics`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.acquisition.campaign import run_campaign
from repro.acquisition.dataset import PowerDataset
from repro.audit.framework import AuditReport
from repro.core.model import FittedPowerModel, PowerModel
from repro.core.scenarios import ScenarioResult, scenario_cv_all
from repro.core.selection import SelectionResult, select_events
from repro.hardware.dvfs import PAPER_FREQUENCIES_MHZ, SELECTION_FREQUENCY_MHZ
from repro.hardware.platform import Platform
from repro.parallel import StageTimer, TimingReport, resolve_executor
from repro.seeding import DEFAULT_SEED
from repro.stats.linalg import FitDiagnostics
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads

__all__ = ["WorkflowResult", "run_workflow"]

#: Fewest selection rows that can support the smallest Equation 1 trial
#: fit (one alpha term + beta/gamma/delta) with a residual left over.
MIN_SELECTION_ROWS = 5


@dataclass(frozen=True)
class WorkflowResult:
    """Everything the four workflow stages produced."""

    selection_dataset: PowerDataset
    """All workloads at the fixed selection frequency (Section IV-A)."""
    full_dataset: PowerDataset
    """All workloads across all DVFS states (Section IV-B)."""
    selection: SelectionResult
    model: FittedPowerModel
    """Equation 1 fitted on the full dataset with the selected events."""
    validation: ScenarioResult
    """10-fold cross validation of the model (Table II scenario)."""
    warnings: Tuple[str, ...] = ()
    """Degraded-data notes gathered across the stages (robust mode)."""
    timing: Optional[TimingReport] = None
    """Per-stage wall time (monotonic clock); not part of the modeled
    output, so bit-identity comparisons must exclude it."""
    audit: Optional[AuditReport] = None
    """Statistical-rigor audit (:mod:`repro.audit`) of the model,
    selection and validation artifacts; ``None`` only when the caller
    opted out with ``audit=False``."""

    @property
    def selected_counters(self) -> Tuple[str, ...]:
        return self.selection.selected

    @property
    def diagnostics(self) -> Optional[FitDiagnostics]:
        """Numerical provenance of the final model fit."""
        return self.model.diagnostics

    def summary(self) -> str:
        rows = [
            "Workflow summary",
            f"  selection dataset: {self.selection_dataset.n_samples} phases "
            f"@ {int(self.selection_dataset.frequency_mhz[0])} MHz",
            f"  full dataset:      {self.full_dataset.n_samples} phases, "
            f"{len(set(map(int, self.full_dataset.frequency_mhz)))} DVFS states",
            f"  selected events:   {', '.join(self.selected_counters)}",
            f"  model fit:         R2={self.model.rsquared:.4f} "
            f"Adj.R2={self.model.rsquared_adj:.4f} "
            f"({self.model.estimator})",
            f"  10-fold CV MAPE:   {self.validation.mape:.2f} %",
        ]
        if self.diagnostics is not None and not self.diagnostics.clean:
            rows.append(f"  fit diagnostics:   {self.diagnostics.summary()}")
        if self.audit is not None:
            rows.append(
                f"  audit verdict:     {self.audit.verdict} "
                f"({len(self.audit.findings)} finding(s))"
            )
        for w in self.warnings:
            rows.append(f"  warning: {w}")
        if self.timing is not None and self.timing.stages:
            rows.append("  timing:")
            rows.extend(f"    {s.describe()}" for s in self.timing.stages)
        return "\n".join(rows)


def run_workflow(
    platform: Optional[Platform] = None,
    *,
    workloads: Optional[Sequence[Workload]] = None,
    selection_frequency_mhz: int = SELECTION_FREQUENCY_MHZ,
    frequencies_mhz: Sequence[int] = PAPER_FREQUENCIES_MHZ,
    n_events: int = 6,
    criterion: str = "r2",
    seed: int = DEFAULT_SEED,
    sampling_interval_s: float = 0.1,
    dataset: Optional[PowerDataset] = None,
    robust: bool = False,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
    audit: bool = True,
) -> WorkflowResult:
    """Run the complete methodology of the paper.

    Defaults reproduce the paper's setup: all roco2 + SPEC workloads,
    counter selection at 2400 MHz, model training/validation across the
    five DVFS states, six selected events.

    Parameters
    ----------
    dataset:
        Pre-acquired full dataset; when given, acquisition is skipped
        and the workflow models exactly these rows (the chaos pipeline
        hands the degraded output of a resilient campaign here).
    robust:
        Route every stage through the hardened path: Huber-IRLS fits
        (``estimator="huber"``), selection that skips missing/unfittable
        candidates instead of raising, a clamped event count when fewer
        candidates survive, and a selection-frequency fallback to the
        full dataset when the degraded campaign lost that frequency
        entirely.  All such adaptations land in the result's
        ``warnings``.  Robust validation additionally scores fold MAPEs
        with ``on_zero="skip"``, recording skipped rows as warnings, so
        one corrupt sample cannot abort the whole evaluation.
    parallel, max_workers:
        Execution backend for the acquisition, selection and validation
        stages (see :mod:`repro.parallel`); the result is bit-identical
        whichever backend runs, and per-stage wall time lands in
        ``result.timing``.  Under the process backend the selection and
        validation stages dispatch through the zero-copy shared-memory
        arena (each stage publishes its arrays once, closes — and
        thereby unlinks — its segments on the way out, success or
        failure, so a completed workflow leaves nothing in
        ``/dev/shm``); ``REPRO_ARENA=0`` restores the historical
        pickled-payload dispatch.
    fast:
        Run selection and cross validation through the Gram-cache
        fast-fit kernels (:mod:`repro.stats.fastfit`).  Default
        (``None``) resolves the ``REPRO_FASTFIT`` environment variable
        and falls back to on; the robust (Huber) pipeline always uses
        the exact per-fit path.  Selected counters and warnings are
        identical either way, fit statistics agree within 1e-9
        relative tolerance.
    audit:
        Run the :mod:`repro.audit` statistical-rigor pass over the
        produced artifacts and attach the report (default on; the pass
        is read-only and costs milliseconds next to acquisition).
    """
    platform = platform or Platform(seed=seed)
    if selection_frequency_mhz not in frequencies_mhz:
        raise ValueError(
            "the selection frequency must be one of the campaign "
            f"frequencies, got {selection_frequency_mhz} vs {frequencies_mhz}"
        )

    run_warnings: list = []
    executor = resolve_executor(parallel, max_workers)
    timer = StageTimer()
    if dataset is not None:
        full = dataset
    else:
        workloads = (
            list(workloads) if workloads is not None else all_workloads()
        )
        with timer.stage(
            "acquisition",
            n_items=len(workloads) * len(frequencies_mhz),
            executor=executor,
        ):
            full = run_campaign(
                platform,
                workloads,
                frequencies_mhz,
                sampling_interval_s=sampling_interval_s,
                parallel=executor.kind,
                max_workers=executor.max_workers,
            )
    if full.n_samples == 0:
        raise ValueError("workflow dataset is empty")

    selection_ds = full.filter(frequency_mhz=selection_frequency_mhz)
    if selection_ds.n_samples == 0:
        if not robust:
            raise ValueError(
                f"dataset has no rows at the selection frequency "
                f"{selection_frequency_mhz} MHz"
            )
        run_warnings.append(
            f"no rows at selection frequency {selection_frequency_mhz} MHz; "
            "selecting on the full dataset instead"
        )
        selection_ds = full
    elif robust and selection_ds.n_samples < MIN_SELECTION_ROWS:
        # A degraded campaign can leave a frequency subset too thin for
        # even a one-counter trial fit; selection on it would reject
        # every candidate as underdetermined.
        run_warnings.append(
            f"only {selection_ds.n_samples} row(s) at selection frequency "
            f"{selection_frequency_mhz} MHz (need {MIN_SELECTION_ROWS}); "
            "selecting on the full dataset instead"
        )
        selection_ds = full

    estimator = "huber" if robust else "ols"
    effective_n_events = n_events
    if robust:
        n_candidates = len(selection_ds.counter_names)
        if effective_n_events > n_candidates:
            run_warnings.append(
                f"requested {n_events} events but the degraded dataset "
                f"carries only {n_candidates} counters; clamping"
            )
            effective_n_events = n_candidates
    with timer.stage(
        "selection", n_items=len(selection_ds.counter_names), executor=executor
    ):
        selection = select_events(
            selection_ds,
            effective_n_events,
            criterion=criterion,
            estimator=estimator,
            on_missing="skip" if robust else "raise",
            parallel=executor.kind,
            max_workers=executor.max_workers,
            fast=fast,
        )
    run_warnings.extend(selection.warnings)
    if not selection.selected:
        raise ValueError(
            "selection produced no events on this dataset; "
            + ("; ".join(selection.warnings) or "no diagnostics recorded")
        )
    with timer.stage("model-fit", n_items=1):
        model = PowerModel(selection.selected, estimator=estimator).fit(full)
    if model.diagnostics is not None:
        run_warnings.extend(model.diagnostics.warnings)
    n_splits = 10
    if robust and full.n_samples < n_splits:
        # Table II prescribes 10-fold CV, but a heavily degraded
        # dataset may not carry ten rows; leave-one-out is the honest
        # equivalent at that size.
        run_warnings.append(
            f"clamping cross-validation to {full.n_samples} folds: the "
            f"degraded dataset has fewer than {n_splits} rows"
        )
        n_splits = full.n_samples
    cv_issues: list = []
    with timer.stage("validation", n_items=n_splits, executor=executor):
        validation = scenario_cv_all(
            full,
            selection.selected,
            n_splits=n_splits,
            seed=seed,
            estimator=estimator,
            on_zero="skip" if robust else "raise",
            issues=cv_issues,
            parallel=executor.kind,
            max_workers=executor.max_workers,
            fast=fast,
        )
    run_warnings.extend(cv_issues)
    result = WorkflowResult(
        selection_dataset=selection_ds,
        full_dataset=full,
        selection=selection,
        model=model,
        validation=validation,
        warnings=tuple(run_warnings),
        timing=timer.report(),
    )
    if audit:
        from repro.audit.engine import audit_workflow

        result = replace(result, audit=audit_workflow(result))
    return result
