"""End-to-end modeling workflow (Fig. 1 of the paper).

``data acquisition → post-processing → PMC selection → model
formulation → validation`` in one call, so the examples and the CLI can
run the whole methodology without touching the individual layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.acquisition.campaign import run_campaign
from repro.acquisition.dataset import PowerDataset
from repro.core.model import FittedPowerModel, PowerModel
from repro.core.scenarios import ScenarioResult, scenario_cv_all
from repro.core.selection import SelectionResult, select_events
from repro.hardware.dvfs import PAPER_FREQUENCIES_MHZ, SELECTION_FREQUENCY_MHZ
from repro.hardware.platform import Platform
from repro.seeding import DEFAULT_SEED
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads

__all__ = ["WorkflowResult", "run_workflow"]


@dataclass(frozen=True)
class WorkflowResult:
    """Everything the four workflow stages produced."""

    selection_dataset: PowerDataset
    """All workloads at the fixed selection frequency (Section IV-A)."""
    full_dataset: PowerDataset
    """All workloads across all DVFS states (Section IV-B)."""
    selection: SelectionResult
    model: FittedPowerModel
    """Equation 1 fitted on the full dataset with the selected events."""
    validation: ScenarioResult
    """10-fold cross validation of the model (Table II scenario)."""

    @property
    def selected_counters(self) -> Tuple[str, ...]:
        return self.selection.selected

    def summary(self) -> str:
        rows = [
            "Workflow summary",
            f"  selection dataset: {self.selection_dataset.n_samples} phases "
            f"@ {int(self.selection_dataset.frequency_mhz[0])} MHz",
            f"  full dataset:      {self.full_dataset.n_samples} phases, "
            f"{len(set(map(int, self.full_dataset.frequency_mhz)))} DVFS states",
            f"  selected events:   {', '.join(self.selected_counters)}",
            f"  model fit:         R2={self.model.rsquared:.4f} "
            f"Adj.R2={self.model.rsquared_adj:.4f}",
            f"  10-fold CV MAPE:   {self.validation.mape:.2f} %",
        ]
        return "\n".join(rows)


def run_workflow(
    platform: Optional[Platform] = None,
    *,
    workloads: Optional[Sequence[Workload]] = None,
    selection_frequency_mhz: int = SELECTION_FREQUENCY_MHZ,
    frequencies_mhz: Sequence[int] = PAPER_FREQUENCIES_MHZ,
    n_events: int = 6,
    criterion: str = "r2",
    seed: int = DEFAULT_SEED,
    sampling_interval_s: float = 0.1,
) -> WorkflowResult:
    """Run the complete methodology of the paper.

    Defaults reproduce the paper's setup: all roco2 + SPEC workloads,
    counter selection at 2400 MHz, model training/validation across the
    five DVFS states, six selected events.
    """
    platform = platform or Platform(seed=seed)
    workloads = list(workloads) if workloads is not None else all_workloads()
    if selection_frequency_mhz not in frequencies_mhz:
        raise ValueError(
            "the selection frequency must be one of the campaign "
            f"frequencies, got {selection_frequency_mhz} vs {frequencies_mhz}"
        )

    full = run_campaign(
        platform,
        workloads,
        frequencies_mhz,
        sampling_interval_s=sampling_interval_s,
    )
    selection_ds = full.filter(frequency_mhz=selection_frequency_mhz)
    selection = select_events(
        selection_ds, n_events, criterion=criterion
    )
    model = PowerModel(selection.selected).fit(full)
    validation = scenario_cv_all(full, selection.selected, seed=seed)
    return WorkflowResult(
        selection_dataset=selection_ds,
        full_dataset=full,
        selection=selection,
        model=model,
        validation=validation,
    )
