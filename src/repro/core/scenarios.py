"""The four training scenarios of Section IV-B.

"To analyze the effect of unseen workloads on the power model and
assess its stability we consider four scenarios":

1. train on four random workloads (roco2 + SPEC), validate on the rest;
2. train on all roco2 workloads, validate on all SPEC OMP2012;
3. 10-fold cross validation over all experiments (Table II);
4. 10-fold cross validation over the roco2 experiments only.

The selected performance counters are held fixed across scenarios, as
in the paper ("due to practical considerations on the total amount of
measurements").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import DatasetHandle, PowerDataset
from repro.core.features import design_matrix
from repro.core.model import PowerModel
from repro.parallel import (
    ProcessExecutor,
    SharedArena,
    arena_enabled,
    resolve_executor,
    split_batches,
)
from repro.seeding import DEFAULT_SEED, derive_rng
from repro.stats.crossval import KFold
from repro.stats.fastfit import FoldGramSolver, fastfit_enabled
from repro.stats.metrics import bias, mape, r2_score

__all__ = [
    "ScenarioResult",
    "cv_out_of_fold_predictions",
    "scenario_random_workloads",
    "scenario_synthetic_to_spec",
    "scenario_cv_all",
    "scenario_cv_synthetic",
    "run_all_scenarios",
    "SCENARIO_NAMES",
]

SCENARIO_NAMES = (
    "1:random-workloads",
    "2:synthetic-to-spec",
    "3:cv-all",
    "4:cv-synthetic",
)


@dataclass(frozen=True)
class ScenarioResult:
    """Validation outcome of one scenario."""

    name: str
    validation: PowerDataset
    predicted: np.ndarray
    fold_mapes: Tuple[float, ...] = ()
    train_workloads: Tuple[str, ...] = ()
    aggregate: str = "mean"
    """How fold/draw MAPEs combine: ``mean`` (CV folds) or ``median``
    (robust statistic for the draw-dependent scenario 1)."""

    @property
    def mape(self) -> float:
        """Scenario MAPE: aggregated over folds/draws when present."""
        if self.fold_mapes:
            if self.aggregate == "median":
                return float(np.median(self.fold_mapes))
            return float(np.mean(self.fold_mapes))
        return mape(self.validation.power_w, self.predicted)

    @property
    def r2(self) -> float:
        return r2_score(self.validation.power_w, self.predicted)

    # ------------------------------------------------------------------
    def per_workload_mape(self) -> Dict[str, float]:
        """MAPE per workload across all DVFS states (Fig. 3)."""
        out: Dict[str, float] = {}
        names = np.array(self.validation.workloads)
        for w in dict.fromkeys(self.validation.workloads):
            m = names == w
            out[w] = mape(self.validation.power_w[m], self.predicted[m])
        return out

    def per_workload_bias(self) -> Dict[str, float]:
        """Mean signed error per workload — the Fig. 5a systematic-bias
        reading (positive = overestimated)."""
        out: Dict[str, float] = {}
        names = np.array(self.validation.workloads)
        for w in dict.fromkeys(self.validation.workloads):
            m = names == w
            out[w] = bias(self.validation.power_w[m], self.predicted[m])
        return out

    def experiment_scatter(
        self,
    ) -> List[Tuple[str, str, int, int, float, float]]:
        """Fig. 5 data points: one (workload, suite, freq, threads,
        actual mean, predicted mean) tuple per experiment."""
        rows = []
        for key in self.validation.experiment_keys():
            w, f, t = key
            m = np.array(
                [
                    (
                        self.validation.workloads[i],
                        int(self.validation.frequency_mhz[i]),
                        int(self.validation.threads[i]),
                    )
                    == key
                    for i in range(self.validation.n_samples)
                ]
            )
            rows.append(
                (
                    w,
                    self.validation.suites[int(np.flatnonzero(m)[0])],
                    f,
                    t,
                    float(self.validation.power_w[m].mean()),
                    float(self.predicted[m].mean()),
                )
            )
        return rows


# ----------------------------------------------------------------------
def _cv_fold_worker(
    args: Tuple[
        PowerDataset,
        Tuple[str, ...],
        str,
        str,
        np.ndarray,
        np.ndarray,
        str,
    ],
) -> Tuple[np.ndarray, float, Dict[str, float], int]:
    """Fit and score one CV fold (module-level, picklable worker).

    Returns (held-out predictions, fold MAPE, fit metrics, count of
    zero-power rows skipped by ``on_zero="skip"``).
    """
    dataset, counters, cov_type, estimator, train, test, on_zero = args
    model = PowerModel(counters, cov_type=cov_type, estimator=estimator)
    fitted = model.fit(dataset.subset(train))
    test_ds = dataset.subset(test)
    p = fitted.predict(test_ds)
    n_zero = int(np.sum(test_ds.power_w == 0.0))  # replint: ignore[RL004] -- exact-zero guard: MAPE division sentinel
    return (
        p,
        mape(test_ds.power_w, p, on_zero=on_zero),
        {"r2": fitted.rsquared, "adj_r2": fitted.rsquared_adj},
        n_zero,
    )


def _cv_fold_batch_worker(
    args: Tuple[
        DatasetHandle,
        Tuple[str, ...],
        str,
        str,
        Tuple[Tuple[np.ndarray, np.ndarray], ...],
        str,
    ],
) -> List[Tuple[np.ndarray, float, Dict[str, float], int]]:
    """Fit and score one batch of CV folds against a shared dataset.

    The zero-copy variant of :func:`_cv_fold_worker`: the work item
    carries a :class:`~repro.acquisition.dataset.DatasetHandle` and
    this worker's fold slices instead of the pickled dataset; each fold
    runs the exact per-fold worker, so the flattened batch outcomes are
    bitwise-identical to per-fold dispatch.
    """
    handle, counters, cov_type, estimator, folds, on_zero = args
    dataset = handle.resolve()
    return [
        _cv_fold_worker(
            (dataset, counters, cov_type, estimator, train, test, on_zero)
        )
        for train, test in folds
    ]


def cv_out_of_fold_predictions(
    dataset: PowerDataset,
    counters: Sequence[str],
    *,
    n_splits: int = 10,
    seed: int = DEFAULT_SEED,
    cov_type: str = "HC3",
    estimator: str = "ols",
    on_zero: str = "raise",
    issues: Optional[List[str]] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Tuple[np.ndarray, Tuple[float, ...], List[Dict[str, float]]]:
    """k-fold CV with random indexing: out-of-fold predictions.

    Returns (predictions aligned with dataset rows, per-fold MAPEs,
    per-fold fit metrics [R², Adj.R²]).  ``estimator="huber"`` runs the
    robust per-fold fits.  ``on_zero="skip"`` lets degraded pipelines
    survive zero-power rows in a fold's MAPE; each occurrence is
    recorded in the ``issues`` sink when one is given.  Folds run on
    the ``parallel``/``max_workers`` backend (see
    :mod:`repro.parallel`), assembled in fold order — bit-identical to
    serial; the process backend shares the dataset through a zero-copy
    arena and dispatches fold batches as handles (``REPRO_ARENA=0``
    restores pickled per-fold payloads).  ``fast`` (default: ``REPRO_FASTFIT``, on) solves the OLS
    folds from Gram downdates (:mod:`repro.stats.fastfit`) within 1e-9
    relative tolerance of the per-fold refits; Huber folds and any fold
    the solver declines take the exact path.
    """
    splits = list(
        KFold(n_splits, shuffle=True, seed=seed).split(dataset.n_samples)
    )
    if estimator == "ols" and fastfit_enabled(fast):
        # Constructing the model validates the counter list (duplicate
        # names) exactly as the per-fold workers would.
        PowerModel(tuple(counters), cov_type=cov_type, estimator=estimator)
        solver = FoldGramSolver(
            dataset.power_w, design_matrix(dataset, list(counters))
        )
        outcomes = []
        n_declined = 0
        for train, test in splits:
            fit = solver.solve_fold(train, test)
            if fit is None:
                # Not fast-eligible (degraded/degenerate fold): exact
                # slow-path fit with its historical errors.
                n_declined += 1
                outcomes.append(
                    _cv_fold_worker(
                        (dataset, tuple(counters), cov_type, estimator,
                         train, test, on_zero)
                    )
                )
                continue
            p = solver.predict(fit, test)
            test_power_w = dataset.power_w[test]
            n_zero = int(np.sum(test_power_w == 0.0))  # replint: ignore[RL004] -- exact-zero guard: MAPE division sentinel
            outcomes.append(
                (
                    p,
                    mape(test_power_w, p, on_zero=on_zero),
                    {"r2": fit.rsquared, "adj_r2": fit.rsquared_adj},
                    n_zero,
                )
            )
        if n_declined and issues is not None:
            # Declines mean borderline-degenerate fold designs — a
            # data-quality signal the audit layer (AU011) grades, so it
            # is recorded as provenance, not just lost to the fallback.
            issues.append(
                f"fastfit: {n_declined}/{len(splits)} fold(s) fell back "
                "to the exact fit path"
            )
    else:
        # Fold fits are sub-millisecond: the small-task guard keeps
        # pool backends away unless the fold count can amortize them.
        executor = resolve_executor(
            parallel, max_workers, n_items=len(splits),
            min_items_per_worker=8,
        )
        if isinstance(executor, ProcessExecutor) and arena_enabled():
            # Zero-copy dispatch: publish the dataset once, ship
            # handles plus contiguous fold batches; flatten in batch
            # order = fold order.  REPRO_ARENA=0 restores the pickled
            # per-fold dispatch.
            with SharedArena() as arena:
                handle = dataset.share(arena)
                batches = split_batches(splits, executor.max_workers)
                nested = executor.map(
                    _cv_fold_batch_worker,
                    [
                        (
                            handle,
                            tuple(counters),
                            cov_type,
                            estimator,
                            tuple(batch),
                            on_zero,
                        )
                        for batch in batches
                    ],
                )
            outcomes = [outcome for sub in nested for outcome in sub]
        else:
            outcomes = executor.map(
                _cv_fold_worker,
                [
                    (
                        dataset,
                        tuple(counters),
                        cov_type,
                        estimator,
                        train,
                        test,
                        on_zero,
                    )
                    for train, test in splits
                ],
            )
    preds = np.full(dataset.n_samples, np.nan)
    fold_mapes: List[float] = []
    fold_fits: List[Dict[str, float]] = []
    for fold, ((train, test), (p, fold_mape, fits, n_zero)) in enumerate(
        zip(splits, outcomes)
    ):
        preds[test] = p
        fold_mapes.append(fold_mape)
        fold_fits.append(fits)
        if n_zero and issues is not None:
            issues.append(
                f"fold {fold}: skipped {n_zero} zero-power row(s) in MAPE"
            )
    if np.any(np.isnan(preds)):  # pragma: no cover - KFold covers all rows
        raise AssertionError("incomplete out-of-fold coverage")
    return preds, tuple(fold_mapes), fold_fits


# ----------------------------------------------------------------------
def scenario_random_workloads(
    dataset: PowerDataset,
    counters: Sequence[str],
    *,
    n_train: int = 4,
    seed: int = DEFAULT_SEED,
    n_repeats: int = 9,
) -> ScenarioResult:
    """Scenario 1: train on ``n_train`` random workloads, validate on
    the rest.

    The paper draws the workloads "from roco2 and SPEC OMP2012" — read
    here as stratified over both suites (half each).  A 4-workload
    training set makes the outcome strongly draw-dependent, so the
    scenario is repeated ``n_repeats`` times with independent draws and
    the reported MAPE is the *median* over draws (``fold_mapes``
    carries the per-draw values — the long tail of draws without any
    memory-bound workload is the coefficient instability of [18],
    quantified separately in the selection-stability benchmark); the
    validation rows and predictions of all draws are concatenated for
    the per-workload analyses.
    """
    names = list(dict.fromkeys(dataset.workloads))
    if len(names) <= n_train:
        raise ValueError(
            f"need more than {n_train} workloads, have {len(names)}"
        )
    if n_repeats < 1:
        raise ValueError("n_repeats must be positive")
    suites_by_name = {}
    for w, s in zip(dataset.workloads, dataset.suites):
        suites_by_name.setdefault(w, s)
    synth = [n for n in names if suites_by_name[n] in ("roco2", "synthetic")]
    real = [n for n in names if n not in synth]

    all_train: List[str] = []
    valid_parts: List[PowerDataset] = []
    pred_parts: List[np.ndarray] = []
    draw_mapes: List[float] = []
    for repeat in range(n_repeats):
        rng = derive_rng(seed, "scenario1", repeat)
        if synth and real and n_train >= 2:
            n_real = min(n_train - n_train // 2, len(real))
            n_synth = n_train - n_real
            train_names = tuple(
                rng.choice(synth, size=n_synth, replace=False)
            ) + tuple(rng.choice(real, size=n_real, replace=False))
        else:
            train_names = tuple(rng.choice(names, size=n_train, replace=False))
        train = dataset.filter(workloads=train_names)
        valid = dataset.filter(
            workloads=[n for n in names if n not in train_names]
        )
        fitted = PowerModel(counters).fit(train)
        pred = fitted.predict(valid)
        draw_mapes.append(mape(valid.power_w, pred))
        valid_parts.append(valid)
        pred_parts.append(pred)
        all_train.extend(train_names)
    return ScenarioResult(
        name=SCENARIO_NAMES[0],
        validation=PowerDataset.concat(valid_parts),
        predicted=np.concatenate(pred_parts),
        fold_mapes=tuple(draw_mapes),
        train_workloads=tuple(dict.fromkeys(all_train)),
        aggregate="median",
    )


def scenario_synthetic_to_spec(
    dataset: PowerDataset, counters: Sequence[str]
) -> ScenarioResult:
    """Scenario 2: train on roco2 only, validate on SPEC OMP2012."""
    train = dataset.filter(suite="roco2")
    valid = dataset.filter(suite="spec_omp2012")
    if train.n_samples == 0 or valid.n_samples == 0:
        raise ValueError("dataset must contain both roco2 and SPEC rows")
    fitted = PowerModel(counters).fit(train)
    return ScenarioResult(
        name=SCENARIO_NAMES[1],
        validation=valid,
        predicted=fitted.predict(valid),
        train_workloads=tuple(dict.fromkeys(train.workloads)),
    )


def scenario_cv_all(
    dataset: PowerDataset,
    counters: Sequence[str],
    *,
    n_splits: int = 10,
    seed: int = DEFAULT_SEED,
    estimator: str = "ols",
    on_zero: str = "raise",
    issues: Optional[List[str]] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> ScenarioResult:
    """Scenario 3: 10-fold CV over all experiments (the Table II run)."""
    preds, fold_mapes, _ = cv_out_of_fold_predictions(
        dataset,
        counters,
        n_splits=n_splits,
        seed=seed,
        estimator=estimator,
        on_zero=on_zero,
        issues=issues,
        parallel=parallel,
        max_workers=max_workers,
        fast=fast,
    )
    return ScenarioResult(
        name=SCENARIO_NAMES[2],
        validation=dataset,
        predicted=preds,
        fold_mapes=fold_mapes,
    )


def scenario_cv_synthetic(
    dataset: PowerDataset,
    counters: Sequence[str],
    *,
    n_splits: int = 10,
    seed: int = DEFAULT_SEED,
    estimator: str = "ols",
    on_zero: str = "raise",
    issues: Optional[List[str]] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> ScenarioResult:
    """Scenario 4: 10-fold CV over the roco2 experiments only."""
    synth = dataset.filter(suite="roco2")
    if synth.n_samples == 0:
        raise ValueError("dataset contains no roco2 rows")
    preds, fold_mapes, _ = cv_out_of_fold_predictions(
        synth,
        counters,
        n_splits=n_splits,
        seed=seed,
        estimator=estimator,
        on_zero=on_zero,
        issues=issues,
        parallel=parallel,
        max_workers=max_workers,
        fast=fast,
    )
    return ScenarioResult(
        name=SCENARIO_NAMES[3],
        validation=synth,
        predicted=preds,
        fold_mapes=fold_mapes,
    )


def run_all_scenarios(
    dataset: PowerDataset,
    counters: Sequence[str],
    *,
    seed: int = DEFAULT_SEED,
    n_train_random: int = 4,
    on_zero: str = "raise",
    issues: Optional[List[str]] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Dict[str, ScenarioResult]:
    """All four scenarios (Fig. 4), keyed by scenario name."""
    return {
        SCENARIO_NAMES[0]: scenario_random_workloads(
            dataset, counters, n_train=n_train_random, seed=seed
        ),
        SCENARIO_NAMES[1]: scenario_synthetic_to_spec(dataset, counters),
        SCENARIO_NAMES[2]: scenario_cv_all(
            dataset,
            counters,
            seed=seed,
            on_zero=on_zero,
            issues=issues,
            parallel=parallel,
            max_workers=max_workers,
            fast=fast,
        ),
        SCENARIO_NAMES[3]: scenario_cv_synthetic(
            dataset,
            counters,
            seed=seed,
            on_zero=on_zero,
            issues=issues,
            parallel=parallel,
            max_workers=max_workers,
            fast=fast,
        ),
    }
