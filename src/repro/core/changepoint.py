"""Phase detection from streamed power: segmentation without
instrumentation.

The paper's phase profiles rely on Score-P *compiler instrumentation*
to mark region boundaries.  Production binaries are rarely
instrumented; what a deployed estimator sees is an unlabelled stream.
This module recovers phase structure from that stream:

* :func:`cusum_changepoints` — online-style CUSUM detector: flags a
  change when the cumulative deviation from the running phase mean
  exceeds a threshold measured in noise standard deviations.
* :func:`segment_mean` / :class:`PhaseSegment` — turn detected
  boundaries into labelled segments.
* :func:`detect_phases` — convenience over an
  :class:`~repro.core.online.OnlineTimeline`, validated in the tests
  against the simulator's true phase boundaries.

Both the statistic and the segmentation are implemented from scratch
(no external changepoint library exists in this environment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "cusum_changepoints",
    "PhaseSegment",
    "segment_mean",
    "detect_phases",
]


def cusum_changepoints(
    values: np.ndarray,
    *,
    threshold_sigmas: float = 6.0,
    drift_sigmas: float = 0.5,
    noise_sigma: Optional[float] = None,
    min_segment: int = 3,
) -> List[int]:
    """Two-sided CUSUM changepoint detection.

    Parameters
    ----------
    values:
        The sampled series (e.g. power estimates at a fixed cadence).
    threshold_sigmas:
        Alarm threshold ``h`` in units of the noise sigma.
    drift_sigmas:
        Slack ``k`` per sample (also in sigmas) — deviations smaller
        than this never accumulate, making the detector insensitive to
        noise while it integrates persistent shifts quickly.
    noise_sigma:
        Noise scale; estimated robustly from first differences
        (median absolute deviation) when not given.
    min_segment:
        Minimum samples between changepoints (detector dead time).

    Returns
    -------
    list of int
        Indices where a *new* phase starts (never includes 0).
    """
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size < 2 * min_segment:
        return []
    if threshold_sigmas <= 0 or min_segment < 1:
        raise ValueError("threshold and min_segment must be positive")
    if noise_sigma is None:
        diffs = np.diff(x)
        mad = float(np.median(np.abs(diffs - np.median(diffs))))
        noise_sigma = max(1.4826 * mad / np.sqrt(2.0), 1e-9)
    h = threshold_sigmas * noise_sigma
    k = drift_sigmas * noise_sigma

    changes: List[int] = []
    seg_start = 0
    mean = x[0]
    n_seen = 1
    pos = neg = 0.0
    i = 1
    while i < x.size:
        dev = x[i] - mean
        pos = max(0.0, pos + dev - k)
        neg = max(0.0, neg - dev - k)
        if (pos > h or neg > h) and (i - seg_start) >= min_segment:
            changes.append(i)
            seg_start = i
            mean = x[i]
            n_seen = 1
            pos = neg = 0.0
        else:
            # Update the running phase mean (only while not alarming,
            # so a slow integration does not drag the reference along).
            n_seen += 1
            mean += (x[i] - mean) / n_seen
        i += 1
    return changes


@dataclass(frozen=True)
class PhaseSegment:
    """One detected phase: [start, end) sample indices and its level."""

    start: int
    end: int
    mean: float

    @property
    def length(self) -> int:
        return self.end - self.start


def segment_mean(
    values: np.ndarray, changepoints: Sequence[int]
) -> List[PhaseSegment]:
    """Split a series at the changepoints into labelled segments."""
    x = np.asarray(values, dtype=np.float64).ravel()
    bounds = [0] + sorted(int(c) for c in changepoints) + [x.size]
    segments = []
    for a, b in zip(bounds, bounds[1:]):
        if b <= a:
            raise ValueError("changepoints must be strictly increasing")
        segments.append(
            PhaseSegment(start=a, end=b, mean=float(x[a:b].mean()))
        )
    return segments


def detect_phases(
    timeline,
    *,
    threshold_sigmas: float = 6.0,
    min_segment: int = 3,
    use: str = "estimated",
) -> List[PhaseSegment]:
    """Detect phases in an :class:`~repro.core.online.OnlineTimeline`.

    ``use`` selects the stream: ``estimated`` (model output — the
    deployment case) or ``measured`` (reference sensors).
    """
    if use == "estimated":
        series = timeline.estimated_w
    elif use == "measured":
        series = timeline.measured_w
    else:
        raise ValueError(f"use must be 'estimated' or 'measured', got {use!r}")
    changes = cusum_changepoints(
        series, threshold_sigmas=threshold_sigmas, min_segment=min_segment
    )
    return segment_mean(series, changes)
