"""Design matrix of Equation 1.

.. math::

    P_{Total} = \\underbrace{\\left(\\sum_{n=0}^{N-1} \\alpha_n E_n
    V_{DD}^2 f_{clk}\\right) + \\beta V_{DD}^2 f_{clk}}_{\\text{dynamic
    power}} + \\underbrace{\\gamma V_{DD} + \\delta Z}_{\\text{static
    power}}

Columns, in order: one :math:`E_n V^2 f` column per selected counter,
then :math:`V^2 f` (β, uncaptured dynamic power), :math:`V` (γ, static
processor power), and the constant :math:`Z = 1` (δ, system power
independent of core voltage).  The model is fit **without** an
additional intercept — δZ *is* the constant term.

Frequency enters in GHz so all columns live on comparable scales
(conditioning; the coefficients are then W per (V²·GHz) resp. W).
Counter rates are events **per cycle**, the normalization Section III-C
motivates explicitly to decouple the counter columns from
:math:`f_{clk}`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset

__all__ = ["design_matrix", "feature_names", "STRUCTURAL_TERMS"]

#: Names of the non-counter columns, in design-matrix order.
STRUCTURAL_TERMS: Tuple[str, ...] = ("beta:V2f", "gamma:V", "delta:Z")


def feature_names(counters: Sequence[str]) -> List[str]:
    """Column names of the Equation 1 design matrix."""
    return [f"alpha:{c}" for c in counters] + list(STRUCTURAL_TERMS)


def design_matrix(
    dataset: PowerDataset, counters: Sequence[str]
) -> np.ndarray:
    """Build the Equation 1 regressor matrix for a dataset.

    Parameters
    ----------
    dataset:
        Source of counter rates (events/cycle), voltage and frequency.
    counters:
        Selected PMC event names (may be empty: the structural terms
        alone then model the workload-independent baseline).
    """
    v = dataset.voltage_v
    f_ghz = dataset.frequency_mhz / 1000.0
    v2f = v * v * f_ghz
    cols = []
    if counters:
        rates = dataset.counter_matrix(list(counters))
        cols.append(rates * v2f[:, np.newaxis])
    cols.append(v2f[:, np.newaxis])
    cols.append(v[:, np.newaxis])
    cols.append(np.ones((dataset.n_samples, 1)))
    return np.hstack(cols)
