"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints these next to the paper's published
values, so a reproduction run reads like the evaluation section.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.framework import AuditReport

__all__ = [
    "render_table",
    "render_series",
    "render_counts",
    "render_audit",
    "fmt",
]


def fmt(value: float, digits: int = 3) -> str:
    """Format a number, printing the paper's "n/a" for NaN."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [
                fmt(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        cells = []
        for i, cell in enumerate(r):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_counts(
    counts: Dict[str, int], *, title: Optional[str] = None
) -> str:
    """One-line ``key=value`` summary of named counts, zeros omitted.

    Used by the drift and campaign reports so structured tallies render
    compactly (``model=37 baseline=3 skipped=1``) without each report
    rolling its own formatting.
    """
    body = " ".join(f"{k}={v}" for k, v in counts.items() if v)
    if not body:
        body = "none"
    return f"{title}: {body}" if title else body


def render_audit(report: AuditReport, *, title: str = "audit") -> str:
    """Verdict block for a statistical-rigor audit report.

    Printed next to the tables it gates, so a reader never sees an R²
    or MAPE without the verdict that qualifies it.
    """
    lines = [
        f"{title}: verdict {report.verdict} "
        f"({len(report.findings)} finding"
        f"{'s' if len(report.findings) != 1 else ''}, "
        f"{len(report.artifacts)} artifact"
        f"{'s' if len(report.artifacts) != 1 else ''})"
    ]
    lines.extend(f"  {f.format()}" for f in report.findings)
    return "\n".join(lines)


def render_series(
    values: Dict[str, float],
    *,
    title: Optional[str] = None,
    unit: str = "",
    bar_width: int = 40,
) -> str:
    """ASCII bar chart for a named series (the "figure" analogue)."""
    lines = []
    if title:
        lines.append(title)
    if not values:
        return title or ""
    vmax = max(abs(v) for v in values.values()) or 1.0
    name_w = max(len(k) for k in values)
    for name, v in values.items():
        bar = "#" * max(int(round(abs(v) / vmax * bar_width)), 0)
        sign = "-" if v < 0 else ""
        lines.append(
            f"{name.ljust(name_w)}  {fmt(v, 2).rjust(8)}{unit}  {sign}{bar}"
        )
    return "\n".join(lines)
