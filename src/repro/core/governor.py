"""Model-driven power capping: the power model as a control input.

"Modern HPC systems […] are constrained by power and energy
consumption.  As such, to balance performance and power consumption,
there is a growing need for accurate real-time power information for
efficient power management" — the paper's opening sentences.  This
module closes that loop: a DVFS governor that uses the fitted
Equation 1 model to choose, every control interval, the highest core
frequency whose *predicted* power stays under a cap.

The governor exploits the model's structure: counter rates are events
per cycle, so the measured rates at the current frequency predict power
at *other* frequencies by swapping the :math:`V^2 f` term (exact for
compute-bound phases; conservative for memory-bound phases whose
per-cycle rates rise as the core slows — the governor re-measures every
interval, so the approximation self-corrects).

:func:`govern_workload` runs the closed loop against the simulator:
measure (noisy PMU) → predict across the P-state ladder → set frequency
→ the "machine" responds with ground-truth power — reporting cap
violations, performance retained, and the control trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import FittedPowerModel
from repro.hardware.config import PlatformConfig
from repro.hardware.microarch import evaluate
from repro.hardware.platform import Platform
from repro.hardware.power import compute_power
from repro.seeding import derive_rng
from repro.workloads.base import Workload

__all__ = ["PowerCapGovernor", "GovernorTimeline", "govern_workload"]


class PowerCapGovernor:
    """Chooses the fastest P-state whose predicted power fits the cap."""

    def __init__(
        self,
        model: FittedPowerModel,
        frequencies_mhz: Sequence[int],
        cfg: PlatformConfig,
        cap_w: float,
        *,
        headroom_w: float = 2.0,
    ) -> None:
        if cap_w <= 0:
            raise ValueError("cap must be positive")
        if not frequencies_mhz:
            raise ValueError("need at least one P-state")
        self.model = model
        self.frequencies_mhz = tuple(sorted(int(f) for f in frequencies_mhz))
        self.cfg = cfg
        self.cap_w = cap_w
        self.headroom_w = headroom_w

    def predict_at(
        self, counter_rates: Dict[str, float], frequency_mhz: int
    ) -> float:
        """Predicted power in W if the same per-cycle rates ran at ``f``."""
        v = self.cfg.curve.voltage_at(frequency_mhz)
        v2f = v * v * frequency_mhz / 1000.0
        coeffs = self.model.coefficients
        power_w = coeffs["beta:V2f"] * v2f + coeffs["gamma:V"] * v + coeffs["delta:Z"]
        for counter in self.model.counters:
            power_w += coeffs[f"alpha:{counter}"] * counter_rates[counter] * v2f
        return power_w

    def choose_frequency(self, counter_rates: Dict[str, float]) -> int:
        """Highest P-state predicted to stay under cap − headroom.

        Falls back to the lowest P-state when even that is predicted to
        exceed the cap (the machine cannot do better by DVFS alone).
        """
        budget = self.cap_w - self.headroom_w
        for f in reversed(self.frequencies_mhz):
            if self.predict_at(counter_rates, f) <= budget:
                return f
        return self.frequencies_mhz[0]


@dataclass(frozen=True)
class GovernorTimeline:
    """Closed-loop control trace."""

    times_s: np.ndarray
    frequency_mhz: np.ndarray
    true_power_w: np.ndarray
    predicted_power_w: np.ndarray
    cap_w: float
    uncapped_frequency_mhz: int

    def violation_fraction(self, tolerance_w: float = 0.0) -> float:
        """Fraction of intervals with true power above cap + tolerance."""
        return float(np.mean(self.true_power_w > self.cap_w + tolerance_w))

    def mean_frequency_mhz(self) -> float:
        return float(self.frequency_mhz.mean())

    def performance_retained(self) -> float:
        """Mean frequency relative to the uncapped maximum — a crude
        throughput proxy (exact for compute-bound phases)."""
        return self.mean_frequency_mhz() / self.uncapped_frequency_mhz


def govern_workload(
    platform: Platform,
    workload: Workload,
    threads: int,
    model: FittedPowerModel,
    cap_w: float,
    *,
    interval_s: float = 1.0,
    start_frequency_mhz: Optional[int] = None,
    frequencies_mhz: Optional[Sequence[int]] = None,
    headroom_w: float = 2.0,
) -> GovernorTimeline:
    """Run the capping loop against the simulated machine.

    Each control interval: read the PMU at the current frequency,
    let the governor pick the next P-state, then execute the next
    interval there — recording the machine's *true* power throughout.
    """
    cfg = platform.cfg
    ladder = tuple(
        sorted(
            int(f)
            for f in (
                frequencies_mhz
                or (p.frequency_mhz for p in cfg.curve.pstates)
            )
        )
    )
    governor = PowerCapGovernor(
        model, ladder, cfg, cap_w, headroom_w=headroom_w
    )
    rng = derive_rng(
        platform.seed, "governor", workload.name, threads, int(cap_w)
    )
    current_f = int(start_frequency_mhz or ladder[-1])

    times, freqs, true_p, pred_p = [], [], [], []
    t = 0.0
    for phase in workload.phases(threads):
        n_intervals = max(int(round(phase.duration_s / interval_s)), 1)
        for _ in range(n_intervals):
            op = cfg.curve.operating_point(current_f)
            state = evaluate(
                phase.characterization, op, phase.active_threads, cfg
            )
            breakdown = compute_power(
                state.hidden, op, cfg, platform.power_params
            )
            # PMU read with noise, normalized to per-cycle rates.
            rates = {}
            for counter in model.counters:
                noise = 1.0 + float(
                    rng.normal(0.0, platform.pmu.read_noise_sigma)
                )
                rates[counter] = max(state.rate(counter) * noise, 0.0)
            t += interval_s
            times.append(t)
            freqs.append(current_f)
            true_p.append(breakdown.measured_w)
            pred_p.append(governor.predict_at(rates, current_f))
            current_f = governor.choose_frequency(rates)

    return GovernorTimeline(
        times_s=np.asarray(times),
        frequency_mhz=np.asarray(freqs, dtype=np.int64),
        true_power_w=np.asarray(true_p),
        predicted_power_w=np.asarray(pred_p),
        cap_w=cap_w,
        uncapped_frequency_mhz=ladder[-1],
    )
