"""PMC event selection — Algorithm 1 of the paper.

Greedy forward selection: at each step, fit Equation 1 with every
remaining candidate added to the already-selected events and keep the
candidate yielding the highest :math:`R^2`.  Unlike Walker et al., the
selection does **not** start from a pre-seeded cycle counter (the paper
found no significant difference, Section III-B).

Stage two quantifies multicollinearity: the mean VIF over the selected
event *rate* columns is recorded per step (Table I / Table IV).  The
paper's CA_SNP finding — a seventh counter that raises :math:`R^2`
slightly while blowing the mean VIF past 10 — is surfaced by
:meth:`SelectionResult.first_unstable_step`.

The selection criterion is pluggable (``r2`` — the paper's, plus
``adj_r2`` / ``aic`` / ``bic`` from the future-work ablation); an
optional ``max_vif`` constraint implements the VIF-guarded greedy
variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import DatasetHandle, PowerDataset
from repro.core.features import design_matrix
from repro.core.model import ESTIMATORS, PowerModel
from repro.parallel import (
    BaseExecutor,
    ProcessExecutor,
    SharedArena,
    arena_enabled,
    resolve_executor,
    split_batches,
)
from repro.stats.errors import EstimationError
from repro.stats.fastfit import GramCache, GramCacheHandle, fastfit_enabled
from repro.stats.selection_criteria import CRITERIA
from repro.stats.vif import VIF_PROBLEM_THRESHOLD, mean_vif

__all__ = [
    "SelectionStep",
    "SelectionResult",
    "select_events",
    "select_events_lasso",
]


@dataclass(frozen=True)
class SelectionStep:
    """One row of Table I / Table IV."""

    counter: str
    rsquared: float
    rsquared_adj: float
    mean_vif: float
    """Mean VIF of the selected set *including* this counter; NaN for
    the first step (the paper prints "n/a")."""
    criterion_value: float
    warnings: Tuple[str, ...] = ()
    """Degraded-data notes for this step: candidates skipped because
    their fit failed, R² ties broken by pool order, infinite VIF."""

    @property
    def is_unstable(self) -> bool:
        return (
            not np.isnan(self.mean_vif)
            and self.mean_vif > VIF_PROBLEM_THRESHOLD
        )


@dataclass(frozen=True)
class SelectionResult:
    """Complete record of a greedy selection run."""

    steps: Tuple[SelectionStep, ...]
    criterion: str
    warnings: Tuple[str, ...] = ()
    """Selection-level degraded-data notes (missing candidates dropped
    from the pool, early termination) — per-step notes live on the
    steps themselves."""

    @property
    def selected(self) -> Tuple[str, ...]:
        return tuple(s.counter for s in self.steps)

    def first_unstable_step(self) -> Optional[int]:
        """1-based index of the first step whose mean VIF exceeds the
        multicollinearity threshold, or None if all steps are stable."""
        for i, s in enumerate(self.steps):
            if s.is_unstable:
                return i + 1
        return None

    def stable_prefix(self) -> Tuple[str, ...]:
        """Selected counters up to (excluding) the first unstable step."""
        cut = self.first_unstable_step()
        if cut is None:
            return self.selected
        return self.selected[: cut - 1]

    def table_rows(self) -> List[Tuple[str, float, float, float]]:
        """(counter, R², Adj.R², mean VIF) rows in selection order."""
        return [
            (s.counter, s.rsquared, s.rsquared_adj, s.mean_vif)
            for s in self.steps
        ]


def _evaluate_candidate(
    args: Tuple[
        PowerDataset,
        Tuple[str, ...],
        str,
        Optional[float],
        str,
        str,
        str,
    ],
) -> Tuple[object, ...]:
    """Score one candidate event for one greedy step.

    Module-level (picklable) worker for the per-step fan-out; returns a
    tagged tuple so the pool-order reduction in :func:`select_events`
    reproduces the serial loop's warnings and tie handling exactly.
    """
    dataset, selected, event, max_vif, cov_type, estimator, criterion = args
    trial = list(selected) + [event]
    if max_vif is not None and len(trial) > 1:
        trial_vif = mean_vif(dataset.counter_matrix(trial))
        if trial_vif > max_vif:
            return ("vif", event)
    try:
        fitted = PowerModel(
            trial, cov_type=cov_type, estimator=estimator
        ).fit(dataset)
    except EstimationError as exc:
        return ("error", event, str(exc))
    score = CRITERIA[criterion](fitted.ols)
    return ("ok", event, score, fitted.rsquared, fitted.rsquared_adj)


def _evaluate_candidate_batch(
    args: Tuple[
        DatasetHandle,
        Tuple[str, ...],
        Tuple[str, ...],
        Optional[float],
        str,
        str,
        str,
    ],
) -> List[Tuple[object, ...]]:
    """Score one batch of candidates against a shared dataset.

    The zero-copy variant of :func:`_evaluate_candidate`: the work item
    carries a :class:`~repro.acquisition.dataset.DatasetHandle` and a
    slice of the candidate pool instead of the pickled dataset, and one
    dispatch covers a whole worker's share.  Each candidate runs the
    exact per-candidate evaluation, so the flattened batch results are
    bitwise-identical to per-item dispatch.
    """
    handle, selected, events, max_vif, cov_type, estimator, criterion = args
    dataset = handle.resolve()
    return [
        _evaluate_candidate(
            (dataset, selected, event, max_vif, cov_type, estimator,
             criterion)
        )
        for event in events
    ]


def _score_candidates_shared(
    args: Tuple[GramCacheHandle, Tuple[int, ...], Tuple[int, ...], str],
) -> List[Optional[Tuple[float, float, float]]]:
    """Score one chunk of fast-path candidates from the shared cache.

    Workers reconstruct the :class:`~repro.stats.fastfit.GramCache`
    from shared buffers (memoized per process) and run the same
    column-separable scoring kernel the parent would; chunk results
    concatenate to the parent's single batched call bitwise.
    """
    handle, sel_pos, cand_pos, criterion = args
    cache = GramCache.from_handle(handle)
    return cache.score_candidates(list(sel_pos), list(cand_pos), criterion)


def _fast_step_evaluations(
    dataset: PowerDataset,
    cache: GramCache,
    pool_pos: dict,
    selected: Sequence[str],
    remaining: Sequence[str],
    max_vif: Optional[float],
    cov_type: str,
    criterion: str,
    executor: Optional[BaseExecutor] = None,
    cache_handle: Optional[GramCacheHandle] = None,
) -> List[Tuple[object, ...]]:
    """One greedy step through the Gram cache.

    Produces the same pool-ordered tagged tuples as the
    :func:`_evaluate_candidate` fan-out: the VIF guard runs through the
    cache's memoized correlations (bitwise-identical to the slow
    guard), the surviving candidates are scored in one batched
    bordered-Cholesky update, and any candidate the kernel declines
    (degraded or ill-conditioned trial design) is re-evaluated through
    the exact slow path so its score, skip warning or error message is
    reproduced verbatim.

    With a process ``executor`` and a published ``cache_handle`` the
    batched scoring is chunked across workers — one contiguous slice
    per worker slot against the shared buffers.  Column-separability
    of the kernel makes the concatenated chunks bitwise-identical to
    the single batched call, so the reduce downstream cannot tell the
    difference.
    """
    sel_pos = [pool_pos[e] for e in selected]
    evaluations: List[Optional[Tuple[object, ...]]] = [None] * len(remaining)
    admissible: List[int] = []
    for i, event in enumerate(remaining):
        if max_vif is not None and selected:
            trial_vif = cache.mean_vif(sel_pos + [pool_pos[event]])
            if trial_vif > max_vif:
                evaluations[i] = ("vif", event)
                continue
        admissible.append(i)
    admissible_pos = [pool_pos[remaining[i]] for i in admissible]
    # Chunks must carry >= 2 candidates each: BLAS routes a one-column
    # matmul through gemv, whose accumulation order differs from gemm's
    # by ~1 ulp — a size-1 chunk would break bitwise equality with the
    # parent's batched call (guarded by the fastfit chunking tests).
    if (
        cache_handle is not None
        and executor is not None
        and len(admissible) >= 4
    ):
        chunks = split_batches(
            admissible_pos, min(executor.max_workers, len(admissible) // 2)
        )
        nested = executor.map(
            _score_candidates_shared,
            [
                (cache_handle, tuple(sel_pos), tuple(chunk), criterion)
                for chunk in chunks
            ],
        )
        scores = [score for chunk_scores in nested for score in chunk_scores]
    else:
        scores = cache.score_candidates(sel_pos, admissible_pos, criterion)
    for i, entry in zip(admissible, scores):
        event = remaining[i]
        if entry is None:
            # Not fast-eligible: exact slow-path evaluation (max_vif
            # already enforced above, hence None here).
            evaluations[i] = _evaluate_candidate(
                (dataset, tuple(selected), event, None, cov_type, "ols",
                 criterion)
            )
        else:
            score, r2, adj = entry
            evaluations[i] = ("ok", event, score, r2, adj)
    return evaluations  # type: ignore[return-value]


def select_events(
    dataset: PowerDataset,
    n_events: int,
    *,
    candidates: Optional[Sequence[str]] = None,
    criterion: str = "r2",
    max_vif: Optional[float] = None,
    cov_type: str = "HC3",
    estimator: str = "ols",
    on_missing: str = "raise",
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> SelectionResult:
    """Run Algorithm 1 on a dataset.

    Parameters
    ----------
    dataset:
        Selection data — the paper uses all workloads at a fixed
        2400 MHz.
    n_events:
        ``#Events``: how many counters to select.
    candidates:
        Candidate pool (default: all 54 counters of the dataset).
    criterion:
        Scoring function for the greedy step (``r2`` is Algorithm 1).
    max_vif:
        If given, a candidate whose inclusion pushes the mean VIF of
        the selected *rate* columns above this bound is skipped — the
        VIF-constrained variant studied in the ablation benchmark.
    cov_type:
        Covariance estimator for the per-step fits.
    estimator:
        ``"ols"`` (Algorithm 1 as published) or ``"huber"`` for the
        outlier-robust IRLS variant.
    on_missing:
        What to do with candidates absent from the dataset (a degraded
        campaign may have dropped entire counters): ``"raise"`` keeps
        the strict historical ``KeyError``; ``"skip"`` drops them from
        the pool and records a selection-level warning.
    parallel, max_workers:
        Backend for each step's candidate fan-out (see
        :mod:`repro.parallel`).  Candidate fits are independent, and
        the reduction below walks results in pool order, so every
        backend selects bit-identically.  The process backend
        dispatches through a zero-copy shared-memory arena (dataset
        columns or Gram-cache buffers published once, work items
        carrying handles and contiguous candidate batches);
        ``REPRO_ARENA=0`` restores the pickled-payload dispatch.
    fast:
        Score candidates through the Gram-cache fast-fit kernel
        (:mod:`repro.stats.fastfit`) instead of one full OLS refit per
        candidate.  Default (``None``) resolves ``REPRO_FASTFIT`` and
        falls back to **on**; only the ``"ols"`` estimator has a fast
        kernel.  The selected sequence and all warnings are identical
        to the slow path, scores agree within 1e-9 relative tolerance,
        and any candidate the kernel cannot certify well-conditioned is
        transparently re-evaluated on the exact slow path.

    Determinism
    -----------
    Candidates are scanned in pool order and a challenger must *strictly*
    beat the incumbent, so exact criterion ties resolve to the earliest
    pool entry and reruns on identical data reproduce bit-identical
    selections — parallel evaluation preserves this because results are
    reduced in pool order, never completion order.  Observed ties are
    recorded in the step's ``warnings``.
    """
    if criterion not in CRITERIA:
        raise ValueError(
            f"unknown criterion {criterion!r}; available: {sorted(CRITERIA)}"
        )
    if estimator not in ESTIMATORS:
        raise ValueError(
            f"estimator must be one of {ESTIMATORS}, got {estimator!r}"
        )
    if on_missing not in ("raise", "skip"):
        raise ValueError(
            f"on_missing must be 'raise' or 'skip', got {on_missing!r}"
        )
    pool = list(candidates) if candidates is not None else list(dataset.counter_names)
    run_warnings: List[str] = []
    missing = [c for c in pool if c not in dataset.counter_names]
    if missing:
        if on_missing == "raise":
            raise KeyError(f"candidate {missing[0]!r} not in dataset")
        pool = [c for c in pool if c not in set(missing)]
        run_warnings.append(
            f"dropped {len(missing)} missing candidate(s): "
            + ", ".join(sorted(missing))
        )
    if n_events < 1:
        raise ValueError("must select at least one event")
    if not pool:
        raise ValueError("no candidates left after dropping missing counters")
    if n_events > len(pool):
        if on_missing == "skip":
            run_warnings.append(
                f"requested {n_events} events but only {len(pool)} "
                "candidates remain; selecting all of them"
            )
            n_events = len(pool)
        else:
            raise ValueError(
                f"cannot select {n_events} events from {len(pool)} candidates"
            )

    # Candidate fits are ~100 µs each: demand a healthy batch per
    # worker before letting a pool backend near them (the small-task
    # guard keeps a global REPRO_PARALLEL=process from regressing this
    # stage — see resolve_executor).
    executor = resolve_executor(
        parallel, max_workers, n_items=len(pool), min_items_per_worker=16
    )
    cache: Optional[GramCache] = None
    pool_pos: dict = {}
    if fastfit_enabled(fast) and estimator == "ols":
        cache = GramCache(
            dataset.power_w,
            design_matrix(dataset, pool),
            dataset.counter_matrix(pool),
        )
        pool_pos = {event: i for i, event in enumerate(pool)}
    # Zero-copy dispatch for the process backend: publish the shared
    # state (Gram-cache buffers on the fast path, the dataset columns
    # on the slow one) once, then fan out ~100-byte handles per step.
    # REPRO_ARENA=0 keeps the historical pickled-payload dispatch.
    arena: Optional[SharedArena] = None
    dataset_handle: Optional[DatasetHandle] = None
    cache_handle: Optional[GramCacheHandle] = None
    if isinstance(executor, ProcessExecutor) and arena_enabled():
        arena = SharedArena()
        if cache is not None:
            cache_handle = cache.share(arena)
        else:
            dataset_handle = dataset.share(arena)
    selected: List[str] = []
    steps: List[SelectionStep] = []
    remaining = list(pool)

    try:
        while len(selected) < n_events:
            best: Optional[Tuple[str, float, float, float]] = None
            step_warnings: List[str] = []
            scores: List[Tuple[str, float]] = []
            if cache is not None:
                evaluations = _fast_step_evaluations(
                    dataset, cache, pool_pos, selected, remaining,
                    max_vif, cov_type, criterion,
                    executor=executor if cache_handle is not None else None,
                    cache_handle=cache_handle,
                )
            elif dataset_handle is not None:
                # Batched zero-copy dispatch: one contiguous candidate
                # slice per worker; flattening in batch order restores
                # pool order for the reduce below.
                batches = split_batches(remaining, executor.max_workers)
                nested = executor.map(
                    _evaluate_candidate_batch,
                    [
                        (
                            dataset_handle,
                            tuple(selected),
                            tuple(batch),
                            max_vif,
                            cov_type,
                            estimator,
                            criterion,
                        )
                        for batch in batches
                    ],
                )
                evaluations = [ev for sub in nested for ev in sub]
            else:
                evaluations = executor.map(
                    _evaluate_candidate,
                    [
                        (
                            dataset,
                            tuple(selected),
                            event,
                            max_vif,
                            cov_type,
                            estimator,
                            criterion,
                        )
                        for event in remaining
                    ],
                )
            # Reduce in pool order — identical to the historical serial
            # loop, whichever backend produced the evaluations.
            for evaluation in evaluations:
                tag = evaluation[0]
                if tag == "vif":
                    continue
                if tag == "error":
                    _, event, message = evaluation
                    step_warnings.append(
                        f"candidate {event!r} skipped: {message}"
                    )
                    continue
                _, event, score, r2, adj = evaluation
                scores.append((event, score))
                if best is None or score > best[1]:
                    best = (event, score, r2, adj)
            if best is None:
                # Every remaining candidate violates the VIF constraint
                # or failed to fit on the degraded data.
                if step_warnings:
                    run_warnings.extend(step_warnings)
                run_warnings.append(
                    f"selection stopped early at {len(selected)} of "
                    f"{n_events} events: no admissible candidate remains"
                )
                break
            event, score, r2, adj = best
            ties = [
                e
                for e, s in scores
                if e != event and s == score  # replint: ignore[RL004] -- exact tie detection is intentional
            ]
            if ties:
                step_warnings.append(
                    f"criterion tie with {', '.join(sorted(ties))}; kept "
                    f"{event!r} (earliest in pool order)"
                )
            selected.append(event)
            remaining.remove(event)
            if cache is not None:
                vif = cache.mean_vif([pool_pos[e] for e in selected])
            else:
                vif = mean_vif(dataset.counter_matrix(selected))
            if np.isinf(vif):
                step_warnings.append(
                    "mean VIF is infinite: selected set contains perfectly "
                    "collinear columns"
                )
            steps.append(
                SelectionStep(
                    counter=event,
                    rsquared=r2,
                    rsquared_adj=adj,
                    mean_vif=vif,
                    criterion_value=score,
                    warnings=tuple(step_warnings),
                )
            )
    finally:
        # Leak-proof lifecycle: segments are unlinked on normal exit,
        # worker crash and injected faults alike.
        if arena is not None:
            arena.close()
    return SelectionResult(
        steps=tuple(steps),
        criterion=criterion,
        warnings=tuple(run_warnings),
    )


def select_events_lasso(
    dataset: PowerDataset,
    n_events: int,
    *,
    candidates: Optional[Sequence[str]] = None,
    n_alphas: int = 40,
) -> SelectionResult:
    """Lasso-path event selection (future-work alternative).

    Runs the lasso over the full candidate feature block
    (:math:`E_n V^2 f` for every candidate) and selects counters in the
    order they enter the regularization path — an embedded-selection
    alternative to the greedy wrapper of Algorithm 1 that handles
    correlated candidates by construction.

    Each selected prefix is re-fit with plain Equation 1 OLS so the
    reported R²/Adj.R²/VIF columns are directly comparable to
    :func:`select_events`.
    """
    from repro.core.features import design_matrix
    from repro.stats.regularized import lasso_path

    pool = list(candidates) if candidates is not None else list(dataset.counter_names)
    for c in pool:
        if c not in dataset.counter_names:
            raise KeyError(f"candidate {c!r} not in dataset")
    if not 1 <= n_events <= len(pool):
        raise ValueError(
            f"cannot select {n_events} events from {len(pool)} candidates"
        )

    # Counter-feature block only: the structural terms stay unpenalized
    # conceptually, so we regress power minus nothing on the alpha
    # features and let the lasso intercept absorb the rest.
    full = design_matrix(dataset, pool)[:, : len(pool)]
    path = lasso_path(dataset.power_w, full, n_alphas=n_alphas)

    order: List[str] = []
    for fit in path:
        for idx in fit.selected_features():
            name = pool[idx]
            if name not in order:
                order.append(name)
        if len(order) >= n_events:
            break
    if len(order) < n_events:
        # Densest path point didn't reach n_events: fall back to
        # magnitude order at the smallest penalty.
        last = path[-1]
        ranked = np.argsort(-np.abs(last.coef))
        for idx in ranked:
            name = pool[int(idx)]
            if name not in order:
                order.append(name)
            if len(order) >= n_events:
                break
    order = order[:n_events]

    steps: List[SelectionStep] = []
    for i in range(1, len(order) + 1):
        prefix = order[:i]
        fitted = PowerModel(prefix).fit(dataset)
        steps.append(
            SelectionStep(
                counter=order[i - 1],
                rsquared=fitted.rsquared,
                rsquared_adj=fitted.rsquared_adj,
                mean_vif=mean_vif(dataset.counter_matrix(prefix)),
                criterion_value=fitted.rsquared,
            )
        )
    return SelectionResult(steps=tuple(steps), criterion="lasso-path")
