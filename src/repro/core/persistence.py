"""Model persistence: save fitted Equation 1 models for deployment.

A power model is useful precisely when it outlives the calibration
campaign: it gets fitted once against reference instrumentation and
then deployed on machines that have none.  This module serializes a
:class:`~repro.core.model.FittedPowerModel` to a self-describing JSON
document (coefficients, counter set, fit provenance) and restores it to
a fully functional model — prediction, attribution and online
estimation all work on the restored object.
"""

from __future__ import annotations

import json
import warnings as _warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.model import FittedPowerModel
from repro.core.features import feature_names
from repro.io.atomic import atomic_write_text
from repro.stats.ols import OLSResult

__all__ = ["model_to_dict", "model_from_dict", "save_model", "load_model"]

#: Format tag so future revisions can migrate old files.
FORMAT = "repro-power-model/1"


def model_to_dict(model: FittedPowerModel) -> Dict:
    """Serializable representation of a fitted model."""
    return {
        "format": FORMAT,
        "counters": list(model.counters),
        "coefficients": {
            name: float(value) for name, value in model.coefficients.items()
        },
        "cov_type": model.cov_type,
        "fit": {
            "rsquared": model.rsquared,
            "rsquared_adj": model.rsquared_adj,
            "nobs": model.ols.nobs,
            "bse": [float(v) for v in model.ols.bse],
        },
    }


def model_from_dict(payload: Dict) -> FittedPowerModel:
    """Restore a fitted model from :func:`model_to_dict` output.

    The restored object predicts and attributes exactly; residual
    vectors of the original fit are not persisted (they belong to the
    calibration data, not the model).
    """
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unsupported model format {payload.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    counters = tuple(payload["counters"])
    names = feature_names(counters)
    coeffs = payload["coefficients"]
    missing = [n for n in names if n not in coeffs]
    if missing:
        raise ValueError(f"model file missing coefficients: {missing}")
    params = np.array([coeffs[n] for n in names], dtype=np.float64)
    fit = payload.get("fit", {})
    bse = np.asarray(fit.get("bse", np.zeros_like(params)), dtype=np.float64)
    if bse.shape != params.shape:
        raise ValueError("standard-error vector does not match coefficients")
    nobs = int(fit.get("nobs", len(params)))
    ols = OLSResult(
        params=params,
        bse=bse,
        cov_params=np.diag(bse**2),
        rsquared=float(fit.get("rsquared", float("nan"))),
        rsquared_adj=float(fit.get("rsquared_adj", float("nan"))),
        nobs=nobs,
        df_model=len(params),
        df_resid=max(nobs - len(params), 1),
        cov_type=payload.get("cov_type", "HC3"),
        fitted_values=np.array([]),
        residuals=np.array([]),
        exog_names=tuple(names),
        has_intercept=False,
    )
    return FittedPowerModel(
        counters=counters, ols=ols, cov_type=payload.get("cov_type", "HC3")
    )


def _audit_gate(
    model: FittedPowerModel, audit, gate: Optional[str]
) -> None:
    """Refuse (strict) or warn (warn) on persisting a fail-verdict model.

    A model whose audit verdict is ``fail`` — a numerically perfect or
    invalid fit — must not reach deployment silently: once serialized,
    the residuals and design that would reveal the problem are gone.
    """
    from repro.audit import (
        PERSISTENCE_MODES,
        AuditConfig,
        AuditGateError,
        audit_model,
    )

    config = AuditConfig.load()
    mode = gate if gate is not None else config.persistence_mode
    if mode not in PERSISTENCE_MODES:
        raise ValueError(
            f"gate must be one of {PERSISTENCE_MODES}, got {mode!r}"
        )
    if mode == "off":
        return
    report = audit if audit is not None else audit_model(model, config=config)
    if not report.worst_at_least("fail"):
        return
    detail = "; ".join(f.format() for f in report.findings)
    message = (
        f"model audit verdict is {report.verdict!r}: {detail}"
    )
    if mode == "strict":
        raise AuditGateError(message)
    _warnings.warn(
        f"persisting a fail-verdict model anyway (gate={mode!r}): "
        f"{message}",
        stacklevel=3,
    )


def save_model(
    model: FittedPowerModel,
    path: Union[str, Path],
    *,
    audit=None,
    gate: Optional[str] = None,
) -> None:
    """Write the model to a JSON file (atomically: a crash mid-write
    must never leave a half-serialized model for deployment to load).

    Persistence is audit-gated: ``gate`` (default: the
    ``persistence-mode`` of ``[tool.repro.audit]``, ``warn`` when
    unconfigured) decides what a ``fail`` audit verdict does — ``off``
    ignores it, ``warn`` emits a warning, ``strict`` raises
    :class:`~repro.audit.AuditGateError` and writes nothing.  Pass a
    precomputed ``audit`` report to skip re-auditing.
    """
    _audit_gate(model, audit, gate)
    atomic_write_text(Path(path), json.dumps(model_to_dict(model), indent=2) + "\n")


def load_model(path: Union[str, Path]) -> FittedPowerModel:
    """Read a model written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
