"""Significance analysis of the selected counters (Section V).

The Pearson correlation coefficient between each counter's rate and
power quantifies how much *individual* linear information a counter
carries.  The paper's observation — reproduced here — is that the
statistically selected counters do **not** individually correlate
strongly with power (except the first): each contributes *unique*
information, which is exactly what keeps the mean VIF low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.stats.correlation import pearson, pearson_with_target

__all__ = ["CounterSignificance", "counter_power_pcc", "significance_report"]


@dataclass(frozen=True)
class CounterSignificance:
    """PCC of every counter with power, plus helpers for the figures."""

    pcc: Dict[str, float]

    def table(self, counters: Sequence[str]) -> List[Tuple[str, float]]:
        """Table III: PCC rows for a chosen counter set."""
        return [(c, self.pcc[c]) for c in counters]

    def sorted_by_strength(self) -> List[Tuple[str, float]]:
        """All counters ordered by |PCC| descending (Fig. 6 reading)."""
        return sorted(self.pcc.items(), key=lambda kv: -abs(kv[1]))

    def strongest(self) -> Tuple[str, float]:
        return self.sorted_by_strength()[0]


def counter_power_pcc(dataset: PowerDataset) -> CounterSignificance:
    """PCC of each of the 54 counters with measured power (Fig. 6)."""
    pcc = pearson_with_target(
        dataset.counters, dataset.power_w, names=dataset.counter_names
    )
    return CounterSignificance(pcc=pcc)


def significance_report(
    dataset: PowerDataset, selected: Sequence[str]
) -> str:
    """Plain-text Section V analysis for a selected counter set."""
    sig = counter_power_pcc(dataset)
    lines = ["PCC of selected performance counters with power (Table III):"]
    for name, value in sig.table(selected):
        lines.append(f"  {name:<10s} {value:+.2f}")
    strongest, value = sig.strongest()
    lines.append(
        f"Strongest individual correlation: {strongest} ({value:+.2f})"
    )
    weak = [c for c in selected if abs(sig.pcc[c]) < 0.5]
    if weak:
        lines.append(
            "Selected counters with weak individual correlation "
            f"(unique-information carriers): {', '.join(weak)}"
        )
    return "\n".join(lines)
