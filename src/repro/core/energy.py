"""Energy accounting on top of the power model.

The paper's motivation is "energy-aware performance optimization":
power models exist so that schedulers and tuners can reason about
*energy*.  This module provides that layer:

* :func:`phase_energy` / :func:`run_energy` — integrate (estimated or
  measured) power over phase durations, Bellosa-style energy
  accounting per program region.
* :class:`EnergyAccount` — per-experiment energy, energy-per-instruction
  and energy-delay product.
* :func:`dvfs_energy_profile` / :func:`optimal_frequency` — the classic
  race-to-idle vs slow-down trade-off: for a fixed amount of work, which
  DVFS state minimizes energy (or EDP)?  Memory-bound workloads favour
  low frequency; compute-bound workloads favour racing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import FittedPowerModel
from repro.hardware.platform import Platform, RunExecution
from repro.workloads.base import Workload

__all__ = [
    "EnergyAccount",
    "phase_energy",
    "run_energy",
    "dvfs_energy_profile",
    "optimal_frequency",
]


@dataclass(frozen=True)
class EnergyAccount:
    """Energy bookkeeping for one executed run."""

    workload: str
    frequency_mhz: int
    threads: int
    duration_s: float
    energy_j: float
    instructions: float
    average_power_w: float

    @property
    def energy_per_instruction_nj(self) -> float:
        """Energy per retired instruction in nanojoules."""
        if self.instructions <= 0:
            return float("inf")
        return self.energy_j / self.instructions * 1e9

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J·s) — the tuning objective that
        penalizes slowing down for energy."""
        return self.energy_j * self.duration_s


def phase_energy(run: RunExecution) -> List[Tuple[str, float]]:
    """(phase name, energy in J) per phase, from ground-truth power.

    This is the accounting a measurement system performs; model-based
    accounting uses the same integral with estimated power.
    """
    return [
        (p.phase.name, p.power_breakdown.measured_w * p.duration_s)
        for p in run.phases
    ]


def run_energy(run: RunExecution) -> EnergyAccount:
    """Total energy account of one run (ground truth)."""
    energy_j = sum(e for _, e in phase_energy(run))
    duration = run.total_duration_s
    instructions = sum(
        p.state.rate("TOT_INS") * run.op.frequency_hz * p.duration_s
        for p in run.phases
    )
    return EnergyAccount(
        workload=run.workload_name,
        frequency_mhz=run.op.frequency_mhz,
        threads=run.threads,
        duration_s=duration,
        energy_j=energy_j,
        instructions=instructions,
        average_power_w=energy_j / duration if duration > 0 else 0.0,
    )


def _work_normalized_account(
    platform: Platform, workload: Workload, frequency_mhz: int, threads: int
) -> EnergyAccount:
    """Energy account normalized to a *fixed amount of work*.

    roco2-style kernels run for fixed wall time; to compare DVFS states
    fairly we rescale to the time the same instruction count would take
    at each frequency (the simulator's IPC already reflects the memory
    wall, so memory-bound workloads shrink their runtime less at higher
    f — exactly the effect that makes racing unprofitable for them).
    """
    run = platform.execute(workload, frequency_mhz, threads)
    account = run_energy(run)
    if account.instructions <= 0:
        return account
    # Reference work: instructions executed in 1 second at this state
    # scaled to a fixed budget of 1e10 instructions.
    work = 1e10
    inst_per_s = account.instructions / account.duration_s
    t_for_work = work / inst_per_s
    e_for_work = account.average_power_w * t_for_work
    return EnergyAccount(
        workload=account.workload,
        frequency_mhz=frequency_mhz,
        threads=threads,
        duration_s=t_for_work,
        energy_j=e_for_work,
        instructions=work,
        average_power_w=account.average_power_w,
    )


def dvfs_energy_profile(
    platform: Platform,
    workload: Workload,
    threads: int,
    frequencies_mhz: Sequence[int],
) -> List[EnergyAccount]:
    """Work-normalized energy accounts across DVFS states."""
    return [
        _work_normalized_account(platform, workload, int(f), threads)
        for f in frequencies_mhz
    ]


def optimal_frequency(
    profile: Sequence[EnergyAccount], *, objective: str = "energy"
) -> EnergyAccount:
    """The DVFS state minimizing ``energy`` or ``edp`` for fixed work."""
    if not profile:
        raise ValueError("empty DVFS profile")
    if objective == "energy":
        return min(profile, key=lambda a: a.energy_j)
    if objective == "edp":
        return min(profile, key=lambda a: a.edp_js)
    raise ValueError(f"objective must be 'energy' or 'edp', got {objective!r}")
