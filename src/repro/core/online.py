"""Online (run-time) power estimation from streaming counter samples.

The paper's opening motivation is "accurate real-time power information
for efficient power management".  A deployed PMC power model does not
see phase profiles — it sees a stream of counter deltas at some
sampling interval.  :class:`OnlineEstimator` consumes such a stream and
emits per-interval power estimates; :func:`estimate_run` drives it from
a simulated execution and returns the estimated and measured timelines
side by side, which is how the temporal-granularity advantage of models
over sensors is demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import FittedPowerModel
from repro.hardware.platform import Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.seeding import derive_rng

__all__ = ["OnlineEstimate", "OnlineEstimator", "estimate_run", "OnlineTimeline"]


@dataclass(frozen=True)
class OnlineEstimate:
    """One interval's estimate."""

    time_s: float
    power_w: float
    smoothed_w: float


class OnlineEstimator:
    """Streaming Equation 1 evaluator.

    Parameters
    ----------
    model:
        A fitted power model whose counters will be fed as deltas.
    smoothing:
        EWMA factor in (0, 1]; 1 disables smoothing.  Power-management
        loops usually want a little smoothing against PMU read noise.
    """

    def __init__(self, model: FittedPowerModel, *, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.model = model
        self.smoothing = smoothing
        self._smoothed: Optional[float] = None
        self._history: List[OnlineEstimate] = []

    @property
    def history(self) -> Tuple[OnlineEstimate, ...]:
        return tuple(self._history)

    def reset(self) -> None:
        self._smoothed = None
        self._history.clear()

    def update(
        self,
        counter_deltas: Dict[str, float],
        *,
        interval_s: float,
        voltage_v: float,
        frequency_mhz: float,
        time_s: Optional[float] = None,
    ) -> OnlineEstimate:
        """Feed one sampling interval's counter deltas.

        ``counter_deltas`` are raw event counts accumulated over the
        interval for (at least) the model's counters.  Returns the
        instantaneous and smoothed power estimates.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if voltage_v <= 0 or frequency_mhz <= 0:
            raise ValueError("voltage and frequency must be positive")
        missing = [c for c in self.model.counters if c not in counter_deltas]
        if missing:
            raise KeyError(
                f"counter deltas missing model events: {missing}"
            )
        cycles = frequency_mhz * 1e6 * interval_s
        v2f = voltage_v * voltage_v * (frequency_mhz / 1000.0)
        coeffs = self.model.coefficients
        power_w = coeffs["beta:V2f"] * v2f
        power_w += coeffs["gamma:V"] * voltage_v
        power_w += coeffs["delta:Z"]
        for counter in self.model.counters:
            rate = counter_deltas[counter] / cycles
            power_w += coeffs[f"alpha:{counter}"] * rate * v2f
        if self._smoothed is None:
            self._smoothed = power_w
        else:
            self._smoothed = (
                self.smoothing * power_w + (1.0 - self.smoothing) * self._smoothed
            )
        t = time_s if time_s is not None else (
            self._history[-1].time_s + interval_s if self._history else interval_s
        )
        estimate = OnlineEstimate(
            time_s=t, power_w=power_w, smoothed_w=self._smoothed
        )
        self._history.append(estimate)
        return estimate


@dataclass(frozen=True)
class OnlineTimeline:
    """Estimated vs measured power over one simulated execution."""

    times_s: np.ndarray
    estimated_w: np.ndarray
    smoothed_w: np.ndarray
    measured_w: np.ndarray

    def mape(self) -> float:
        from repro.stats.metrics import mape as _mape

        return _mape(self.measured_w, self.estimated_w)

    def tracks_phase_changes(self, threshold_w: float = 5.0) -> bool:
        """Does the estimate move with the measurement between
        consecutive intervals whenever the measurement moves a lot?"""
        dm = np.diff(self.measured_w)
        de = np.diff(self.estimated_w)
        big = np.abs(dm) > threshold_w
        if not np.any(big):
            return True
        return bool(np.all(np.sign(dm[big]) == np.sign(de[big])))


def estimate_run(
    platform: Platform,
    run: RunExecution,
    model: FittedPowerModel,
    *,
    interval_s: float = 0.5,
    smoothing: float = 1.0,
) -> OnlineTimeline:
    """Stream a simulated run through the online estimator.

    Counter deltas are sampled from the run's ground truth with PMU
    read noise; the measured series comes from the power sensors at the
    same cadence — the comparison a deployment validation would make.
    """
    estimator = OnlineEstimator(model, smoothing=smoothing)
    event_set = EventSet(events=tuple(model.counters))
    rng = derive_rng(
        platform.seed, "online", run.workload_name,
        run.op.frequency_mhz, run.threads, run.run_index,
    )
    times, measured = [], []
    f_hz = run.op.frequency_hz
    for phase in run.phases:
        n = max(int(np.floor(phase.duration_s / interval_s)), 1)
        for k in range(1, n + 1):
            t = phase.start_s + k * interval_s
            if t > phase.end_s + 1e-9:
                break
            deltas = {}
            for counter in model.counters:
                true = phase.state.rate(counter) * f_hz * interval_s
                noise = 1.0 + rng.normal(0.0, platform.pmu.read_noise_sigma)
                deltas[counter] = max(true * noise, 0.0)
            voltage_v_mean = platform.voltage.read_average(
                run.op, phase.phase.active_threads, 1, rng
            )
            estimator.update(
                deltas,
                interval_s=interval_s,
                voltage_v=voltage_v_mean,
                frequency_mhz=run.op.frequency_mhz,
                time_s=t,
            )
            measured.append(
                platform.sensors.measure_node_average(
                    phase.power_breakdown.per_socket_w, interval_s, rng
                )
            )
            times.append(t)
    hist = estimator.history
    return OnlineTimeline(
        times_s=np.asarray(times),
        estimated_w=np.asarray([h.power_w for h in hist]),
        smoothed_w=np.asarray([h.smoothed_w for h in hist]),
        measured_w=np.asarray(measured),
    )
