"""Online (run-time) power estimation from streaming counter samples.

The paper's opening motivation is "accurate real-time power information
for efficient power management".  A deployed PMC power model does not
see phase profiles — it sees a stream of counter deltas at some
sampling interval.  :class:`OnlineEstimator` consumes such a stream and
emits per-interval power estimates; :func:`estimate_run` drives it from
a simulated execution and returns the estimated and measured timelines
side by side, which is how the temporal-granularity advantage of models
over sensors is demonstrated.

Drift defense (DESIGN.md §10)
-----------------------------
A deployed estimator also faces *inference-time* faults the training
campaign never saw: multiplexed-away counters, NaN deltas from a dying
perf fd, timestamps stepping backwards under NTP.  The hardened entry
point is :meth:`OnlineEstimator.step`:

* invalid context (non-positive/non-finite interval, voltage, frequency)
  and non-monotonic timestamps **skip** the interval with a counted
  warning instead of raising mid-control-loop;
* intervals with missing / NaN / negative deltas for any model counter
  fall back from full Equation 1 to the PMC-free baseline
  :math:`\\beta V^2 f + \\gamma V + \\delta Z`;
* a **circuit breaker** opens after ``breaker_threshold`` consecutive
  degraded intervals and holds the estimator on the baseline until
  ``recovery_threshold`` consecutive clean intervals close it again —
  a flapping counter cannot whipsaw the estimate;
* a :class:`PowerEnvelope` (typically derived from the training data)
  bounds plausibility: model estimates outside it are replaced by the
  clipped baseline, and a window where more than ``drift_tolerance`` of
  the intervals are implausible latches **drift detected**.

Everything observed is tallied into a structured :class:`DriftReport`
(:meth:`OnlineEstimator.drift_report`).  The strict :meth:`update`
keeps its historical raise-on-anything contract for callers that want
hard failures.  ``smoothed_w`` stays finite through all of this: every
fallback produces a finite power before it reaches the EWMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import FittedPowerModel
from repro.core.report import render_counts
from repro.hardware.platform import Platform, RunExecution
from repro.hardware.pmu import EventSet
from repro.seeding import derive_rng

__all__ = [
    "ONLINE_STATE_FORMAT",
    "OnlineEstimate",
    "OnlineEstimator",
    "OnlineTimeline",
    "PowerEnvelope",
    "DriftReport",
    "estimate_run",
    "estimate_run_degraded",
]

#: Version stamp of the :meth:`OnlineEstimator.state_dict` schema.
#: Bump when the schema changes; stale snapshots are rejected, never
#: misread.
ONLINE_STATE_FORMAT = 1


@dataclass(frozen=True)
class OnlineEstimate:
    """One interval's estimate."""

    time_s: float
    power_w: float
    smoothed_w: float
    source: str = "model"
    """``"model"`` (full Equation 1) or ``"baseline"`` (PMC-free
    fallback βV²f + γV + δZ)."""
    flags: Tuple[str, ...] = ()
    """Degradation notes for this interval (missing counters, breaker
    state, plausibility clips); empty for a clean interval."""


@dataclass(frozen=True)
class PowerEnvelope:
    """Plausible node-power range used for online sanity checks.

    Derived from the training campaign: if the model never saw powers
    outside ``[lo_w, hi_w]``, an online estimate far outside that range
    says more about drift or counter corruption than about the machine.
    """

    lo_w: float
    hi_w: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.lo_w) and np.isfinite(self.hi_w)):
            raise ValueError("envelope bounds must be finite")
        if self.lo_w >= self.hi_w:
            raise ValueError(
                f"envelope lower bound {self.lo_w} must be below upper "
                f"bound {self.hi_w}"
            )

    @classmethod
    def from_dataset(cls, dataset, margin: float = 0.25) -> "PowerEnvelope":
        """Envelope spanning a dataset's measured power ± ``margin``
        (relative to the observed span, so a tight training range still
        leaves headroom)."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        power_w = np.asarray(dataset.power_w, dtype=np.float64)
        finite = power_w[np.isfinite(power_w)]
        if finite.size == 0:
            raise ValueError("dataset has no finite power samples")
        lo = float(finite.min())
        hi = float(finite.max())
        pad = margin * max(hi - lo, abs(hi), 1.0)
        return cls(lo_w=max(lo - pad, 0.0), hi_w=hi + pad)

    def contains(self, power_w: float) -> bool:
        return bool(
            np.isfinite(power_w) and self.lo_w <= power_w <= self.hi_w
        )

    def clip(self, power_w: float) -> float:
        """Clamp into the envelope; non-finite input lands mid-range."""
        if not np.isfinite(power_w):
            return 0.5 * (self.lo_w + self.hi_w)
        return float(min(max(power_w, self.lo_w), self.hi_w))


@dataclass(frozen=True)
class DriftReport:
    """Structured tally of one online estimation session."""

    n_intervals: int
    """Intervals that produced an estimate (model or baseline)."""
    n_model: int
    n_baseline: int
    n_skipped: int
    """Inputs rejected outright (bad context / non-monotonic time)."""
    n_implausible: int
    """Model estimates that fell outside the power envelope."""
    n_clipped: int
    """Estimates clamped into the envelope."""
    breaker_trips: int
    breaker_open_intervals: int
    breaker_open: bool
    """Whether the circuit breaker is open *now* (session end)."""
    drift_detected: bool
    drift_fraction: float
    """Implausible fraction over the most recent drift window."""
    warnings: Tuple[str, ...] = field(default=())

    @property
    def degraded_fraction(self) -> float:
        """Share of produced estimates that needed the baseline."""
        if self.n_intervals == 0:
            return 0.0
        return self.n_baseline / self.n_intervals

    @property
    def clean(self) -> bool:
        return (
            self.n_baseline == 0
            and self.n_skipped == 0
            and self.n_implausible == 0
            and not self.drift_detected
            and not self.warnings
        )

    def summary(self) -> str:
        counts = render_counts(
            {
                "intervals": self.n_intervals,
                "model": self.n_model,
                "baseline": self.n_baseline,
                "skipped": self.n_skipped,
                "implausible": self.n_implausible,
                "clipped": self.n_clipped,
                "breaker_trips": self.breaker_trips,
                "breaker_open_intervals": self.breaker_open_intervals,
            },
            title="online estimation",
        )
        lines = [counts]
        if self.breaker_open:
            lines.append("circuit breaker OPEN at session end")
        if self.drift_detected:
            lines.append(
                f"DRIFT detected (implausible fraction "
                f"{self.drift_fraction:.0%} over recent window)"
            )
        lines.extend(f"warning: {w}" for w in self.warnings)
        return "\n".join(lines)


class OnlineEstimator:
    """Streaming Equation 1 evaluator.

    Parameters
    ----------
    model:
        A fitted power model whose counters will be fed as deltas.
    smoothing:
        EWMA factor in (0, 1]; 1 disables smoothing.  Power-management
        loops usually want a little smoothing against PMU read noise.
    envelope:
        Optional plausibility bounds for :meth:`step`; estimates the
        model pushes outside the envelope fall back to the clipped
        baseline and count toward drift detection.
    breaker_threshold:
        Consecutive degraded intervals before the circuit breaker opens.
    recovery_threshold:
        Consecutive clean intervals required to close it again.
    drift_window / drift_tolerance:
        Drift is declared when more than ``drift_tolerance`` of the last
        ``drift_window`` produced intervals were implausible.
    """

    def __init__(
        self,
        model: FittedPowerModel,
        *,
        smoothing: float = 0.5,
        envelope: Optional[PowerEnvelope] = None,
        breaker_threshold: int = 3,
        recovery_threshold: int = 2,
        drift_window: int = 20,
        drift_tolerance: float = 0.5,
    ):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if recovery_threshold < 1:
            raise ValueError("recovery_threshold must be at least 1")
        if drift_window < 1:
            raise ValueError("drift_window must be at least 1")
        if not 0.0 < drift_tolerance <= 1.0:
            raise ValueError(
                f"drift_tolerance must be in (0, 1], got {drift_tolerance}"
            )
        self.model = model
        self.smoothing = smoothing
        self.envelope = envelope
        self.breaker_threshold = breaker_threshold
        self.recovery_threshold = recovery_threshold
        self.drift_window = drift_window
        self.drift_tolerance = drift_tolerance
        self._smoothed: Optional[float] = None
        self._history: List[OnlineEstimate] = []
        self._warnings: List[str] = []
        self._last_time: Optional[float] = None
        self._n_intervals = 0
        self._seen = 0
        self._n_model = 0
        self._n_baseline = 0
        self._n_skipped = 0
        self._n_implausible = 0
        self._n_clipped = 0
        self._breaker_open = False
        self._breaker_trips = 0
        self._breaker_open_intervals = 0
        self._consecutive_bad = 0
        self._consecutive_good = 0
        self._implausible_window: List[bool] = []
        self._drift_detected = False

    @property
    def history(self) -> Tuple[OnlineEstimate, ...]:
        return tuple(self._history)

    @property
    def warnings(self) -> Tuple[str, ...]:
        return tuple(self._warnings)

    @property
    def breaker_open(self) -> bool:
        return self._breaker_open

    def reset(self) -> None:
        self._smoothed = None
        self._history.clear()
        self._warnings.clear()
        self._last_time = None
        self._n_intervals = 0
        self._seen = 0
        self._n_model = 0
        self._n_baseline = 0
        self._n_skipped = 0
        self._n_implausible = 0
        self._n_clipped = 0
        self._breaker_open = False
        self._breaker_trips = 0
        self._breaker_open_intervals = 0
        self._consecutive_bad = 0
        self._consecutive_good = 0
        self._implausible_window.clear()
        self._drift_detected = False

    # ------------------------------------------------------------------
    # Snapshot-safe state round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything mutable, as plain scalars and lists.

        The returned dict is JSON/npz-serialisable — no locks, no
        closures, no object graphs — and :meth:`load_state` restores it
        so that a resumed stream is bit-identical to an uninterrupted
        one: subsequent estimates, breaker decisions, drift latching
        and the final :class:`DriftReport` all match exactly.  The
        per-interval ``history`` is deliberately *not* part of the
        state (it is an unbounded observability log, not estimator
        state); a restored instance starts with an empty history.
        """
        return {
            "format": ONLINE_STATE_FORMAT,
            "smoothed": self._smoothed,
            "last_time": self._last_time,
            "n_intervals": self._n_intervals,
            "seen": self._seen,
            "n_model": self._n_model,
            "n_baseline": self._n_baseline,
            "n_skipped": self._n_skipped,
            "n_implausible": self._n_implausible,
            "n_clipped": self._n_clipped,
            "breaker_open": self._breaker_open,
            "breaker_trips": self._breaker_trips,
            "breaker_open_intervals": self._breaker_open_intervals,
            "consecutive_bad": self._consecutive_bad,
            "consecutive_good": self._consecutive_good,
            "implausible_window": [bool(b) for b in self._implausible_window],
            "drift_detected": self._drift_detected,
            "warnings": list(self._warnings),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (strict, validated).

        Unknown schema versions and malformed snapshots raise
        ``ValueError`` — a corrupt snapshot must be discarded by the
        caller (and the estimator rebuilt from the baseline model),
        never half-loaded.
        """
        if not isinstance(state, dict):
            raise ValueError("estimator state must be a dict")
        if state.get("format") != ONLINE_STATE_FORMAT:
            raise ValueError(
                f"unknown estimator state format {state.get('format')!r} "
                f"(expected {ONLINE_STATE_FORMAT})"
            )
        try:
            smoothed = state["smoothed"]
            last_time = state["last_time"]
            window = list(state["implausible_window"])
            warnings = [str(w) for w in state["warnings"]]
            ints = {
                key: int(state[key])  # type: ignore[arg-type]
                for key in (
                    "n_intervals", "seen", "n_model", "n_baseline",
                    "n_skipped", "n_implausible", "n_clipped",
                    "breaker_trips", "breaker_open_intervals",
                    "consecutive_bad", "consecutive_good",
                )
            }
            breaker_open = bool(state["breaker_open"])
            drift_detected = bool(state["drift_detected"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed estimator state: {exc}") from exc
        if smoothed is not None and not np.isfinite(float(smoothed)):
            raise ValueError("estimator state carries a non-finite EWMA")
        if len(window) > self.drift_window:
            raise ValueError(
                "estimator state drift window longer than configured"
            )
        if any(v < 0 for v in ints.values()):
            raise ValueError("estimator state counters must be non-negative")
        self.reset()
        self._smoothed = None if smoothed is None else float(smoothed)
        self._last_time = None if last_time is None else float(last_time)
        self._n_intervals = ints["n_intervals"]
        self._seen = ints["seen"]
        self._n_model = ints["n_model"]
        self._n_baseline = ints["n_baseline"]
        self._n_skipped = ints["n_skipped"]
        self._n_implausible = ints["n_implausible"]
        self._n_clipped = ints["n_clipped"]
        self._breaker_trips = ints["breaker_trips"]
        self._breaker_open_intervals = ints["breaker_open_intervals"]
        self._consecutive_bad = ints["consecutive_bad"]
        self._consecutive_good = ints["consecutive_good"]
        self._breaker_open = breaker_open
        self._drift_detected = drift_detected
        self._implausible_window = [bool(b) for b in window]
        self._warnings = warnings

    # ------------------------------------------------------------------
    # Equation 1 pieces
    # ------------------------------------------------------------------
    def _structural_terms(
        self, voltage_v: float, frequency_mhz: float
    ) -> Tuple[float, float]:
        v2f = voltage_v * voltage_v * (frequency_mhz / 1000.0)
        coeffs = self.model.coefficients
        baseline = (
            coeffs["beta:V2f"] * v2f
            + coeffs["gamma:V"] * voltage_v
            + coeffs["delta:Z"]
        )
        return v2f, baseline

    def baseline_power(
        self, *, voltage_v: float, frequency_mhz: float
    ) -> float:
        """PMC-free Equation 1 baseline :math:`\\beta V^2 f + \\gamma V
        + \\delta Z` — what the model says about this operating point
        when no counter can be trusted."""
        _, baseline = self._structural_terms(voltage_v, frequency_mhz)
        return baseline

    def _model_power(
        self,
        counter_deltas: Dict[str, float],
        interval_s: float,
        voltage_v: float,
        frequency_mhz: float,
    ) -> float:
        cycles = frequency_mhz * 1e6 * interval_s
        v2f, power_w = self._structural_terms(voltage_v, frequency_mhz)
        coeffs = self.model.coefficients
        for counter in self.model.counters:
            rate = counter_deltas[counter] / cycles
            power_w += coeffs[f"alpha:{counter}"] * rate * v2f
        return power_w

    def _record(
        self,
        power_w: float,
        time_s: Optional[float],
        interval_s: float,
        source: str,
        flags: Tuple[str, ...],
    ) -> OnlineEstimate:
        if self._smoothed is None:
            self._smoothed = power_w
        else:
            self._smoothed = (
                self.smoothing * power_w
                + (1.0 - self.smoothing) * self._smoothed
            )
        # The previous recorded timestamp is tracked explicitly (not
        # read off the history tail) so a snapshot-restored estimator —
        # whose history starts empty — continues the timeline exactly.
        t = time_s if time_s is not None else (
            self._last_time + interval_s
            if self._last_time is not None
            else interval_s
        )
        self._last_time = t
        self._n_intervals += 1
        estimate = OnlineEstimate(
            time_s=t,
            power_w=power_w,
            smoothed_w=self._smoothed,
            source=source,
            flags=flags,
        )
        self._history.append(estimate)
        return estimate

    # ------------------------------------------------------------------
    # Strict path (historical contract: raise on anything suspect)
    # ------------------------------------------------------------------
    def update(
        self,
        counter_deltas: Dict[str, float],
        *,
        interval_s: float,
        voltage_v: float,
        frequency_mhz: float,
        time_s: Optional[float] = None,
    ) -> OnlineEstimate:
        """Feed one sampling interval's counter deltas.

        ``counter_deltas`` are raw event counts accumulated over the
        interval for (at least) the model's counters.  Returns the
        instantaneous and smoothed power estimates.  Invalid input
        raises — use :meth:`step` for the fault-tolerant variant.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if voltage_v <= 0 or frequency_mhz <= 0:
            raise ValueError("voltage and frequency must be positive")
        missing = [c for c in self.model.counters if c not in counter_deltas]
        if missing:
            raise KeyError(
                f"counter deltas missing model events: {missing}"
            )
        power_w = self._model_power(
            counter_deltas, interval_s, voltage_v, frequency_mhz
        )
        self._seen += 1
        self._n_model += 1
        return self._record(power_w, time_s, interval_s, "model", ())

    # ------------------------------------------------------------------
    # Hardened path
    # ------------------------------------------------------------------
    def _warn(self, message: str) -> None:
        self._warnings.append(f"interval {self._seen}: {message}")

    def _update_breaker(self, interval_good: bool) -> None:
        if interval_good:
            self._consecutive_good += 1
            self._consecutive_bad = 0
            if (
                self._breaker_open
                and self._consecutive_good >= self.recovery_threshold
            ):
                self._breaker_open = False
                self._warn(
                    f"circuit breaker closed after "
                    f"{self._consecutive_good} clean intervals"
                )
        else:
            self._consecutive_bad += 1
            self._consecutive_good = 0
            if (
                not self._breaker_open
                and self._consecutive_bad >= self.breaker_threshold
            ):
                self._breaker_open = True
                self._breaker_trips += 1
                self._warn(
                    f"circuit breaker opened after "
                    f"{self._consecutive_bad} degraded intervals"
                )

    def _track_drift(self, implausible: bool) -> None:
        self._implausible_window.append(implausible)
        if len(self._implausible_window) > self.drift_window:
            del self._implausible_window[0]
        if (
            len(self._implausible_window) == self.drift_window
            and not self._drift_detected
            and self._drift_fraction() > self.drift_tolerance
        ):
            self._drift_detected = True
            self._warn(
                f"drift detected: {self._drift_fraction():.0%} of the "
                f"last {self.drift_window} intervals implausible"
            )

    def _drift_fraction(self) -> float:
        if not self._implausible_window:
            return 0.0
        return sum(self._implausible_window) / len(self._implausible_window)

    def step(
        self,
        counter_deltas: Dict[str, float],
        *,
        interval_s: float,
        voltage_v: float,
        frequency_mhz: float,
        time_s: Optional[float] = None,
    ) -> Optional[OnlineEstimate]:
        """Fault-tolerant variant of :meth:`update`.

        Never raises on degraded input.  Returns ``None`` when the
        interval had to be skipped entirely (invalid context or a
        non-monotonic timestamp); otherwise returns an estimate whose
        ``source``/``flags`` say how it was produced.  All incidents
        are tallied for :meth:`drift_report`.
        """
        self._seen += 1
        context = (interval_s, voltage_v, frequency_mhz)
        if not all(np.isfinite(v) and v > 0 for v in context):
            self._n_skipped += 1
            self._warn(
                f"skipped: invalid context (interval={interval_s}, "
                f"voltage={voltage_v}, frequency={frequency_mhz})"
            )
            return None
        if (
            time_s is not None
            and self._last_time is not None
            and time_s <= self._last_time
        ):
            self._n_skipped += 1
            self._warn(
                f"skipped: non-monotonic timestamp {time_s} after "
                f"{self._last_time}"
            )
            return None

        flags: List[str] = []
        bad: List[str] = []
        for counter in self.model.counters:
            value = counter_deltas.get(counter)
            if value is None:
                bad.append(f"{counter} missing")
            elif not np.isfinite(value):
                bad.append(f"{counter} non-finite")
            elif value < 0:
                bad.append(f"{counter} negative")
        interval_good = not bad
        if bad:
            flags.append("degraded-counters: " + "; ".join(bad))
            self._warn("degraded counters: " + "; ".join(bad))
        self._update_breaker(interval_good)
        if self._breaker_open:
            self._breaker_open_intervals += 1
            flags.append("breaker-open")

        _, baseline = self._structural_terms(voltage_v, frequency_mhz)
        implausible = False
        if interval_good and not self._breaker_open:
            power_w = self._model_power(
                counter_deltas, interval_s, voltage_v, frequency_mhz
            )
            plausible = np.isfinite(power_w) and (
                self.envelope is None or self.envelope.contains(power_w)
            )
            if plausible:
                source = "model"
                self._n_model += 1
            else:
                implausible = True
                self._n_implausible += 1
                flags.append("implausible-model-estimate")
                power_w = baseline
                source = "baseline"
                self._n_baseline += 1
        else:
            power_w = baseline
            source = "baseline"
            self._n_baseline += 1

        if source == "baseline" and self.envelope is not None:
            clipped = self.envelope.clip(power_w)
            if clipped != power_w or not np.isfinite(power_w):  # replint: ignore[RL004] -- clip() returns the input bit-exactly when in range
                flags.append("clipped-to-envelope")
                self._n_clipped += 1
                power_w = clipped
        if not np.isfinite(power_w):
            # Defensive: a pathological model (non-finite coefficients)
            # without an envelope.  Pin to zero rather than poison the
            # EWMA — and say so.
            flags.append("non-finite-estimate-zeroed")
            self._warn("non-finite estimate replaced by 0.0")
            power_w = 0.0

        self._track_drift(implausible)
        return self._record(
            power_w, time_s, interval_s, source, tuple(flags)
        )

    def drift_report(self) -> DriftReport:
        """Structured account of everything :meth:`step` observed."""
        return DriftReport(
            n_intervals=self._n_intervals,
            n_model=self._n_model,
            n_baseline=self._n_baseline,
            n_skipped=self._n_skipped,
            n_implausible=self._n_implausible,
            n_clipped=self._n_clipped,
            breaker_trips=self._breaker_trips,
            breaker_open_intervals=self._breaker_open_intervals,
            breaker_open=self._breaker_open,
            drift_detected=self._drift_detected,
            drift_fraction=self._drift_fraction(),
            warnings=tuple(self._warnings),
        )


@dataclass(frozen=True)
class OnlineTimeline:
    """Estimated vs measured power over one simulated execution."""

    times_s: np.ndarray
    estimated_w: np.ndarray
    smoothed_w: np.ndarray
    measured_w: np.ndarray

    def mape(self) -> float:
        from repro.stats.metrics import mape as _mape

        return _mape(self.measured_w, self.estimated_w)

    def tracks_phase_changes(self, threshold_w: float = 5.0) -> bool:
        """Does the estimate move with the measurement between
        consecutive intervals whenever the measurement moves a lot?"""
        dm = np.diff(self.measured_w)
        de = np.diff(self.estimated_w)
        big = np.abs(dm) > threshold_w
        if not np.any(big):
            return True
        return bool(np.all(np.sign(dm[big]) == np.sign(de[big])))


def _stream_run(
    platform: Platform,
    run: RunExecution,
    model: FittedPowerModel,
    estimator: OnlineEstimator,
    *,
    interval_s: float,
    injector=None,
) -> OnlineTimeline:
    """Shared driver: stream a simulated run through an estimator,
    optionally corrupting each interval's deltas with an online fault
    injector."""
    rng = derive_rng(
        platform.seed, "online", run.workload_name,
        run.op.frequency_mhz, run.threads, run.run_index,
    )
    times, measured = [], []
    f_hz = run.op.frequency_hz
    interval_index = 0
    for phase in run.phases:
        n = max(int(np.floor(phase.duration_s / interval_s)), 1)
        for k in range(1, n + 1):
            t = phase.start_s + k * interval_s
            if t > phase.end_s + 1e-9:
                break
            deltas = {}
            for counter in model.counters:
                true = phase.state.rate(counter) * f_hz * interval_s
                noise = 1.0 + rng.normal(0.0, platform.pmu.read_noise_sigma)
                deltas[counter] = max(true * noise, 0.0)
            voltage_v_mean = platform.voltage.read_average(
                run.op, phase.phase.active_threads, 1, rng
            )
            if injector is not None:
                deltas = injector.corrupt(deltas, interval_index)
                estimate = estimator.step(
                    deltas,
                    interval_s=interval_s,
                    voltage_v=voltage_v_mean,
                    frequency_mhz=run.op.frequency_mhz,
                    time_s=t,
                )
            else:
                estimate = estimator.update(
                    deltas,
                    interval_s=interval_s,
                    voltage_v=voltage_v_mean,
                    frequency_mhz=run.op.frequency_mhz,
                    time_s=t,
                )
            interval_index += 1
            if estimate is None:
                continue
            measured.append(
                platform.sensors.measure_node_average(
                    phase.power_breakdown.per_socket_w, interval_s, rng
                )
            )
            times.append(t)
    hist = estimator.history
    return OnlineTimeline(
        times_s=np.asarray(times),
        estimated_w=np.asarray([h.power_w for h in hist]),
        smoothed_w=np.asarray([h.smoothed_w for h in hist]),
        measured_w=np.asarray(measured),
    )


def estimate_run(
    platform: Platform,
    run: RunExecution,
    model: FittedPowerModel,
    *,
    interval_s: float = 0.5,
    smoothing: float = 1.0,
) -> OnlineTimeline:
    """Stream a simulated run through the online estimator.

    Counter deltas are sampled from the run's ground truth with PMU
    read noise; the measured series comes from the power sensors at the
    same cadence — the comparison a deployment validation would make.
    """
    estimator = OnlineEstimator(model, smoothing=smoothing)
    EventSet(events=tuple(model.counters))  # validates the counter set
    return _stream_run(
        platform, run, model, estimator, interval_s=interval_s
    )


def estimate_run_degraded(
    platform: Platform,
    run: RunExecution,
    model: FittedPowerModel,
    *,
    faults,
    interval_s: float = 0.5,
    smoothing: float = 1.0,
    envelope: Optional[PowerEnvelope] = None,
    breaker_threshold: int = 3,
    recovery_threshold: int = 2,
) -> Tuple[OnlineTimeline, DriftReport]:
    """Stream a simulated run through the *hardened* estimator while an
    inference-time fault injector corrupts the counter stream.

    ``faults`` is a :class:`repro.faults.online.CounterLossPlan`; the
    injector is keyed by the platform seed, so the same (platform,
    plan) pair reproduces the same degraded session bit for bit.
    Returns the timeline together with the session's
    :class:`DriftReport`.
    """
    from repro.faults.online import OnlineFaultInjector

    estimator = OnlineEstimator(
        model,
        smoothing=smoothing,
        envelope=envelope,
        breaker_threshold=breaker_threshold,
        recovery_threshold=recovery_threshold,
    )
    EventSet(events=tuple(model.counters))  # validates the counter set
    injector = OnlineFaultInjector(faults, platform.seed)
    timeline = _stream_run(
        platform,
        run,
        model,
        estimator,
        interval_s=interval_s,
        injector=injector,
    )
    return timeline, estimator.drift_report()
