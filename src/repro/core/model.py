"""The regression power model (Section III-C).

:class:`PowerModel` wraps the Equation 1 design matrix and an OLS fit
with HC3 heteroscedasticity-consistent standard errors — the estimator
the paper adopts following Long & Ervin (2000) — and exposes the fit
quality numbers (:math:`R^2`, adjusted :math:`R^2`) and prediction used
throughout Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.core.features import design_matrix, feature_names
from repro.stats.linalg import FitDiagnostics
from repro.stats.metrics import mape, r2_score
from repro.stats.ols import OLSResult, fit_ols
from repro.stats.robust import fit_robust

__all__ = ["PowerModel", "FittedPowerModel", "ESTIMATORS"]

#: Supported coefficient estimators: plain OLS (the paper's) and the
#: Huber-IRLS robust alternative for outlier-contaminated campaigns.
ESTIMATORS = ("ols", "huber")


@dataclass(frozen=True)
class FittedPowerModel:
    """An immutable fitted Equation 1 model."""

    counters: tuple
    ols: OLSResult
    cov_type: str
    estimator: str = "ols"
    """Which estimator produced the coefficients (``"ols"``/``"huber"``)."""

    # ------------------------------------------------------------------
    @property
    def rsquared(self) -> float:
        return self.ols.rsquared

    @property
    def diagnostics(self) -> Optional[FitDiagnostics]:
        """Numerical provenance of the underlying fit."""
        return self.ols.diagnostics

    @property
    def rsquared_adj(self) -> float:
        return self.ols.rsquared_adj

    @property
    def coefficients(self) -> Dict[str, float]:
        """Named coefficients: ``alpha:<counter>``, ``beta:V2f``,
        ``gamma:V``, ``delta:Z``."""
        return dict(zip(self.ols.exog_names, self.ols.params))

    def alpha(self, counter: str) -> float:
        """α coefficient of one selected counter (W per V²·GHz·rate)."""
        key = f"alpha:{counter}"
        coeffs = self.coefficients
        if key not in coeffs:
            raise KeyError(f"{counter!r} is not part of this model")
        return coeffs[key]

    @property
    def beta(self) -> float:
        return self.coefficients["beta:V2f"]

    @property
    def gamma(self) -> float:
        return self.coefficients["gamma:V"]

    @property
    def delta(self) -> float:
        return self.coefficients["delta:Z"]

    # ------------------------------------------------------------------
    def predict(self, dataset: PowerDataset) -> np.ndarray:
        """Estimated power (W) for the rows of a dataset."""
        x = design_matrix(dataset, self.counters)
        return x @ self.ols.params

    def predict_interval(
        self, dataset: PowerDataset, alpha: float = 0.05
    ) -> np.ndarray:
        """Confidence intervals for the *mean* predicted power.

        Uses the fit's (HC3) coefficient covariance: the standard error
        of ``x'β`` is ``sqrt(x' Cov(β) x)``.  Returns an ``(n, 2)``
        array of lower/upper bounds at level ``1 - alpha``.  These are
        intervals on the model's expected power (coefficient
        uncertainty), not on individual noisy measurements.
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        from scipy import stats as _scipy_stats

        x = design_matrix(dataset, self.counters)
        mean = x @ self.ols.params
        # Row-wise quadratic form without materializing the hat matrix.
        se = np.sqrt(
            np.maximum(
                np.einsum("ij,jk,ik->i", x, self.ols.cov_params, x), 0.0
            )
        )
        q = _scipy_stats.t.ppf(1.0 - alpha / 2.0, max(self.ols.df_resid, 1))
        return np.column_stack([mean - q * se, mean + q * se])

    def evaluate(self, dataset: PowerDataset) -> Dict[str, float]:
        """Out-of-sample error metrics on a dataset."""
        pred = self.predict(dataset)
        return {
            "mape": mape(dataset.power_w, pred),
            "r2": r2_score(dataset.power_w, pred),
        }

    def summary(self) -> str:
        return self.ols.summary()


class PowerModel:
    """Factory: formulate Equation 1 for a chosen counter set."""

    def __init__(
        self,
        counters: Sequence[str],
        *,
        cov_type: str = "HC3",
        estimator: str = "ols",
    ) -> None:
        seen = set()
        for c in counters:
            if c in seen:
                raise ValueError(f"counter {c!r} listed twice")
            seen.add(c)
        if estimator not in ESTIMATORS:
            raise ValueError(
                f"estimator must be one of {ESTIMATORS}, got {estimator!r}"
            )
        self.counters = tuple(counters)
        self.cov_type = cov_type
        self.estimator = estimator

    def fit(self, dataset: PowerDataset) -> FittedPowerModel:
        """Fit on a dataset (coefficients via least squares or Huber
        IRLS, inference via the configured HC estimator)."""
        x = design_matrix(dataset, self.counters)
        fit_fn = fit_robust if self.estimator == "huber" else fit_ols
        ols = fit_fn(
            dataset.power_w,
            x,
            intercept=False,
            cov_type=self.cov_type,
            exog_names=feature_names(self.counters),
        )
        return FittedPowerModel(
            counters=self.counters,
            ols=ols,
            cov_type=self.cov_type,
            estimator=self.estimator,
        )
