"""The paper's primary contribution: Equation 1 power models, the
Algorithm 1 counter selection, scenario validation and counter
significance analysis."""

from repro.core.analysis import (
    CounterSignificance,
    counter_power_pcc,
    significance_report,
)
from repro.core.features import STRUCTURAL_TERMS, design_matrix, feature_names
from repro.core.model import ESTIMATORS, FittedPowerModel, PowerModel
from repro.core.persistence import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.core.report import fmt, render_counts, render_series, render_table
from repro.core.scenarios import (
    SCENARIO_NAMES,
    ScenarioResult,
    cv_out_of_fold_predictions,
    run_all_scenarios,
    scenario_cv_all,
    scenario_cv_synthetic,
    scenario_random_workloads,
    scenario_synthetic_to_spec,
)
from repro.core.attribution import PowerAttribution, attribute, attribute_dataset
from repro.core.energy import (
    EnergyAccount,
    dvfs_energy_profile,
    optimal_frequency,
    phase_energy,
    run_energy,
)
from repro.core.changepoint import (
    PhaseSegment,
    cusum_changepoints,
    detect_phases,
    segment_mean,
)
from repro.core.governor import (
    GovernorTimeline,
    PowerCapGovernor,
    govern_workload,
)
from repro.core.online import (
    ONLINE_STATE_FORMAT,
    DriftReport,
    OnlineEstimate,
    OnlineEstimator,
    OnlineTimeline,
    PowerEnvelope,
    estimate_run,
    estimate_run_degraded,
)
from repro.core.selection import (
    SelectionResult,
    SelectionStep,
    select_events,
    select_events_lasso,
)
from repro.core.workflow import WorkflowResult, run_workflow

__all__ = [
    "design_matrix",
    "feature_names",
    "STRUCTURAL_TERMS",
    "PowerModel",
    "FittedPowerModel",
    "ESTIMATORS",
    "select_events",
    "SelectionResult",
    "SelectionStep",
    "ScenarioResult",
    "SCENARIO_NAMES",
    "cv_out_of_fold_predictions",
    "scenario_random_workloads",
    "scenario_synthetic_to_spec",
    "scenario_cv_all",
    "scenario_cv_synthetic",
    "run_all_scenarios",
    "counter_power_pcc",
    "CounterSignificance",
    "significance_report",
    "run_workflow",
    "WorkflowResult",
    "render_table",
    "render_series",
    "render_counts",
    "fmt",
    "select_events_lasso",
    "EnergyAccount",
    "phase_energy",
    "run_energy",
    "dvfs_energy_profile",
    "optimal_frequency",
    "ONLINE_STATE_FORMAT",
    "OnlineEstimator",
    "OnlineEstimate",
    "OnlineTimeline",
    "PowerEnvelope",
    "DriftReport",
    "estimate_run",
    "estimate_run_degraded",
    "PowerAttribution",
    "attribute",
    "attribute_dataset",
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
    "PowerCapGovernor",
    "GovernorTimeline",
    "govern_workload",
    "cusum_changepoints",
    "segment_mean",
    "detect_phases",
    "PhaseSegment",
]
