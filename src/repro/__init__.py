"""repro — a reproduction of "A Statistical Approach to Power Estimation
for x86 Processors" (Chadha, Ilsche, Bielert, Nagel; IPDPSW 2017).

The package implements the paper's full methodology — PMC-based power
modeling with statistically rigorous counter selection — together with
every substrate it runs on: a behavioural simulator of the dual-socket
Haswell-EP system under test, the roco2 / SPEC OMP2012 workload suites,
a Score-P/OTF2-style tracing pipeline with metric plugins, the
multi-run acquisition campaigns forced by PMU multiplexing, and a
self-contained statistics layer (OLS with HC3 errors, VIF, PCC, k-fold
CV).

Quickstart::

    from repro import Platform, run_workflow

    result = run_workflow()          # acquisition → selection → model → CV
    print(result.summary())
    print(result.model.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.acquisition import (
    Campaign,
    CampaignPlan,
    CampaignReport,
    CampaignResult,
    PowerDataset,
    ResilientCampaign,
    RetryPolicy,
    run_campaign,
    run_resilient_campaign,
)
from repro.core import (
    FittedPowerModel,
    PowerModel,
    ScenarioResult,
    SelectionResult,
    WorkflowResult,
    counter_power_pcc,
    run_all_scenarios,
    run_workflow,
    select_events,
)
from repro.hardware import (
    HASWELL_EP_CONFIG,
    PAPER_FREQUENCIES_MHZ,
    SELECTION_FREQUENCY_MHZ,
    Platform,
    PlatformConfig,
)
from repro.faults import FaultPlan
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    TimingReport,
    resolve_executor,
)
from repro.seeding import DEFAULT_SEED
from repro.workloads import (
    Characterization,
    Workload,
    all_workloads,
    generate_workloads,
    get_workload,
    roco2_suite,
    spec_omp2012_suite,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hardware
    "Platform",
    "PlatformConfig",
    "HASWELL_EP_CONFIG",
    "PAPER_FREQUENCIES_MHZ",
    "SELECTION_FREQUENCY_MHZ",
    # workloads
    "Workload",
    "Characterization",
    "all_workloads",
    "get_workload",
    "roco2_suite",
    "spec_omp2012_suite",
    "generate_workloads",
    # acquisition
    "PowerDataset",
    "Campaign",
    "CampaignPlan",
    "run_campaign",
    # fault tolerance
    "FaultPlan",
    "ResilientCampaign",
    "RetryPolicy",
    "CampaignReport",
    "CampaignResult",
    "run_resilient_campaign",
    # core
    "PowerModel",
    "FittedPowerModel",
    "select_events",
    "SelectionResult",
    "run_all_scenarios",
    "ScenarioResult",
    "counter_power_pcc",
    "run_workflow",
    "WorkflowResult",
    # parallel execution
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TimingReport",
    "resolve_executor",
    # misc
    "DEFAULT_SEED",
]
