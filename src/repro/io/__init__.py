"""Crash-safe I/O primitives shared by every artifact writer."""

from repro.io.atomic import (
    atomic_open,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
)

__all__ = [
    "atomic_open",
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_text",
]
