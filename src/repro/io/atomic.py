"""Atomic artifact writes: temp file in the target directory + ``os.replace``.

Campaign caches, exported tables and serialized models must never be
observable in a half-written state: a process killed mid-write would
otherwise leave a truncated ``.npz`` that every later run trips over
(``zipfile.BadZipFile``) instead of regenerating.  The protocol here is
the standard one:

1. write the complete payload to a uniquely named sibling temp file
   (same directory ⇒ same filesystem ⇒ ``os.replace`` is atomic);
2. ``os.replace`` the temp file onto the final path — readers see
   either the old complete file or the new complete file, never a mix;
3. on any error, unlink the temp file so aborted writes leave no debris.

This module is the **only** place allowed to call the raw write
primitives; lint rule RL006 enforces that every other durable write
routes through these helpers.
"""

from __future__ import annotations

import json
import os
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

import numpy as np

__all__ = [
    "atomic_open",
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_savez",
]


def _temp_sibling(path: Path) -> Path:
    """A unique temp path next to ``path`` (same filesystem)."""
    return path.parent / f".{path.name}.{uuid.uuid4().hex[:12]}.tmp"


@contextmanager
def atomic_open(
    path: Union[str, Path], mode: str = "w", **kwargs
) -> Iterator[IO]:
    """Open a temp file for writing; publish to ``path`` on clean exit.

    Accepts the text/binary write modes (``w``, ``wb``).  The handle is
    flushed and fsync'd before the rename so the publish is durable,
    not merely ordered.
    """
    if not set(mode) & set("wax"):
        raise ValueError(f"atomic_open is for writing, got mode {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _temp_sibling(path)
    fh = open(tmp, mode, **kwargs)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open(path, "w", encoding=encoding) as fh:
        fh.write(text)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_open(path, "wb") as fh:
        fh.write(data)


def atomic_write_json(path: Union[str, Path], obj: object) -> None:
    """Atomically replace ``path`` with ``obj`` serialized as JSON.

    Sorted keys and a trailing newline keep the output byte-stable, so
    manifests diff cleanly across writes.
    """
    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def atomic_savez(path: Union[str, Path], **arrays: "np.ndarray") -> None:
    """Atomically write a compressed ``.npz`` of the given arrays.

    The temp file keeps the ``.npz`` suffix so numpy does not append a
    second one before the rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.stem}.{uuid.uuid4().hex[:12]}.tmp.npz"
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
