"""Inference-time counter loss: faults against the *online* estimator.

The acquisition fault model (:mod:`repro.faults.plan`) corrupts the
training campaign; a deployed model faces a different failure surface.
PMU multiplexing steals a counter for an interval, a perf-event file
descriptor dies and the delta reads back garbage, an NTP step makes a
timestamp jump backwards, a driver hiccup blacks out every counter at
once.  :class:`CounterLossPlan` describes the rates of these
inference-time faults and :class:`OnlineFaultInjector` applies them to
a stream of per-interval counter deltas — deterministically, keyed by
``(root_seed, "online-fault", fault_seed, kind, interval, counter)``,
so a chaos replay with the same seeds corrupts the same intervals the
same way, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.seeding import derive_rng

__all__ = ["CounterLossPlan", "OnlineFaultInjector"]

_RATE_FIELDS: Tuple[str, ...] = (
    "counter_drop_rate",
    "blackout_rate",
    "nan_rate",
    "negative_rate",
)


@dataclass(frozen=True)
class CounterLossPlan:
    """Rates of the modelled inference-time counter faults.

    All rates are probabilities; ``counter_drop_rate``, ``nan_rate``
    and ``negative_rate`` are per (interval, counter), while
    ``blackout_rate`` is per interval and removes *every* counter —
    the multiplexing-conflict worst case the circuit breaker exists
    for.
    """

    counter_drop_rate: float = 0.0
    """Per-(interval, counter) probability the delta is simply absent."""
    blackout_rate: float = 0.0
    """Per-interval probability that all counters vanish at once."""
    nan_rate: float = 0.0
    """Per-(interval, counter) probability of a NaN delta."""
    negative_rate: float = 0.0
    """Per-(interval, counter) probability of a negative delta (counter
    reprogramming race)."""
    fault_seed: int = 0
    """Extra stream key, mirroring :class:`~repro.faults.plan.FaultPlan`."""

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def any_active(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def chaos(
        cls, intensity: float = 0.1, *, fault_seed: int = 0
    ) -> "CounterLossPlan":
        """Every inference-time fault class at once, scaled by
        ``intensity`` (cf. :meth:`FaultPlan.chaos`)."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return cls(
            counter_drop_rate=min(0.5 * intensity, 1.0),
            blackout_rate=min(0.3 * intensity, 1.0),
            nan_rate=min(0.2 * intensity, 1.0),
            negative_rate=min(0.2 * intensity, 1.0),
            fault_seed=fault_seed,
        )

    def describe(self) -> str:
        active = [
            f"{name}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return "CounterLossPlan(" + (", ".join(active) or "inactive") + ")"


class OnlineFaultInjector:
    """Apply a :class:`CounterLossPlan` to streaming counter deltas.

    Every decision draws from its own derived stream keyed by fault
    kind, interval index and counter name, so changing one rate never
    shifts the decisions of another fault class (the same decoupling
    the acquisition injector guarantees).
    """

    def __init__(self, plan: CounterLossPlan, root_seed: int) -> None:
        self.plan = plan
        self.root_seed = int(root_seed)

    def _decide(self, kind: str, *key) -> bool:
        rate = getattr(self.plan, kind)
        if rate <= 0.0:
            return False
        rng = derive_rng(
            self.root_seed, "online-fault", self.plan.fault_seed, kind, *key
        )
        return bool(rng.random() < rate)

    def corrupt(
        self, deltas: Dict[str, float], interval_index: int
    ) -> Dict[str, float]:
        """Return a corrupted copy of one interval's counter deltas.

        The input mapping is never mutated.  A blackout returns an
        empty dict; otherwise each counter independently survives, is
        dropped, or has its value replaced by NaN / a negated value.
        """
        if not self.plan.any_active:
            return dict(deltas)
        if self._decide("blackout_rate", interval_index):
            return {}
        out: Dict[str, float] = {}
        for counter in deltas:
            if self._decide("counter_drop_rate", interval_index, counter):
                continue
            value = deltas[counter]
            if self._decide("nan_rate", interval_index, counter):
                value = float("nan")
            elif self._decide("negative_rate", interval_index, counter):
                value = -abs(value) - 1.0
            out[counter] = value
        return out
