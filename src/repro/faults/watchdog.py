"""Acquisition watchdog: plausibility validation of traces/profiles.

Injected faults are only half the story — the campaign loop also needs
to *detect* corrupted acquisitions, the way the paper's post-processing
operator would eyeball a day's traces before merging them.  The checks
here are physical plausibility arguments, not comparisons against the
injector's bookkeeping, so they catch real pipeline bugs too:

* NaN power samples — the sensor link dropped readings;
* a flat-lined power channel — exact float repeats cannot occur with
  live Gaussian sensor noise, so ≥ :data:`STUCK_RUN_LENGTH` identical
  consecutive samples mean a stuck ADC;
* PMC rates beyond :data:`PLAUSIBLE_MAX_RATE_PER_S` — a ~3 GHz chip
  with issue width 4 cannot generate 10¹³ events/s; only a 48-bit
  wrap/saturation can;
* lost phases — a run's profile set must cover every phase the
  workload executed (truncated trace, or phases poisoned by NaN).

All failures raise :class:`~repro.faults.errors.AcquisitionError` with
a machine-readable ``kind`` the resilient loop aggregates.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.faults.errors import AcquisitionError
from repro.hardware.platform import RunExecution
from repro.tracing.otf2 import Trace
from repro.tracing.phases import PhaseProfile
from repro.tracing.plugins import ApapiPlugin, PowerPlugin

__all__ = [
    "PLAUSIBLE_MAX_RATE_PER_S",
    "STUCK_RUN_LENGTH",
    "validate_trace",
    "validate_profiles",
]

#: No realistic PMC event rate exceeds this (≈3 GHz × issue width 4,
#: with an order of magnitude of headroom).  A 48-bit wrap reports
#: ≈2.8e14 events/s and lands far above it.
PLAUSIBLE_MAX_RATE_PER_S = 1e13

#: Consecutive bit-identical power samples that signal a stuck sensor.
#: Live samples carry continuous Gaussian noise; even two exact repeats
#: are vanishingly unlikely, eight are a diagnosis.
STUCK_RUN_LENGTH = 8


def _max_equal_run(values: np.ndarray) -> int:
    """Length of the longest run of identical consecutive values."""
    if values.size < 2:
        return values.size
    # Compare neighbours; NaN != NaN keeps dropout out of this check.
    equal = values[1:] == values[:-1]  # replint: ignore[RL004] -- exact repeats are the signal
    best = run = 1
    for same in equal:
        run = run + 1 if same else 1
        best = max(best, run)
    return best


def validate_trace(trace: Trace) -> None:
    """Raise :class:`AcquisitionError` if a trace is physically implausible."""
    power_stream = trace.metrics.get(PowerPlugin.METRIC)
    if power_stream is not None and power_stream.values.size:
        n_nan = int(np.isnan(power_stream.values).sum())
        if n_nan:
            raise AcquisitionError(
                f"power stream has {n_nan} NaN samples of "
                f"{power_stream.values.size} — sensor dropout",
                kind="sensor-dropout",
            )
        longest = _max_equal_run(power_stream.values)
        if longest >= STUCK_RUN_LENGTH:
            raise AcquisitionError(
                f"power stream flat-lined for {longest} consecutive "
                f"samples — stuck sensor",
                kind="sensor-stuck",
            )
    for name, stream in trace.metrics.items():
        if not name.startswith(ApapiPlugin.PREFIX) or not stream.values.size:
            continue
        peak = float(np.nanmax(stream.values))
        if peak > PLAUSIBLE_MAX_RATE_PER_S:
            raise AcquisitionError(
                f"counter {name[len(ApapiPlugin.PREFIX):]} reports "
                f"{peak:.3g} events/s — PMC overflow/saturation",
                kind="counter-overflow",
            )


def validate_profiles(
    profiles: Sequence[PhaseProfile],
    run: RunExecution,
    *,
    min_duration_s: float = 0.5,
) -> None:
    """Raise :class:`AcquisitionError` when profiles lost phases.

    ``min_duration_s`` must match the profile generation's cutoff:
    phases shorter than it are legitimately absent.
    """
    expected = Counter(
        pe.phase.name
        for pe in run.phases
        if pe.duration_s >= min_duration_s
    )
    got = Counter(p.phase_name for p in profiles)
    missing = expected - got
    if missing:
        names = ", ".join(sorted(missing))
        raise AcquisitionError(
            f"run {run.workload_name}@{run.op.frequency_mhz}MHz/"
            f"{run.threads}t#{run.run_index} lost phases: {names} "
            f"(truncated trace or poisoned samples)",
            kind="phase-loss",
        )
