"""Deterministic fault injection for platforms and traces.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete failures.  Every decision is drawn from a stream derived
via :func:`repro.seeding.derive_rng` from ``(root_seed, "fault",
fault_seed, kind, cell key…, attempt)``:

* decisions are **reproducible** — the same seed and plan replay the
  same faults, so chaos tests assert exact outcomes;
* decisions are **per (cell, attempt)** — a retry of a crashed run is
  a fresh draw, exactly like re-launching a flaky job, while being
  independent of *when* the retry happens.  This is what makes an
  interrupted-and-resumed campaign bit-identical to an uninterrupted
  one.

Injection sites mirror the real acquisition stack: run crashes at
:meth:`FaultyPlatform.execute`, everything else as corruption of the
recorded trace (sensor dropout / stuck-at / NaN readings on the power
stream, 48-bit wrap on PMC streams, truncation of the event record).
"""

from __future__ import annotations

import threading
from collections import Counter
from fnmatch import fnmatch
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.faults.errors import RunFailure
from repro.faults.plan import FaultPlan
from repro.hardware.platform import Platform
from repro.hardware.sensors import SensorFaults
from repro.seeding import derive_rng
from repro.tracing.otf2 import MetricStream, Trace
from repro.tracing.plugins import ApapiPlugin, PowerPlugin

__all__ = ["FaultInjector", "FaultyPlatform", "OVERFLOW_RATE_PER_S"]

#: Reported event rate of a wrapped/saturated 48-bit PMC read.  Orders
#: of magnitude above anything a ~3 GHz chip can produce, so the
#: watchdog's plausibility check always catches it.
OVERFLOW_RATE_PER_S = float(2**48)

_CellKey = Tuple[str, int, int, int]  # workload, freq_mhz, threads, run_index


class FaultInjector:
    """Applies a :class:`FaultPlan` to runs and traces, deterministically."""

    def __init__(self, plan: FaultPlan, root_seed: int) -> None:
        self.plan = plan
        self.root_seed = int(root_seed)
        #: Count of faults actually injected, by kind (report material).
        #: Advisory under parallel execution: thread workers share (and
        #: lock) this counter, process workers count in their own copy.
        self.injected: Counter = Counter()
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, object]:
        # Locks cannot cross process boundaries; every fault *decision*
        # is a pure function of (root_seed, plan, kind, cell, attempt),
        # so a pickled injector replays identically in the worker.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1

    # ------------------------------------------------------------------
    def _rng(self, kind: str, *key: Union[str, int]) -> np.random.Generator:
        return derive_rng(
            self.root_seed, "fault", self.plan.fault_seed, kind, *key
        )

    def _event(self, rate: float, kind: str, *key: Union[str, int]) -> bool:
        if rate <= 0.0:
            return False
        return bool(self._rng(kind, *key).random() < rate)

    @staticmethod
    def _cell_tag(cell: _CellKey) -> str:
        workload, frequency_mhz, threads, run_index = cell
        return f"{workload}:{frequency_mhz}:{threads}:{run_index}"

    # ------------------------------------------------------------------
    # run-level faults
    # ------------------------------------------------------------------
    def check_run(
        self,
        workload: str,
        frequency_mhz: int,
        threads: int,
        run_index: int,
        *,
        attempt: int = 0,
    ) -> None:
        """Raise :class:`RunFailure` if this (cell, attempt) crashes."""
        cell: _CellKey = (workload, int(frequency_mhz), int(threads), int(run_index))
        tag = self._cell_tag(cell)
        for pattern in self.plan.kill_cells:
            if fnmatch(tag, pattern):
                self._count("cell-killed")
                raise RunFailure(
                    f"run {tag} attempt {attempt}: cell matches kill "
                    f"pattern {pattern!r} (persistently broken)",
                    kind="cell-killed",
                )
        if self._event(self.plan.run_failure_rate, "run-crash", *cell, attempt):
            self._count("run-crash")
            raise RunFailure(
                f"run {tag} attempt {attempt}: transient crash injected"
            )

    def node_is_dead(self, node_id: int) -> bool:
        """Whether cluster node ``node_id`` never comes up."""
        dead = self._event(self.plan.dead_node_rate, "node-dead", int(node_id))
        if dead:
            self._count("dead-node")
        return dead

    def node_death_fraction(self, node_id: int) -> Optional[float]:
        """When node ``node_id`` dies mid-campaign, as a fraction of the
        campaign makespan — ``None`` if it survives.

        Drawn per node from the fault stream: whether the node dies is
        a ``node_death_rate`` event, and the death instant is uniform
        in [0.05, 0.85] of the makespan (never so late that the death
        is unobservable, never before the campaign starts).  The
        scheduler turns the fraction into a virtual-clock instant.
        """
        if not self._event(self.plan.node_death_rate, "node-death", int(node_id)):
            return None
        self._count("node-death")
        rng = self._rng("node-death-time", int(node_id))
        return float(rng.uniform(0.05, 0.85))

    def node_straggler_factor(self, node_id: int) -> float:
        """Slowdown factor of node ``node_id`` (1.0 = healthy).

        A ``straggler_rate`` event marks the node as pathologically
        slow for the whole campaign; its factor is uniform in [4, 12] —
        slow enough that deadline detection (not mere patience) is what
        bounds the damage.
        """
        if not self._event(self.plan.straggler_rate, "straggler", int(node_id)):
            return 1.0
        self._count("straggler")
        rng = self._rng("straggler-slowdown", int(node_id))
        return float(rng.uniform(4.0, 12.0))

    def sensor_faults(
        self, *key: Union[str, int]
    ) -> SensorFaults:
        """Sensor-level fault state for one sampling context.

        For callers driving :meth:`PowerSensor.sample` directly (the
        plugin/trace path uses :meth:`corrupt_trace` instead, which
        applies the same glitch classes to the recorded stream).
        """
        return SensorFaults(
            dropout=self._event(
                self.plan.sensor_dropout_rate, "sensor-dropout", *key
            ),
            stuck=self._event(self.plan.sensor_stuck_rate, "sensor-stuck", *key),
            nan_rate=self.plan.nan_sample_rate,
        )

    # ------------------------------------------------------------------
    # trace-level faults
    # ------------------------------------------------------------------
    def corrupt_trace(self, trace: Trace, *, attempt: int = 0) -> Trace:
        """Return ``trace`` with this plan's corruptions applied.

        The input trace is not modified.  Faults are keyed by the run
        identity in ``trace.meta`` plus ``attempt``.
        """
        if not self.plan.corrupts_traces:
            return trace
        meta = trace.meta
        cell: _CellKey = (
            str(meta["workload"]),
            int(meta["frequency_mhz"]),
            int(meta["threads"]),
            int(meta["run_index"]),
        )
        out = self._maybe_truncate(trace, cell, attempt)
        self._corrupt_power_stream(out, cell, attempt)
        self._corrupt_counter_streams(out, cell, attempt)
        return out

    # -- truncation ----------------------------------------------------
    def _maybe_truncate(self, trace: Trace, cell: _CellKey, attempt: int) -> Trace:
        rng = self._rng("truncate", *cell, attempt)
        copy = self._copy_trace(trace)
        if not (
            self.plan.trace_truncation_rate > 0.0
            and rng.random() < self.plan.trace_truncation_rate
        ):
            return copy
        cut_s = float(rng.uniform(0.25, 0.9)) * trace.duration_s
        truncated = Trace(meta=dict(trace.meta))
        for region, start_s, end_s, active in trace.phase_intervals():
            if end_s <= cut_s:
                truncated.record_enter(region, start_s, active)
                truncated.record_leave(region, end_s, active)
        for name, stream in trace.metrics.items():
            keep = stream.times_s <= cut_s
            truncated.add_metric_stream(
                MetricStream(
                    definition=stream.definition,
                    times_s=stream.times_s[keep],
                    values=stream.values[keep].copy(),
                )
            )
        self._count("trace-truncation")
        return truncated

    @staticmethod
    def _copy_trace(trace: Trace) -> Trace:
        """Shallow-structure copy with fresh value arrays (so stream
        corruption never mutates the caller's trace)."""
        copy = Trace(meta=dict(trace.meta))
        copy.events = list(trace.events)
        copy._open_regions = list(trace._open_regions)
        copy._last_time = trace._last_time
        for name, stream in trace.metrics.items():
            copy.add_metric_stream(
                MetricStream(
                    definition=stream.definition,
                    times_s=stream.times_s,
                    values=stream.values.copy(),
                )
            )
        return copy

    # -- power-sensor glitches ----------------------------------------
    def _corrupt_power_stream(
        self, trace: Trace, cell: _CellKey, attempt: int
    ) -> None:
        stream = trace.metrics.get(PowerPlugin.METRIC)
        if stream is None or stream.values.size == 0:
            return
        values = stream.values
        n = values.size
        if self.plan.nan_sample_rate > 0.0:
            rng = self._rng("nan-sample", *cell, attempt)
            mask = rng.random(n) < self.plan.nan_sample_rate
            if np.any(mask):
                values[mask] = np.nan
                self._count("nan-sample")
        if self._event(self.plan.sensor_dropout_rate, "sensor-dropout", *cell, attempt):
            rng = self._rng("sensor-dropout-window", *cell, attempt)
            width = max(int(n * float(rng.uniform(0.1, 0.4))), 1)
            start = int(rng.integers(0, max(n - width, 0) + 1))
            values[start : start + width] = np.nan
            self._count("sensor-dropout")
        if self._event(self.plan.sensor_stuck_rate, "sensor-stuck", *cell, attempt):
            rng = self._rng("sensor-stuck-index", *cell, attempt)
            idx = int(rng.integers(0, max(n - 8, 0) + 1))
            values[idx:] = values[idx]
            self._count("sensor-stuck")

    # -- PMC overflow ---------------------------------------------------
    def _corrupt_counter_streams(
        self, trace: Trace, cell: _CellKey, attempt: int
    ) -> None:
        if self.plan.counter_overflow_rate <= 0.0:
            return
        for name, stream in trace.metrics.items():
            if not name.startswith(ApapiPlugin.PREFIX):
                continue
            if stream.values.size == 0:
                continue
            if not self._event(
                self.plan.counter_overflow_rate, "overflow", *cell, name, attempt
            ):
                continue
            rng = self._rng("overflow-index", *cell, name, attempt)
            n = stream.values.size
            width = max(n // 10, 1)
            start = int(rng.integers(0, max(n - width, 0) + 1))
            stream.values[start : start + width] = OVERFLOW_RATE_PER_S
            self._count("counter-overflow")

    # ------------------------------------------------------------------
    def fault_counts(self) -> Dict[str, int]:
        """Faults injected so far, by kind."""
        return dict(self.injected)


class FaultyPlatform(Platform):
    """A :class:`Platform` whose executions crash per a fault plan.

    Reconstructs an identical platform from the base's parameters (the
    sensor calibrations are redrawn deterministically from the same
    seed), so swapping ``Platform`` for ``FaultyPlatform`` changes
    *only* the fault behaviour, never the physics.
    """

    def __init__(self, base: Platform, plan: FaultPlan) -> None:
        super().__init__(
            base.cfg,
            base.power_params,
            seed=base.seed,
            run_jitter_sigma=base.run_jitter_sigma,
            power_jitter_sigma=base.power_jitter_sigma,
            power_offset_sigma_w=base.power_offset_sigma_w,
        )
        self.fault_plan = plan
        self.injector = FaultInjector(plan, base.seed)

    def execute(
        self,
        workload,
        frequency_mhz,
        threads,
        *,
        run_index=0,
        attempt=0,
        fast=None,
        phases=None,
    ):
        """Execute with fault checks; raises :class:`RunFailure` when
        the plan crashes this (cell, attempt)."""
        self.injector.check_run(
            workload.name, frequency_mhz, threads, run_index, attempt=attempt
        )
        return super().execute(
            workload,
            frequency_mhz,
            threads,
            run_index=run_index,
            fast=fast,
            phases=phases,
        )
