"""Fault model of the acquisition pipeline.

Declarative fault plans (:class:`FaultPlan`), a deterministic injector
that applies them to platforms and traces (:class:`FaultInjector`,
:class:`FaultyPlatform`), the watchdog validators that detect the
resulting corruption, and the exception taxonomy the resilient
campaign loop retries on.
"""

from repro.faults.errors import (
    AcquisitionError,
    FaultError,
    NodeFailure,
    RunFailure,
)
from repro.faults.injector import (
    OVERFLOW_RATE_PER_S,
    FaultInjector,
    FaultyPlatform,
)
from repro.faults.ingest import IngestFaultInjector, IngestFaultPlan
from repro.faults.online import CounterLossPlan, OnlineFaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import (
    PLAUSIBLE_MAX_RATE_PER_S,
    STUCK_RUN_LENGTH,
    validate_profiles,
    validate_trace,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultyPlatform",
    "CounterLossPlan",
    "OnlineFaultInjector",
    "IngestFaultPlan",
    "IngestFaultInjector",
    "FaultError",
    "RunFailure",
    "AcquisitionError",
    "NodeFailure",
    "OVERFLOW_RATE_PER_S",
    "PLAUSIBLE_MAX_RATE_PER_S",
    "STUCK_RUN_LENGTH",
    "validate_trace",
    "validate_profiles",
]
