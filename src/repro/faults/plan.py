"""Fault plans: a declarative, seeded model of acquisition failures.

Real multi-day Score-P measurement sessions (Section III-A) are lossy:
runs crash, power sensors drop out or flat-line, PAPI counters wrap,
traces get truncated when a buffer fills, and cluster nodes die.  A
:class:`FaultPlan` describes *how* lossy a simulated campaign should
be; the :class:`~repro.faults.injector.FaultInjector` turns the plan
into concrete, deterministic fault decisions derived from the root
seed via :func:`repro.seeding.derive_rng` — the same seed and plan
always produce the same faults, so every chaos test is reproducible
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Tuple

__all__ = ["FaultPlan"]

#: FaultPlan fields that are probabilities (validated to [0, 1]).
_RATE_FIELDS: Tuple[str, ...] = (
    "run_failure_rate",
    "sensor_dropout_rate",
    "sensor_stuck_rate",
    "nan_sample_rate",
    "counter_overflow_rate",
    "trace_truncation_rate",
    "dead_node_rate",
    "node_death_rate",
    "straggler_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Rates and targets of every modelled acquisition fault.

    All rates are probabilities.  ``run_failure_rate``,
    ``trace_truncation_rate``, ``sensor_dropout_rate`` and
    ``sensor_stuck_rate`` are per run attempt; ``nan_sample_rate`` is
    per power sample; ``counter_overflow_rate`` is per (run, counter);
    ``dead_node_rate``, ``node_death_rate`` and ``straggler_rate`` are
    per cluster node.
    """

    run_failure_rate: float = 0.0
    """Probability one instrumented run crashes (→ ``RunFailure``)."""
    sensor_dropout_rate: float = 0.0
    """Probability a run loses a contiguous block of power samples."""
    sensor_stuck_rate: float = 0.0
    """Probability the power channel flat-lines (stuck-at glitch)."""
    nan_sample_rate: float = 0.0
    """Per-sample probability of a NaN power reading."""
    counter_overflow_rate: float = 0.0
    """Per-(run, counter) probability of a 48-bit PMC wrap/saturation."""
    trace_truncation_rate: float = 0.0
    """Probability a trace is cut short (Score-P buffer exhaustion)."""
    dead_node_rate: float = 0.0
    """Per-node probability a cluster node never comes up."""
    node_death_rate: float = 0.0
    """Per-node probability a node that *did* come up dies mid-campaign
    (the scheduler loses its in-flight cells and reassigns them).  The
    death instant is drawn as a fraction of the campaign makespan from
    the node-keyed stream — see
    :meth:`FaultInjector.node_death_fraction`."""
    straggler_rate: float = 0.0
    """Per-node probability a node runs pathologically slow for the
    whole campaign (a straggler); the slowdown factor is drawn from the
    node-keyed stream — see
    :meth:`FaultInjector.node_straggler_factor`."""
    kill_cells: Tuple[str, ...] = ()
    """``fnmatch`` patterns of ``workload:freq:threads:run_index`` cells
    that crash on *every* attempt — models a persistently broken
    configuration (the quarantine path of the resilient loop)."""
    fault_seed: int = 0
    """Extra stream key so distinct chaos scenarios can share one
    platform seed without correlating their fault decisions."""

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------
    @property
    def any_active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(self.kill_cells) or any(
            getattr(self, name) > 0.0 for name in _RATE_FIELDS
        )

    @property
    def corrupts_traces(self) -> bool:
        """Whether any trace-level corruption is configured."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "sensor_dropout_rate",
                "sensor_stuck_rate",
                "nan_sample_rate",
                "counter_overflow_rate",
                "trace_truncation_rate",
            )
        )

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``factor`` (capped
        at 1.0) — e.g. ``plan.scaled(0.5)`` for a gentler rehearsal."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        updates = {
            name: min(getattr(self, name) * factor, 1.0)
            for name in _RATE_FIELDS
        }
        return replace(self, **updates)

    def combine(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans: elementwise max of rates, union of kill
        patterns.  ``fault_seed`` is taken from ``self``."""
        updates = {
            name: max(getattr(self, name), getattr(other, name))
            for name in _RATE_FIELDS
        }
        updates["kill_cells"] = tuple(
            dict.fromkeys(self.kill_cells + other.kill_cells)
        )
        return replace(self, **updates)

    @classmethod
    def chaos(cls, intensity: float = 0.1, *, fault_seed: int = 0) -> "FaultPlan":
        """A kitchen-sink plan exercising every fault class at once.

        ``intensity`` scales all rates; 0.1 roughly matches the loss
        rate of a bad week on a shared production system.
        """
        return cls(
            run_failure_rate=1.0,
            sensor_dropout_rate=1.0,
            sensor_stuck_rate=0.5,
            nan_sample_rate=0.02,
            counter_overflow_rate=0.5,
            trace_truncation_rate=1.0,
            dead_node_rate=0.5,
            node_death_rate=0.5,
            straggler_rate=0.5,
            fault_seed=fault_seed,
        ).scaled(intensity)

    def describe(self) -> str:
        """One line per active fault class (report / log material)."""
        lines = []
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in _RATE_FIELDS and value > 0.0:
                lines.append(f"{f.name}={value:g}")
        if self.kill_cells:
            lines.append(f"kill_cells={','.join(self.kill_cells)}")
        return "FaultPlan(" + (", ".join(lines) or "inactive") + ")"
