"""Exception taxonomy of the fault subsystem.

Every error carries a ``kind`` tag — a short machine-readable label
("run-crash", "sensor-dropout", …) that the resilient campaign loop
aggregates into the :class:`~repro.acquisition.campaign.CampaignReport`
fault statistics without parsing message strings.
"""

from __future__ import annotations

__all__ = ["FaultError", "RunFailure", "AcquisitionError", "NodeFailure"]


class FaultError(RuntimeError):
    """Base class of all injected / detected acquisition faults."""

    def __init__(self, message: str, *, kind: str = "fault") -> None:
        super().__init__(message)
        self.kind = kind


class RunFailure(FaultError):
    """A single instrumented run died (segfault, PAPI init failure,
    Score-P buffer exhaustion, node reboot mid-run, …).

    Transient by definition: re-executing the run may succeed, which is
    why the resilient campaign loop retries it rather than aborting the
    whole multi-day campaign.
    """

    def __init__(self, message: str, *, kind: str = "run-crash") -> None:
        super().__init__(message, kind=kind)


class AcquisitionError(FaultError):
    """A run completed but produced implausible or incomplete data.

    Raised by the acquisition watchdog (:mod:`repro.faults.watchdog`)
    when a trace shows sensor dropout, a stuck power channel, PMC
    overflow, or lost phases — the "silent" failure modes that would
    otherwise poison the regression dataset.
    """


class NodeFailure(FaultError):
    """A cluster node is dead (does not boot / heartbeat)."""

    def __init__(self, message: str, *, kind: str = "dead-node") -> None:
        super().__init__(message, kind=kind)
