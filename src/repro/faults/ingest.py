"""Seeded ingestion faults against the fleet estimation service.

The online fault model (:mod:`repro.faults.online`) corrupts one
node's counter stream; a *fleet* ingestion path fails in more ways:
whole submissions arrive malformed, node ids duplicate, timestamps
step backwards per node, and traffic bursts past queue capacity.
:class:`IngestFaultPlan` declares the rates and
:class:`IngestFaultInjector` applies them to submission batches —
deterministically, keyed by ``(root_seed, "ingest-fault", fault_seed,
kind, tick, node_id[, extra])``, so the chaos soak replays bit for
bit and the bit-identity tests can drive the serial and vectorized
paths from the same corrupted stream.

Only ``faulty_node_fraction`` of nodes (a seeded, per-node decision)
are eligible for per-sample faults — the chaos acceptance criterion
needs healthy nodes whose estimates must come through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.seeding import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.serve.api import NodeSample

__all__ = ["IngestFaultPlan", "IngestFaultInjector"]

_RATE_FIELDS: Tuple[str, ...] = (
    "malformed_rate",
    "drop_rate",
    "nan_rate",
    "negative_rate",
    "context_rate",
    "backwards_time_rate",
    "duplicate_rate",
    "burst_rate",
)


@dataclass(frozen=True)
class IngestFaultPlan:
    """Rates of the modelled fleet-ingestion faults.

    Per-sample rates apply only to samples from fault-eligible nodes
    (see ``faulty_node_fraction``); ``burst_rate`` is per submission
    tick and replays the whole tick's traffic ``burst_factor`` times —
    the overload case the bounded queue's backpressure policy exists
    for.
    """

    malformed_rate: float = 0.0
    """Per-sample probability the submission is structural garbage
    (dropped and counted by the schema middleware)."""
    drop_rate: float = 0.0
    """Per-sample probability the report never arrives."""
    nan_rate: float = 0.0
    """Per-sample probability one counter delta reads back NaN."""
    negative_rate: float = 0.0
    """Per-sample probability one counter delta goes negative."""
    context_rate: float = 0.0
    """Per-sample probability of invalid context (zero voltage)."""
    backwards_time_rate: float = 0.0
    """Per-sample probability the timestamp steps backwards (NTP)."""
    duplicate_rate: float = 0.0
    """Per-sample probability the report is delivered twice."""
    burst_rate: float = 0.0
    """Per-tick probability of a traffic burst."""
    burst_factor: int = 2
    """How many times a burst tick's traffic is replayed."""
    faulty_node_fraction: float = 1.0
    """Fraction of nodes eligible for per-sample faults (seeded,
    per-node, stable across ticks)."""
    fault_seed: int = 0
    """Extra stream key, mirroring the other fault plans."""

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS + ("faulty_node_fraction",):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be at least 1")

    @property
    def any_active(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def chaos(
        cls,
        intensity: float = 0.1,
        *,
        faulty_node_fraction: float = 0.2,
        fault_seed: int = 0,
    ) -> "IngestFaultPlan":
        """Every ingestion fault class at once, scaled by ``intensity``
        (cf. :meth:`CounterLossPlan.chaos`)."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return cls(
            malformed_rate=min(0.2 * intensity, 1.0),
            drop_rate=min(0.2 * intensity, 1.0),
            nan_rate=min(0.5 * intensity, 1.0),
            negative_rate=min(0.3 * intensity, 1.0),
            context_rate=min(0.2 * intensity, 1.0),
            backwards_time_rate=min(0.3 * intensity, 1.0),
            duplicate_rate=min(0.3 * intensity, 1.0),
            burst_rate=min(0.2 * intensity, 1.0),
            burst_factor=2,
            faulty_node_fraction=faulty_node_fraction,
            fault_seed=fault_seed,
        )

    def describe(self) -> str:
        active = [
            f"{name}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        if active and self.faulty_node_fraction < 1.0:
            active.append(f"faulty_node_fraction={self.faulty_node_fraction:g}")
        return "IngestFaultPlan(" + (", ".join(active) or "inactive") + ")"


class _Garbage:
    """A structurally-invalid submission (not a :class:`NodeSample`)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<malformed submission>"


class IngestFaultInjector:
    """Apply an :class:`IngestFaultPlan` to per-tick submission batches.

    Every decision draws from its own derived stream keyed by fault
    kind, tick and node id, so changing one rate never shifts another
    fault class's decisions.
    """

    def __init__(self, plan: IngestFaultPlan, root_seed: int) -> None:
        self.plan = plan
        self.root_seed = int(root_seed)

    def _rng(self, kind: str, *key):
        return derive_rng(
            self.root_seed, "ingest-fault", self.plan.fault_seed, kind, *key
        )

    def _decide(self, kind: str, *key) -> bool:
        rate = getattr(self.plan, kind)
        if rate <= 0.0:
            return False
        return bool(self._rng(kind, *key).random() < rate)

    def node_faulty(self, node_id: str) -> bool:
        """Is this node eligible for per-sample faults?  Seeded and
        stable across the whole session."""
        if self.plan.faulty_node_fraction >= 1.0:
            return True
        if self.plan.faulty_node_fraction <= 0.0:
            return False
        rng = self._rng("faulty-node", node_id)
        return bool(rng.random() < self.plan.faulty_node_fraction)

    def corrupt(
        self, samples: Sequence[NodeSample], tick: int
    ) -> List[object]:
        """A corrupted copy of one tick's submissions.

        The input is never mutated.  Returns a mixed list of
        :class:`NodeSample` and garbage objects, possibly with
        duplicates, drops, and a whole-tick burst replay.
        """
        if not self.plan.any_active:
            return list(samples)
        out: List[object] = []
        for sample in samples:
            node_id = sample.node_id
            if not self.node_faulty(node_id):
                out.append(sample)
                continue
            if self._decide("drop_rate", tick, node_id):
                continue
            if self._decide("malformed_rate", tick, node_id):
                out.append(_Garbage())
                continue
            corrupted = sample
            if self._decide("nan_rate", tick, node_id) and corrupted.counter_deltas:
                deltas = dict(corrupted.counter_deltas)
                names = sorted(deltas)
                victim = names[
                    int(self._rng("nan-victim", tick, node_id).integers(
                        0, len(names)
                    ))
                ]
                deltas[victim] = float("nan")
                corrupted = replace(corrupted, counter_deltas=deltas)
            elif self._decide("negative_rate", tick, node_id) and corrupted.counter_deltas:
                deltas = dict(corrupted.counter_deltas)
                names = sorted(deltas)
                victim = names[
                    int(self._rng("neg-victim", tick, node_id).integers(
                        0, len(names)
                    ))
                ]
                deltas[victim] = -abs(deltas[victim]) - 1.0
                corrupted = replace(corrupted, counter_deltas=deltas)
            if self._decide("context_rate", tick, node_id):
                corrupted = replace(corrupted, voltage_v=0.0)
            if (
                corrupted.time_s is not None
                and self._decide("backwards_time_rate", tick, node_id)
            ):
                corrupted = replace(
                    corrupted, time_s=corrupted.time_s - 1000.0
                )
            out.append(corrupted)
            if self._decide("duplicate_rate", tick, node_id):
                out.append(corrupted)
        if self._decide("burst_rate", tick):
            out = out * self.plan.burst_factor
        return out
