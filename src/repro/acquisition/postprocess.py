"""Post-processing: merging multi-run profiles into a dataset.

"Multiple runs of the same application are required due to the hardware
limitation on simultaneous recording of multiple PAPI counters. […]
Following data acquisition, the data from multiple runs is processed to
calculate average power and voltage across all runs.  Furthermore, the
phase profiles from multiple runs are combined together" (Section
III-A).

:func:`merge_runs` performs exactly that merge: phases are matched by
name across the runs of one experiment, power/voltage are averaged over
all runs, and each run contributes the counters its PMU event set was
programmed with.

Because real campaigns lose runs (see :mod:`repro.faults`), the merge
distinguishes two consistency problems and lets the caller choose how
each is handled (``"raise"`` — the strict default — ``"record"`` into
an issue list, or ``"ignore"``):

* **phase-set mismatch** — runs of the same experiment disagree on
  which phases exist (a truncated trace, a dropped run): the merged
  phases would silently lack the missing runs' counter rates;
* **counter disagreement** — the same counter recorded twice with
  wildly inconsistent values (broken multiplexing).

:func:`counter_coverage` makes the resulting holes explicit: the
fraction of merged phases carrying each counter — the coverage map the
resilient campaign reports and degrades on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.hardware.counters import COUNTER_NAMES
from repro.hardware.fastsim import fastsim_enabled
from repro.tracing.phases import PhaseProfile

__all__ = [
    "MergedPhase",
    "merge_runs",
    "counter_coverage",
    "build_dataset",
]

#: Valid values of the ``on_*`` merge-consistency modes.
_MODES = ("raise", "record", "ignore")


class MergedPhase:
    """One phase of one experiment, merged across counter-group runs."""

    def __init__(
        self,
        workload: str,
        suite: str,
        frequency_mhz: int,
        threads: int,
        phase_name: str,
        active_threads: int,
    ) -> None:
        self.workload = workload
        self.suite = suite
        self.frequency_mhz = frequency_mhz
        self.threads = threads
        self.phase_name = phase_name
        self.active_threads = active_threads
        self.power_samples: List[float] = []
        self.voltage_samples: List[float] = []
        self.counter_rates_per_s: Dict[str, float] = {}

    @property
    def power_w(self) -> float:
        return float(np.mean(self.power_samples))

    @property
    def voltage_v(self) -> float:
        return float(np.mean(self.voltage_samples))

    def rate_per_cycle(self, counter: str) -> float:
        return self.counter_rates_per_s[counter] / (self.frequency_mhz * 1e6)


def _handle(
    mode: str, issues: Optional[List[str]], message: str
) -> None:
    if mode == "raise":
        raise ValueError(message)
    if mode == "record" and issues is not None:
        issues.append(message)


def merge_runs(
    profiles: Sequence[PhaseProfile],
    *,
    on_phase_mismatch: str = "raise",
    on_counter_disagreement: str = "raise",
    issues: Optional[List[str]] = None,
) -> List[MergedPhase]:
    """Merge phase profiles from all runs of one or more experiments.

    Fixed counters appear in every run; their rate is averaged across
    runs.  Programmable counters appear once (their scheduled run).

    Consistency handling (each mode is one of ``"raise"``/``"record"``/
    ``"ignore"``; recorded messages are appended to ``issues``):

    * ``on_phase_mismatch`` — runs of the same experiment carry
      different phase sets, so some merged phases are missing that
      run's counter contribution;
    * ``on_counter_disagreement`` — the same counter recorded twice
      with wildly inconsistent values (> 25 % spread) — broken
      campaign, not run-to-run noise.  In non-raise modes the mean is
      kept.
    """
    for name, mode in (
        ("on_phase_mismatch", on_phase_mismatch),
        ("on_counter_disagreement", on_counter_disagreement),
    ):
        if mode not in _MODES:
            raise ValueError(f"{name} must be one of {_MODES}, got {mode!r}")

    buckets: Dict[tuple, MergedPhase] = {}
    counter_acc: Dict[tuple, Dict[str, List[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    # experiment key -> run_index -> phase names seen in that run
    run_phases: Dict[tuple, Dict[int, Set[str]]] = defaultdict(
        lambda: defaultdict(set)
    )
    for p in profiles:
        key = (p.workload, p.frequency_mhz, p.threads, p.phase_name)
        run_phases[(p.workload, p.frequency_mhz, p.threads)][p.run_index].add(
            p.phase_name
        )
        if key not in buckets:
            buckets[key] = MergedPhase(
                workload=p.workload,
                suite=p.suite,
                frequency_mhz=p.frequency_mhz,
                threads=p.threads,
                phase_name=p.phase_name,
                active_threads=p.active_threads,
            )
        merged = buckets[key]
        if p.active_threads != merged.active_threads:
            raise ValueError(
                f"{key}: inconsistent active thread counts across runs "
                f"({p.active_threads} vs {merged.active_threads})"
            )
        merged.power_samples.append(p.power_w)
        merged.voltage_samples.append(p.voltage_v)
        for counter, rate in p.counter_rates_per_s.items():
            counter_acc[key][counter].append(rate)

    if on_phase_mismatch != "ignore":
        for exp_key, by_run in sorted(run_phases.items()):
            if len(by_run) < 2:
                continue
            union: Set[str] = set().union(*by_run.values())
            gaps = []
            for run_index in sorted(by_run):
                missing = union - by_run[run_index]
                if missing:
                    gaps.append(
                        f"run {run_index} missing {sorted(missing)}"
                    )
            if gaps:
                workload, frequency_mhz, threads = exp_key
                _handle(
                    on_phase_mismatch,
                    issues,
                    f"experiment {workload}@{frequency_mhz}MHz/{threads}t: "
                    f"phase sets differ across runs ({'; '.join(gaps)}) — "
                    f"affected phases lack those runs' counter rates",
                )

    use_fast = fastsim_enabled(None)
    for key, merged in buckets.items():
        for counter, values in counter_acc[key].items():
            if use_fast and len(values) == 1:
                # Mean of one sample is the sample: programmable
                # counters appear in exactly one event-set run, and
                # skipping the ndarray round-trip here removes the
                # dominant per-counter cost of a merge.  Gated so
                # REPRO_FASTSIM=0 replays the original loop verbatim.
                merged.counter_rates_per_s[counter] = values[0]
                continue
            arr = np.asarray(values)
            mean = float(arr.mean())
            if len(values) > 1 and mean > 0:
                spread = float(arr.max() - arr.min()) / mean
                if spread > 0.25:
                    _handle(
                        on_counter_disagreement,
                        issues,
                        f"{key}: counter {counter} disagrees across runs "
                        f"by {spread:.0%} — inconsistent campaign",
                    )
            merged.counter_rates_per_s[counter] = mean
    return list(buckets.values())


def counter_coverage(
    merged: Sequence[MergedPhase],
    counter_names: Sequence[str] = COUNTER_NAMES,
) -> Dict[str, float]:
    """Fraction of merged phases carrying each counter.

    1.0 everywhere for an intact campaign; a quarantined counter-group
    run shows up as a block of counters below 1.0.  This is the
    explicit coverage map graceful degradation decides on, instead of
    an exception.
    """
    names = tuple(counter_names)
    if not merged:
        return {c: 0.0 for c in names}
    n = len(merged)
    return {
        c: sum(1 for m in merged if c in m.counter_rates_per_s) / n
        for c in names
    }


def build_dataset(
    merged: Sequence[MergedPhase],
    *,
    require_complete: bool = True,
    counter_names: Optional[Sequence[str]] = None,
) -> PowerDataset:
    """Assemble the regression dataset from merged phases.

    ``counter_names`` selects the dataset columns (default: all 54
    paper counters) — the degradation path passes the covered subset.
    With ``require_complete`` (default) every phase must carry all
    selected counters; otherwise incomplete phases are dropped.
    """
    names: Tuple[str, ...] = (
        tuple(counter_names) if counter_names is not None else COUNTER_NAMES
    )
    if not names:
        raise ValueError("need at least one counter column")
    rows = []
    for m in merged:
        missing = [c for c in names if c not in m.counter_rates_per_s]
        if missing:
            if require_complete:
                raise ValueError(
                    f"phase {m.phase_name!r} of {m.workload!r} is missing "
                    f"{len(missing)} counters (e.g. {missing[:3]})"
                )
            continue
        rows.append(m)
    if not rows:
        raise ValueError("no complete phases to build a dataset from")
    counters = np.array([[m.rate_per_cycle(c) for c in names] for m in rows])
    return PowerDataset(
        counters=counters,
        power_w=np.array([m.power_w for m in rows]),
        voltage_v=np.array([m.voltage_v for m in rows]),
        frequency_mhz=np.array([m.frequency_mhz for m in rows], dtype=np.float64),
        threads=np.array([m.threads for m in rows], dtype=np.int64),
        workloads=tuple(m.workload for m in rows),
        suites=tuple(m.suite for m in rows),
        phase_names=tuple(m.phase_name for m in rows),
        counter_names=names,
    )
