"""Post-processing: merging multi-run profiles into a dataset.

"Multiple runs of the same application are required due to the hardware
limitation on simultaneous recording of multiple PAPI counters. […]
Following data acquisition, the data from multiple runs is processed to
calculate average power and voltage across all runs.  Furthermore, the
phase profiles from multiple runs are combined together" (Section
III-A).

:func:`merge_runs` performs exactly that merge: phases are matched by
name across the runs of one experiment, power/voltage are averaged over
all runs, and each run contributes the counters its PMU event set was
programmed with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.hardware.counters import COUNTER_NAMES
from repro.tracing.phases import PhaseProfile

__all__ = ["MergedPhase", "merge_runs", "build_dataset"]


class MergedPhase:
    """One phase of one experiment, merged across counter-group runs."""

    def __init__(
        self,
        workload: str,
        suite: str,
        frequency_mhz: int,
        threads: int,
        phase_name: str,
        active_threads: int,
    ) -> None:
        self.workload = workload
        self.suite = suite
        self.frequency_mhz = frequency_mhz
        self.threads = threads
        self.phase_name = phase_name
        self.active_threads = active_threads
        self.power_samples: List[float] = []
        self.voltage_samples: List[float] = []
        self.counter_rates_per_s: Dict[str, float] = {}

    @property
    def power_w(self) -> float:
        return float(np.mean(self.power_samples))

    @property
    def voltage_v(self) -> float:
        return float(np.mean(self.voltage_samples))

    def rate_per_cycle(self, counter: str) -> float:
        return self.counter_rates_per_s[counter] / (self.frequency_mhz * 1e6)


def merge_runs(profiles: Sequence[PhaseProfile]) -> List[MergedPhase]:
    """Merge phase profiles from all runs of one or more experiments.

    Fixed counters appear in every run; their rate is averaged across
    runs.  Programmable counters appear once (their scheduled run).
    Raises if the same programmable counter is recorded twice with
    wildly inconsistent values — that indicates a broken campaign, not
    expected run-to-run noise.
    """
    buckets: Dict[tuple, MergedPhase] = {}
    counter_acc: Dict[tuple, Dict[str, List[float]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for p in profiles:
        key = (p.workload, p.frequency_mhz, p.threads, p.phase_name)
        if key not in buckets:
            buckets[key] = MergedPhase(
                workload=p.workload,
                suite=p.suite,
                frequency_mhz=p.frequency_mhz,
                threads=p.threads,
                phase_name=p.phase_name,
                active_threads=p.active_threads,
            )
        merged = buckets[key]
        if p.active_threads != merged.active_threads:
            raise ValueError(
                f"{key}: inconsistent active thread counts across runs "
                f"({p.active_threads} vs {merged.active_threads})"
            )
        merged.power_samples.append(p.power_w)
        merged.voltage_samples.append(p.voltage_v)
        for counter, rate in p.counter_rates_per_s.items():
            counter_acc[key][counter].append(rate)

    for key, merged in buckets.items():
        for counter, values in counter_acc[key].items():
            arr = np.asarray(values)
            mean = float(arr.mean())
            if len(values) > 1 and mean > 0:
                spread = float(arr.max() - arr.min()) / mean
                if spread > 0.25:
                    raise ValueError(
                        f"{key}: counter {counter} disagrees across runs "
                        f"by {spread:.0%} — inconsistent campaign"
                    )
            merged.counter_rates_per_s[counter] = mean
    return list(buckets.values())


def build_dataset(
    merged: Sequence[MergedPhase], *, require_complete: bool = True
) -> PowerDataset:
    """Assemble the regression dataset from merged phases.

    With ``require_complete`` (default) every phase must have all 54
    counters recorded; otherwise incomplete phases are dropped —
    the failure-injection tests exercise that path.
    """
    rows = []
    for m in merged:
        missing = [c for c in COUNTER_NAMES if c not in m.counter_rates_per_s]
        if missing:
            if require_complete:
                raise ValueError(
                    f"phase {m.phase_name!r} of {m.workload!r} is missing "
                    f"{len(missing)} counters (e.g. {missing[:3]})"
                )
            continue
        rows.append(m)
    if not rows:
        raise ValueError("no complete phases to build a dataset from")
    counters = np.array(
        [[m.rate_per_cycle(c) for c in COUNTER_NAMES] for m in rows]
    )
    return PowerDataset(
        counters=counters,
        power_w=np.array([m.power_w for m in rows]),
        voltage_v=np.array([m.voltage_v for m in rows]),
        frequency_mhz=np.array([m.frequency_mhz for m in rows], dtype=np.float64),
        threads=np.array([m.threads for m in rows], dtype=np.int64),
        workloads=tuple(m.workload for m in rows),
        suites=tuple(m.suite for m in rows),
        phase_names=tuple(m.phase_name for m in rows),
    )
