"""The regression dataset assembled from merged phase profiles.

Each row is one phase profile of one experiment (workload × frequency ×
thread count), carrying the 54 counter rates in events per cpu cycle
(the :math:`E_n` of Equation 1), the averaged power and voltage, and
identification columns used by the scenario splits and per-workload
error analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.counters import COUNTER_NAMES
from repro.io.atomic import atomic_savez
from repro.parallel.arena import ArrayHandle, SharedArena

__all__ = ["PowerDataset", "DatasetHandle", "ExperimentKey"]

#: Identification of one experiment (a Fig. 5 data point).
ExperimentKey = Tuple[str, int, int]  # (workload, frequency_mhz, threads)


@dataclass(frozen=True)
class DatasetHandle:
    """Picklable shared-memory reference to a published dataset.

    Every column — numeric and string alike — lives in a
    :class:`~repro.parallel.arena.SharedArena` segment (strings as
    fixed-width ``numpy.str_`` arrays), so a work item carrying this
    handle costs ~500 bytes on the wire where pickling the dataset
    ships the full counter matrix.  :meth:`resolve` rebuilds a real
    :class:`PowerDataset` (memoized per process), so worker code runs
    unchanged on shared pages.
    """

    counters: ArrayHandle
    power_w: ArrayHandle
    voltage_v: ArrayHandle
    frequency_mhz: ArrayHandle
    threads: ArrayHandle
    workloads: ArrayHandle
    suites: ArrayHandle
    phase_names: ArrayHandle
    counter_names: Tuple[str, ...]

    def resolve(self) -> "PowerDataset":
        """The published dataset, backed by shared pages (memoized)."""
        cached = _DATASET_MEMO.get(self)
        if cached is not None:
            return cached
        dataset = PowerDataset(
            counters=self.counters.resolve(),
            power_w=self.power_w.resolve(),
            voltage_v=self.voltage_v.resolve(),
            frequency_mhz=self.frequency_mhz.resolve(),
            threads=self.threads.resolve(),
            workloads=tuple(self.workloads.resolve().tolist()),
            suites=tuple(self.suites.resolve().tolist()),
            phase_names=tuple(self.phase_names.resolve().tolist()),
            counter_names=self.counter_names,
        )
        while len(_DATASET_MEMO) >= _DATASET_MEMO_CAP:
            _DATASET_MEMO.pop(next(iter(_DATASET_MEMO)))
        _DATASET_MEMO[self] = dataset
        return dataset


#: Worker-side resolution memo (string-tuple reconstruction is the
#: only real cost); bounded for long-lived workers.
_DATASET_MEMO: Dict[DatasetHandle, "PowerDataset"] = {}
_DATASET_MEMO_CAP = 4


@dataclass(frozen=True)
class PowerDataset:
    """Immutable column-oriented regression dataset."""

    counters: np.ndarray
    """(n, 54) event rates per cpu cycle, canonical counter order."""
    power_w: np.ndarray
    voltage_v: np.ndarray
    frequency_mhz: np.ndarray
    threads: np.ndarray
    workloads: Tuple[str, ...]
    suites: Tuple[str, ...]
    phase_names: Tuple[str, ...]
    counter_names: Tuple[str, ...] = COUNTER_NAMES

    def __post_init__(self) -> None:
        n = self.counters.shape[0]
        if self.counters.ndim != 2 or self.counters.shape[1] != len(
            self.counter_names
        ):
            raise ValueError(
                f"counters must be (n, {len(self.counter_names)}), "
                f"got {self.counters.shape}"
            )
        for name, arr in (
            ("power_w", self.power_w),
            ("voltage_v", self.voltage_v),
            ("frequency_mhz", self.frequency_mhz),
            ("threads", self.threads),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        for name, seq in (
            ("workloads", self.workloads),
            ("suites", self.suites),
            ("phase_names", self.phase_names),
        ):
            if len(seq) != n:
                raise ValueError(f"{name} must have {n} entries, got {len(seq)}")
        if n and (np.any(self.power_w <= 0) or np.any(self.voltage_v <= 0)):
            raise ValueError("power and voltage must be strictly positive")

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.counters.shape[0]

    @property
    def frequency_hz(self) -> np.ndarray:
        return self.frequency_mhz * 1e6

    def column(self, counter: str) -> np.ndarray:
        """Rate column (events per cycle) of one counter."""
        return self.counters[:, self.counter_names.index(counter)]

    def counter_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Rate columns for a list of counters, in the given order."""
        idx = [self.counter_names.index(n) for n in names]
        return self.counters[:, idx]

    # ------------------------------------------------------------------
    def subset(self, mask: np.ndarray) -> "PowerDataset":
        """Row subset by boolean mask or index array."""
        mask = np.asarray(mask)
        if mask.dtype == bool and mask.shape != (self.n_samples,):
            raise ValueError("boolean mask has wrong length")
        idx = np.flatnonzero(mask) if mask.dtype == bool else mask
        take = lambda seq: tuple(seq[i] for i in idx)  # noqa: E731
        return PowerDataset(
            counters=self.counters[idx],
            power_w=self.power_w[idx],
            voltage_v=self.voltage_v[idx],
            frequency_mhz=self.frequency_mhz[idx],
            threads=self.threads[idx],
            workloads=take(self.workloads),
            suites=take(self.suites),
            phase_names=take(self.phase_names),
            counter_names=self.counter_names,
        )

    def filter(
        self,
        *,
        suite: Optional[str] = None,
        workloads: Optional[Iterable[str]] = None,
        frequency_mhz: Optional[int] = None,
    ) -> "PowerDataset":
        """Row subset by suite / workload names / frequency."""
        mask = np.ones(self.n_samples, dtype=bool)
        if suite is not None:
            mask &= np.array([s == suite for s in self.suites])
        if workloads is not None:
            wanted = set(workloads)
            mask &= np.array([w in wanted for w in self.workloads])
        if frequency_mhz is not None:
            mask &= self.frequency_mhz == frequency_mhz
        return self.subset(mask)

    @staticmethod
    def concat(parts: Sequence["PowerDataset"]) -> "PowerDataset":
        """Row-wise concatenation of datasets with matching columns."""
        if not parts:
            raise ValueError("nothing to concatenate")
        names = parts[0].counter_names
        if any(p.counter_names != names for p in parts):
            raise ValueError("counter name mismatch between datasets")
        return PowerDataset(
            counters=np.vstack([p.counters for p in parts]),
            power_w=np.concatenate([p.power_w for p in parts]),
            voltage_v=np.concatenate([p.voltage_v for p in parts]),
            frequency_mhz=np.concatenate([p.frequency_mhz for p in parts]),
            threads=np.concatenate([p.threads for p in parts]),
            workloads=sum((p.workloads for p in parts), ()),
            suites=sum((p.suites for p in parts), ()),
            phase_names=sum((p.phase_names for p in parts), ()),
            counter_names=names,
        )

    # ------------------------------------------------------------------
    def experiment_keys(self) -> List[ExperimentKey]:
        """Distinct (workload, frequency, threads) combinations."""
        seen: Dict[ExperimentKey, None] = {}
        for i in range(self.n_samples):
            seen.setdefault(
                (self.workloads[i], int(self.frequency_mhz[i]), int(self.threads[i])),
                None,
            )
        return list(seen)

    def experiment_averages(self) -> "PowerDataset":
        """One duration-weighted-equivalent row per experiment.

        Phases of an experiment are averaged (unweighted — the phase
        profile rows of one experiment have comparable durations),
        matching the "average power for one specific experiment" data
        points of Fig. 5.
        """
        keys = self.experiment_keys()
        rows = []
        for key in keys:
            mask = np.array(
                [
                    (self.workloads[i], int(self.frequency_mhz[i]), int(self.threads[i]))
                    == key
                    for i in range(self.n_samples)
                ]
            )
            sub = self.subset(mask)
            rows.append(
                (
                    sub.counters.mean(axis=0),
                    sub.power_w.mean(),
                    sub.voltage_v.mean(),
                    key,
                    sub.suites[0],
                )
            )
        return PowerDataset(
            counters=np.vstack([r[0] for r in rows]),
            power_w=np.array([r[1] for r in rows]),
            voltage_v=np.array([r[2] for r in rows]),
            frequency_mhz=np.array([r[3][1] for r in rows], dtype=np.float64),
            threads=np.array([r[3][2] for r in rows], dtype=np.int64),
            workloads=tuple(r[3][0] for r in rows),
            suites=tuple(r[4] for r in rows),
            phase_names=tuple(f"{r[3][0]}@avg" for r in rows),
            counter_names=self.counter_names,
        )

    # ------------------------------------------------------------------
    def share(self, arena: "SharedArena") -> DatasetHandle:
        """Publish every column into ``arena``; return the handle.

        The handle's :meth:`DatasetHandle.resolve` reconstructs a
        bit-identical dataset from the shared pages in any process —
        the zero-copy work-item format of the process backend.
        """
        return DatasetHandle(
            counters=arena.publish(self.counters),
            power_w=arena.publish(self.power_w),
            voltage_v=arena.publish(self.voltage_v),
            frequency_mhz=arena.publish(self.frequency_mhz),
            threads=arena.publish(self.threads),
            workloads=arena.publish(np.array(self.workloads)),
            suites=arena.publish(np.array(self.suites)),
            phase_names=arena.publish(np.array(self.phase_names)),
            counter_names=self.counter_names,
        )

    # ------------------------------------------------------------------
    def save_npz(self, path: Union[str, Path]) -> None:
        """Persist to a compressed npz (the campaign cache format).

        The write is atomic (temp file + ``os.replace``): an
        interrupted save must never publish a truncated archive that
        later loads die on.
        """
        atomic_savez(
            Path(path),
            counters=self.counters,
            power_w=self.power_w,
            voltage_v=self.voltage_v,
            frequency_mhz=self.frequency_mhz,
            threads=self.threads,
            workloads=np.array(self.workloads),
            suites=np.array(self.suites),
            phase_names=np.array(self.phase_names),
            counter_names=np.array(self.counter_names),
        )

    @staticmethod
    def load_npz(path: Union[str, Path]) -> "PowerDataset":
        with np.load(Path(path), allow_pickle=False) as data:
            return PowerDataset(
                counters=data["counters"],
                power_w=data["power_w"],
                voltage_v=data["voltage_v"],
                frequency_mhz=data["frequency_mhz"],
                threads=data["threads"],
                workloads=tuple(str(w) for w in data["workloads"]),
                suites=tuple(str(s) for s in data["suites"]),
                phase_names=tuple(str(p) for p in data["phase_names"]),
                counter_names=tuple(str(c) for c in data["counter_names"]),
            )
