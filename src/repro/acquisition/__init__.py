"""Data acquisition & post-processing: campaigns, run merging, and the
regression dataset."""

from repro.acquisition.campaign import (
    Campaign,
    CampaignCell,
    CampaignPlan,
    CampaignReport,
    CampaignResult,
    ResilientCampaign,
    RetryPolicy,
    run_campaign,
    run_resilient_campaign,
)
from repro.acquisition.checkpoint import CampaignCheckpoint, cell_id
from repro.acquisition.dataset import ExperimentKey, PowerDataset
from repro.acquisition.postprocess import (
    MergedPhase,
    build_dataset,
    counter_coverage,
    merge_runs,
)

__all__ = [
    "Campaign",
    "CampaignPlan",
    "CampaignCell",
    "CampaignReport",
    "CampaignResult",
    "ResilientCampaign",
    "RetryPolicy",
    "run_campaign",
    "run_resilient_campaign",
    "CampaignCheckpoint",
    "cell_id",
    "PowerDataset",
    "ExperimentKey",
    "MergedPhase",
    "merge_runs",
    "counter_coverage",
    "build_dataset",
]
