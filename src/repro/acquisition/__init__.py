"""Data acquisition & post-processing: campaigns, run merging, and the
regression dataset."""

from repro.acquisition.campaign import Campaign, CampaignPlan, run_campaign
from repro.acquisition.dataset import ExperimentKey, PowerDataset
from repro.acquisition.postprocess import MergedPhase, build_dataset, merge_runs

__all__ = [
    "Campaign",
    "CampaignPlan",
    "run_campaign",
    "PowerDataset",
    "ExperimentKey",
    "MergedPhase",
    "merge_runs",
    "build_dataset",
]
