"""Measurement campaigns: the outer loop of data acquisition.

A campaign executes every (workload, frequency, thread count)
experiment the number of times the PMU scheduling demands (one run per
programmable counter group), traces each run with the Score-P plugins,
extracts phase profiles, and merges everything into a
:class:`~repro.acquisition.dataset.PowerDataset`.

This is the simulated equivalent of the multi-day measurement sessions
behind the paper's Section IV — and multi-day sessions on production
hardware are lossy, so two execution modes exist:

* :class:`Campaign` — the strict all-or-nothing loop: any failure
  aborts the whole campaign (the behaviour of the original tooling);
* :class:`ResilientCampaign` — the fault-tolerant loop: per-run
  bounded retry with backoff, quarantine of persistently failing
  cells, incremental checkpoint/resume through
  :class:`~repro.acquisition.checkpoint.CampaignCheckpoint`, and
  graceful degradation to a partial dataset with an explicit
  per-counter coverage map.  Every outcome is accounted for in a
  structured :class:`CampaignReport`.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.acquisition.checkpoint import (
    CampaignCheckpoint,
    ShardedManifest,
    cell_id,
)
from repro.acquisition.dataset import PowerDataset
from repro.audit.framework import AuditReport
from repro.acquisition.postprocess import (
    MergedPhase,
    build_dataset,
    counter_coverage,
    merge_runs,
)
from repro.faults.errors import AcquisitionError, RunFailure
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import validate_profiles, validate_trace
from repro.hardware.counters import COUNTER_NAMES
from repro.hardware.fastsim import fastsim_enabled
from repro.hardware.platform import Platform
from repro.hardware.pmu import EventSet, schedule_events
from repro.parallel import StageTimer, TimingReport, resolve_executor
from repro.tracing.phases import PhaseProfile, haecsim_profiles, postprocess_profiles
from repro.tracing.plugins import (
    ApapiPlugin,
    MultiplexedApapiPlugin,
    PowerPlugin,
    VoltagePlugin,
)
from repro.tracing.scorep import ScorePTracer
from repro.workloads.base import Workload

__all__ = [
    "CampaignPlan",
    "Campaign",
    "RetryPolicy",
    "CampaignCell",
    "CampaignReport",
    "CampaignResult",
    "ResilientCampaign",
    "run_campaign",
    "run_resilient_campaign",
]

ProgressFn = Callable[[str], None]


def _call_progress(
    progress: Optional[ProgressFn],
    message: str,
    errors: Optional[List[str]] = None,
) -> None:
    """Invoke a progress observer without letting it kill acquisition.

    A campaign observer is telemetry, not control flow: a buggy one
    must never abort a multi-day measurement session.  Its exception is
    recorded (``errors`` and a ``RuntimeWarning``) and acquisition
    continues.  ``BaseException`` — ``KeyboardInterrupt`` above all —
    still propagates: an operator interrupt delivered through an
    observer must stop the campaign (checkpoint/resume covers it).
    """
    if progress is None:
        return
    try:
        progress(message)
    except Exception as exc:
        note = f"progress hook raised {type(exc).__name__}: {exc}"
        if errors is not None:
            errors.append(note)
        warnings.warn(note, RuntimeWarning, stacklevel=3)


@dataclass(frozen=True)
class CampaignPlan:
    """What a campaign will measure."""

    workloads: Tuple[Workload, ...]
    frequencies_mhz: Tuple[int, ...]
    events: Tuple[str, ...] = COUNTER_NAMES
    sampling_interval_s: float = 0.1
    thread_counts_override: Optional[Tuple[int, ...]] = None
    """If set, used for every workload instead of its defaults."""
    multiplexing: str = "multi-run"
    """``multi-run`` (the paper's approach: one run per PMU counter
    group) or ``time-division`` (single run, counters rotated through
    the slots — cheaper but noisier)."""

    def experiments(self) -> List[Tuple[Workload, int, int]]:
        """All (workload, frequency, threads) combinations."""
        out = []
        for w in self.workloads:
            threads_list = self.thread_counts_override or w.default_thread_counts
            for f in self.frequencies_mhz:
                for t in threads_list:
                    out.append((w, f, t))
        return out

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.frequencies_mhz:
            raise ValueError("campaign needs at least one frequency")
        if self.sampling_interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if self.multiplexing not in ("multi-run", "time-division"):
            raise ValueError(
                f"multiplexing must be 'multi-run' or 'time-division', "
                f"got {self.multiplexing!r}"
            )


class Campaign:
    """Executes a :class:`CampaignPlan` on a platform (all-or-nothing).

    ``parallel`` / ``max_workers`` select the cell-execution backend
    (see :mod:`repro.parallel`); results are assembled in cell order,
    so every backend produces bit-identical datasets.
    """

    def __init__(
        self,
        platform: Platform,
        plan: CampaignPlan,
        *,
        parallel: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.platform = platform
        self.plan = plan
        self.executor = resolve_executor(parallel, max_workers)
        self.event_sets: List[EventSet] = schedule_events(
            plan.events, platform.cfg
        )
        #: Observer-hook exceptions survived (see :func:`_call_progress`).
        self._hook_errors: List[str] = []
        #: Tracers cached per event set: stateless across traces, so a
        #: campaign builds one per counter group instead of one per
        #: cell.  Never pickled — workers rebuild their own.
        self._tracer_cache: Dict[Optional[int], ScorePTracer] = {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_tracer_cache"] = {}
        return state

    def _cell_tracer(self, cell: "CampaignCell") -> ScorePTracer:
        """The tracer for a cell's counter group, cached per event set.

        Caching rides the fastsim switch: under ``REPRO_FASTSIM=0``
        every cell rebuilds its tracer and plugins, as the original
        per-cell acquisition loop did.
        """
        key = None if cell.event_set is None else cell.run_index
        use_cache = fastsim_enabled(None)
        if use_cache:
            tracer = self._tracer_cache.get(key)
            if tracer is not None:
                return tracer
        if cell.event_set is None:
            counter_plugin: Any = MultiplexedApapiPlugin(
                self.platform, self.plan.events
            )
        else:
            counter_plugin = ApapiPlugin(self.platform, cell.event_set)
        tracer = ScorePTracer(
            self.platform,
            [
                PowerPlugin(self.platform),
                VoltagePlugin(self.platform),
                counter_plugin,
            ],
            sampling_interval_s=self.plan.sampling_interval_s,
            fault_injector=getattr(self, "injector", None),
            # A cached tracer only ever serves the fast path (the cache
            # is bypassed under REPRO_FASTSIM=0), so pin the mode and
            # spare every trace an environment lookup.
            fast=True if use_cache else None,
        )
        if use_cache:
            self._tracer_cache[key] = tracer
        return tracer

    def _prime_fast_path(self, cells: List["CampaignCell"]) -> None:
        """Warm the batched kernel's caches for the whole campaign.

        Pure cache warm-ups — phase-state skeletons and pre-expanded
        RNG state words — so primed and unprimed acquisition produce
        byte-identical datasets.  Callers gate this on
        :func:`fastsim_enabled`: under ``REPRO_FASTSIM=0`` the scalar
        loop replays per-cell builds and per-stream constructions.
        """
        self.platform.prime_run_skeletons(self.plan.experiments())
        counter_plugin_name = (
            "MultiplexedApapiPlugin"
            if self.plan.multiplexing == "time-division"
            else "ApapiPlugin"
        )
        self.platform.prime_rng_words(
            (
                (cell.workload, cell.frequency_mhz, cell.threads, cell.run_index)
                for cell in cells
            ),
            ("PowerPlugin", "VoltagePlugin", counter_plugin_name),
        )

    @property
    def runs_per_experiment(self) -> int:
        """Run count imposed by the acquisition mode."""
        if self.plan.multiplexing == "time-division":
            return 1
        return len(self.event_sets)

    def cells(self) -> List["CampaignCell"]:
        """The campaign's unit-of-retry grid: one cell per run.

        Multi-run mode has one cell per (experiment, event set);
        time-division mode one cell per experiment (``event_set``
        ``None`` means "all plan events, multiplexed").
        """
        out: List[CampaignCell] = []
        for workload, frequency_mhz, threads in self.plan.experiments():
            if self.plan.multiplexing == "time-division":
                out.append(
                    CampaignCell(workload, frequency_mhz, threads, 0, None)
                )
                continue
            for run_index, event_set in enumerate(self.event_sets):
                out.append(
                    CampaignCell(
                        workload, frequency_mhz, threads, run_index, event_set
                    )
                )
        return out

    def execute_cell(
        self, cell: "CampaignCell", *, attempt: int = 0, phases=None
    ) -> List[PhaseProfile]:
        """Execute one cell: run, trace, extract phase profiles.

        roco2 traces go through the HAEC-SIM module, benchmark traces
        through the custom OTF2 post-processing tool (Section III-A).
        ``phases`` forwards a pre-derived phase list to
        :meth:`Platform.execute` (retry loops derive it once).
        """
        run = self.platform.execute(
            cell.workload,
            cell.frequency_mhz,
            cell.threads,
            run_index=cell.run_index,
            phases=phases,
        )
        trace = self._cell_tracer(cell).trace(run, attempt=attempt)
        if run.suite in ("roco2", "synthetic"):
            return haecsim_profiles(trace)
        return postprocess_profiles(trace)

    def collect_profiles(
        self, progress: Optional[ProgressFn] = None
    ) -> List[PhaseProfile]:
        """Execute all runs and extract phase profiles.

        Profiles are concatenated in cell order regardless of backend,
        so serial and parallel campaigns build identical datasets.
        """
        cells = self.cells()
        # One batched warm-up covers every cell's skeleton and RNG
        # streams up front (pure cache warm-ups — outputs unchanged).
        # Gated so REPRO_FASTSIM=0 replays the per-cell builds.
        if fastsim_enabled(None):
            self._prime_fast_path(cells)
        if self.executor.kind == "serial":
            profiles: List[PhaseProfile] = []
            last_announced = None
            for cell in cells:
                experiment = (
                    cell.workload.name, cell.frequency_mhz, cell.threads
                )
                if progress is not None and experiment != last_announced:
                    _call_progress(
                        progress,
                        f"{cell.workload.name} @ {cell.frequency_mhz} MHz, "
                        f"{cell.threads} threads",
                        self._hook_errors,
                    )
                    last_announced = experiment
                profiles.extend(self.execute_cell(cell))
            return profiles
        if progress is not None:
            # Announce in cell order up front; execution interleaves.
            last_announced = None
            for cell in cells:
                experiment = (
                    cell.workload.name, cell.frequency_mhz, cell.threads
                )
                if experiment != last_announced:
                    _call_progress(
                        progress,
                        f"{cell.workload.name} @ {cell.frequency_mhz} MHz, "
                        f"{cell.threads} threads",
                        self._hook_errors,
                    )
                    last_announced = experiment
        per_cell = self.executor.map(self.execute_cell, cells)
        profiles = []
        for cell_profiles in per_cell:
            profiles.extend(cell_profiles)
        return profiles

    def run(
        self,
        progress: Optional[ProgressFn] = None,
        *,
        require_complete: bool = True,
    ) -> PowerDataset:
        """Full campaign: execute, trace, profile, merge, assemble."""
        profiles = self.collect_profiles(progress)
        merged = merge_runs(profiles)
        return build_dataset(
            merged,
            require_complete=require_complete,
            counter_names=self.plan.events,
        )


# ---------------------------------------------------------------------------
# fault-tolerant execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One run of one experiment — the unit of retry and checkpointing."""

    workload: Workload
    frequency_mhz: int
    threads: int
    run_index: int
    event_set: Optional[EventSet]
    """``None`` in time-division mode (all events, one multiplexed run)."""

    @property
    def key(self) -> Tuple[str, int, int, int]:
        return (
            self.workload.name,
            self.frequency_mhz,
            self.threads,
            self.run_index,
        )

    @property
    def events(self) -> Tuple[str, ...]:
        return self.event_set.events if self.event_set is not None else ()

    def describe(self) -> str:
        return (
            f"{self.workload.name}@{self.frequency_mhz}MHz/"
            f"{self.threads}t#{self.run_index}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for failed runs."""

    max_attempts: int = 3
    """Total attempts per cell before quarantine (≥ 1)."""
    backoff_base_s: float = 0.0
    """Delay before the first retry; 0 disables sleeping entirely
    (the right setting for simulated campaigns and tests)."""
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(
            self.backoff_base_s * self.backoff_factor**attempt,
            self.backoff_max_s,
        )


@dataclass(frozen=True)
class CampaignReport:
    """Structured account of what a resilient campaign went through."""

    total_cells: int
    completed_cells: int
    resumed_cells: int
    """Cells restored from the checkpoint instead of re-executed."""
    retries: int
    """Extra attempts beyond the first, summed over all cells."""
    total_backoff_s: float
    faults_observed: Mapping[str, int]
    """Fault kind → occurrence count, over all attempts."""
    quarantined: Tuple[Tuple[str, str], ...]
    """(cell description, last error) for cells that exhausted retries."""
    merge_issues: Tuple[str, ...]
    """Recorded post-processing inconsistencies (phase-set mismatches,
    counter disagreements)."""
    counter_coverage: Mapping[str, float]
    """Fraction of merged phases carrying each requested counter."""
    dropped_counters: Tuple[str, ...]
    """Counters excluded from the dataset for insufficient coverage."""
    degraded_phases: int
    """Merged phases dropped for missing one of the kept counters."""
    hook_errors: Tuple[str, ...] = ()
    """Exceptions raised by progress/observer hooks and survived.  A
    bad observer never aborts acquisition (it is telemetry, not control
    flow) but the campaign accounts for the breakage."""
    scheduling: Optional[object] = None
    """:class:`repro.sched.ProgressReport` when the campaign ran under
    the cluster scheduler: per-node throughput, reassignment counts,
    quarantined placements.  ``None`` for local campaigns.  Scheduling
    is capacity accounting only — it never influences the dataset,
    which stays a pure function of ``(root_seed, cell)``."""
    timing: Optional[TimingReport] = None
    """Per-stage wall time (monotonic clock).  Excluded from bit-identity
    comparisons — wall time legitimately differs between backends."""
    audit: Optional[AuditReport] = None
    """Statistical-rigor verdict over the acquisition provenance
    (:mod:`repro.audit` rule AU010): faults, quarantines and coverage
    degradation roll up into ``audit.verdict``."""

    @property
    def clean(self) -> bool:
        """True when the campaign saw no faults and degraded nothing."""
        return (
            self.retries == 0
            and not self.faults_observed
            and not self.quarantined
            and not self.merge_issues
            and not self.dropped_counters
            and self.degraded_phases == 0
        )

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"campaign cells: {self.completed_cells}/{self.total_cells} "
            f"completed ({self.resumed_cells} resumed from checkpoint)",
            f"retries: {self.retries} "
            f"(total backoff {self.total_backoff_s:.1f} s)",
        ]
        if self.faults_observed:
            counts = ", ".join(
                f"{kind}×{n}" for kind, n in sorted(self.faults_observed.items())
            )
            lines.append(f"faults observed: {counts}")
        if self.quarantined:
            lines.append(f"quarantined cells ({len(self.quarantined)}):")
            lines.extend(f"  {desc}: {why}" for desc, why in self.quarantined)
        if self.merge_issues:
            lines.append(f"merge issues ({len(self.merge_issues)}):")
            lines.extend(f"  {issue}" for issue in self.merge_issues)
        if self.dropped_counters:
            lines.append(
                f"degraded: dropped counters {list(self.dropped_counters)}"
            )
        if self.degraded_phases:
            lines.append(
                f"degraded: {self.degraded_phases} phases dropped for "
                f"incomplete counter coverage"
            )
        if self.hook_errors:
            lines.append(f"hook errors survived ({len(self.hook_errors)}):")
            lines.extend(f"  {err}" for err in self.hook_errors)
        if self.clean:
            lines.append("no faults observed — clean campaign")
        if self.scheduling is not None:
            lines.extend(self.scheduling.summary())
        if self.audit is not None and not self.audit.clean:
            lines.append(f"audit verdict: {self.audit.verdict}")
        if self.timing is not None and self.timing.stages:
            lines.append("timing:")
            lines.extend(f"  {s.describe()}" for s in self.timing.stages)
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a resilient campaign: data plus accountability."""

    dataset: Optional[PowerDataset]
    """``None`` when nothing usable survived (all cells quarantined)."""
    report: CampaignReport


@dataclass
class _CellOutcome:
    profiles: Optional[List[PhaseProfile]]
    attempts: int
    faults: List[str] = field(default_factory=list)
    last_error: str = ""


class ResilientCampaign(Campaign):
    """Fault-tolerant campaign execution.

    Wraps the strict :class:`Campaign` grid with, per cell: fault
    injection (optional), bounded retry with backoff, quarantine after
    exhausted retries, and incremental checkpointing.  The final merge
    degrades gracefully — holes become coverage-map entries and report
    lines instead of exceptions.

    Parameters
    ----------
    faults:
        Fault plan injected during acquisition (``None`` → no injected
        faults; the watchdog still validates every trace).
    retry:
        Per-cell retry budget and backoff.
    checkpoint_dir:
        Directory for incremental persistence; ``None`` disables
        checkpointing.  A directory written by a differently-configured
        campaign is detected via fingerprint and reset.
    min_counter_coverage:
        Counters covered by fewer than this fraction of merged phases
        are dropped from the dataset (columns), then phases missing any
        surviving counter are dropped (rows).
    validate:
        Run the acquisition watchdog on every trace/profile set.
    sleep_fn:
        Injectable sleep (tests pass a recorder; default
        :func:`time.sleep`).  Must be picklable for
        ``parallel="process"`` (closures are not — pin those tests to
        serial).
    parallel, max_workers:
        Cell-execution backend (see :mod:`repro.parallel`).  Outcomes
        are accounted in cell order, so every backend is bit-identical
        to serial — including under injected faults, whose decisions
        are keyed per (cell, attempt).
    """

    def __init__(
        self,
        platform: Platform,
        plan: CampaignPlan,
        *,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        min_counter_coverage: float = 0.75,
        validate: bool = True,
        sleep_fn: Callable[[float], None] = time.sleep,
        parallel: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            platform, plan, parallel=parallel, max_workers=max_workers
        )
        if not 0.0 <= min_counter_coverage <= 1.0:
            raise ValueError("min_counter_coverage must be in [0, 1]")
        self.faults = faults or FaultPlan()
        self.injector = FaultInjector(self.faults, platform.seed)
        self.retry = retry or RetryPolicy()
        self.min_counter_coverage = min_counter_coverage
        self.validate = validate
        self.sleep_fn = sleep_fn
        self.checkpoint: Optional[
            Union[CampaignCheckpoint, ShardedManifest]
        ] = None
        if checkpoint_dir is not None:
            self.checkpoint = CampaignCheckpoint(
                checkpoint_dir, self.fingerprint()
            )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Hash of everything that determines the stored cell data."""
        parts = (
            "seed", self.platform.seed,
            "cfg", self.platform.cfg.name,
            "jitter", repr(self.platform.run_jitter_sigma),
            repr(self.platform.power_jitter_sigma),
            repr(self.platform.power_offset_sigma_w),
            "workloads", ",".join(w.name for w in self.plan.workloads),
            "frequencies", repr(self.plan.frequencies_mhz),
            "threads", repr(self.plan.thread_counts_override),
            "events", ",".join(self.plan.events),
            "interval", repr(self.plan.sampling_interval_s),
            "mux", self.plan.multiplexing,
            "faults", repr(self.faults),
            "attempts", self.retry.max_attempts,
            "validate", self.validate,
        )
        h = hashlib.blake2b(digest_size=12)
        for part in parts:
            h.update(str(part).encode())
            h.update(b"\x1f")
        return h.hexdigest()

    # ------------------------------------------------------------------
    def execute_cell(
        self, cell: CampaignCell, *, attempt: int = 0, phases=None
    ) -> List[PhaseProfile]:
        """One attempt at one cell, with fault injection + validation."""
        self.injector.check_run(*cell.key, attempt=attempt)
        run = self.platform.execute(
            cell.workload,
            cell.frequency_mhz,
            cell.threads,
            run_index=cell.run_index,
            phases=phases,
        )
        trace = self._cell_tracer(cell).trace(run, attempt=attempt)
        if self.validate:
            validate_trace(trace)
        if run.suite in ("roco2", "synthetic"):
            profiles = haecsim_profiles(trace)
        else:
            profiles = postprocess_profiles(trace)
        if self.validate:
            validate_profiles(profiles, run)
        return profiles

    def run_cell(self, cell: CampaignCell) -> _CellOutcome:
        """Execute one cell under the retry policy.

        Fault decisions are keyed on (cell, attempt) — deterministic,
        independent of wall-clock and of other cells, which is what
        makes interrupted campaigns resumable bit-for-bit.
        """
        outcome = _CellOutcome(profiles=None, attempts=0)
        # The phase list is a pure function of (workload, threads):
        # derive it once, not once per attempt.
        phases = tuple(cell.workload.phases(cell.threads))
        for attempt in range(self.retry.max_attempts):
            outcome.attempts = attempt + 1
            try:
                outcome.profiles = self.execute_cell(
                    cell, attempt=attempt, phases=phases
                )
                return outcome
            except (RunFailure, AcquisitionError) as exc:
                outcome.faults.append(exc.kind)
                outcome.last_error = str(exc)
                if attempt + 1 < self.retry.max_attempts:
                    delay_s = self.retry.delay_s(attempt)
                    if delay_s > 0:
                        self.sleep_fn(delay_s)
        return outcome

    # ------------------------------------------------------------------
    def _run_cells_serial(
        self, cells: List[CampaignCell], progress: Optional[ProgressFn]
    ) -> Tuple[List[Optional[_CellOutcome]], Dict[int, List[PhaseProfile]]]:
        """The reference cell loop: strictly interleaved progress,
        execution and checkpointing (an interrupt mid-loop leaves every
        finished cell stored — the resume tests rely on this)."""
        outcomes: List[Optional[_CellOutcome]] = []
        resumed: Dict[int, List[PhaseProfile]] = {}
        for i, cell in enumerate(cells):
            cid = cell_id(*cell.key, self.plan.events)
            _call_progress(
                progress, f"cell {cell.describe()}", self._hook_errors
            )
            if self.checkpoint is not None:
                stored = self.checkpoint.load(cid)
                if stored is not None:
                    outcomes.append(None)
                    resumed[i] = stored
                    continue
            outcome = self.run_cell(cell)
            if self.checkpoint is not None and outcome.profiles is not None:
                self.checkpoint.store(cid, outcome.profiles)
            outcomes.append(outcome)
        return outcomes, resumed

    def _run_cells_parallel(
        self, cells: List[CampaignCell], progress: Optional[ProgressFn]
    ) -> Tuple[List[Optional[_CellOutcome]], Dict[int, List[PhaseProfile]]]:
        """Fan the non-resumed cells out over the executor.

        Checkpoint loads and progress stay in the parent (in cell
        order); checkpoint stores run in the parent via the
        ``on_result`` hook as cells complete, so an interrupt still
        loses at most the in-flight cells.
        """
        outcomes: List[Optional[_CellOutcome]] = [None] * len(cells)
        pending: List[int] = []
        cids = [cell_id(*cell.key, self.plan.events) for cell in cells]
        resumed: Dict[int, List[PhaseProfile]] = {}
        for i, cell in enumerate(cells):
            _call_progress(
                progress, f"cell {cell.describe()}", self._hook_errors
            )
            if self.checkpoint is not None:
                stored = self.checkpoint.load(cids[i])
                if stored is not None:
                    resumed[i] = stored
                    continue
            pending.append(i)

        def _store(pending_index: int, outcome: _CellOutcome) -> None:
            if self.checkpoint is not None and outcome.profiles is not None:
                self.checkpoint.store(
                    cids[pending[pending_index]], outcome.profiles
                )

        results = self.executor.map(
            self.run_cell, [cells[i] for i in pending], on_result=_store
        )
        for i, outcome in zip(pending, results):
            outcomes[i] = outcome
        return outcomes, resumed

    def _acquire(
        self, cells: List[CampaignCell], progress: Optional[ProgressFn]
    ) -> Tuple[List[Optional[_CellOutcome]], Dict[int, List[PhaseProfile]]]:
        """Acquisition stage: one outcome per cell (``None`` = resumed)
        plus the resumed profiles by cell index.  The scheduler
        subclass overrides this with cluster placement; accounting and
        merging stay in :meth:`run`."""
        if self.executor.kind == "serial":
            return self._run_cells_serial(cells, progress)
        return self._run_cells_parallel(cells, progress)

    def _report_extras(self) -> Dict[str, object]:
        """Extra :class:`CampaignReport` fields from subclasses (the
        scheduler attaches its ``scheduling`` progress report here)."""
        return {}

    def run(self, progress: Optional[ProgressFn] = None) -> CampaignResult:
        """Fault-tolerant campaign: retry, quarantine, checkpoint,
        merge with graceful degradation, and report.

        The accounting below walks outcomes in cell order whichever
        backend executed them, so the dataset and every report field
        except ``timing`` are bit-identical across backends.
        """
        profiles: List[PhaseProfile] = []
        faults_observed: Dict[str, int] = {}
        quarantined: List[Tuple[str, str]] = []
        retries = 0
        completed = 0
        backoff_s = 0.0
        self._hook_errors = []
        cells = self.cells()
        # The resilient path bypasses collect_profiles, so it warms the
        # batched kernel's caches itself (same gate, same warm-ups).
        if fastsim_enabled(None):
            self._prime_fast_path(cells)
        timer = StageTimer()
        with timer.stage(
            "acquisition", n_items=len(cells), executor=self.executor
        ):
            outcomes, resumed_profiles = self._acquire(cells, progress)
        resumed = len(resumed_profiles)
        completed += resumed
        for i, (cell, outcome) in enumerate(zip(cells, outcomes)):
            if outcome is None:  # resumed from checkpoint
                profiles.extend(resumed_profiles[i])
                continue
            retries += outcome.attempts - 1
            for attempt in range(outcome.attempts - 1):
                backoff_s += self.retry.delay_s(attempt)
            for kind in outcome.faults:
                faults_observed[kind] = faults_observed.get(kind, 0) + 1
            if outcome.profiles is None:
                quarantined.append((cell.describe(), outcome.last_error))
                continue
            completed += 1
            profiles.extend(outcome.profiles)

        merge_issues: List[str] = []
        with timer.stage("merge", n_items=len(profiles)):
            merged: List[MergedPhase] = merge_runs(
                profiles,
                on_phase_mismatch="record",
                on_counter_disagreement="record",
                issues=merge_issues,
            )
        coverage = counter_coverage(merged, self.plan.events)
        kept = tuple(
            c
            for c in self.plan.events
            if coverage[c] >= self.min_counter_coverage
        )
        dropped_counters = tuple(c for c in self.plan.events if c not in kept)
        dataset: Optional[PowerDataset] = None
        degraded_phases = 0
        if merged and kept:
            rows = [
                m
                for m in merged
                if all(c in m.counter_rates_per_s for c in kept)
            ]
            degraded_phases = len(merged) - len(rows)
            if rows:
                dataset = build_dataset(
                    rows, require_complete=True, counter_names=kept
                )
        report = CampaignReport(
            total_cells=len(cells),
            completed_cells=completed,
            resumed_cells=resumed,
            retries=retries,
            total_backoff_s=backoff_s,
            faults_observed=faults_observed,
            quarantined=tuple(quarantined),
            merge_issues=tuple(merge_issues),
            counter_coverage=coverage,
            dropped_counters=dropped_counters,
            degraded_phases=degraded_phases,
            hook_errors=tuple(self._hook_errors),
            timing=timer.report(),
            **self._report_extras(),
        )
        from repro.audit.engine import audit_campaign

        report = replace(report, audit=audit_campaign(report))
        return CampaignResult(dataset=dataset, report=report)


# ---------------------------------------------------------------------------
# convenience wrappers
# ---------------------------------------------------------------------------


def _make_plan(
    workloads: Sequence[Workload],
    frequencies_mhz: Sequence[int],
    *,
    events: Optional[Sequence[str]],
    sampling_interval_s: float,
    thread_counts: Optional[Sequence[int]],
    multiplexing: str,
) -> CampaignPlan:
    return CampaignPlan(
        workloads=tuple(workloads),
        frequencies_mhz=tuple(int(f) for f in frequencies_mhz),
        events=tuple(events) if events is not None else COUNTER_NAMES,
        sampling_interval_s=sampling_interval_s,
        thread_counts_override=tuple(thread_counts) if thread_counts else None,
        multiplexing=multiplexing,
    )


def run_campaign(
    platform: Platform,
    workloads: Sequence[Workload],
    frequencies_mhz: Sequence[int],
    *,
    events: Optional[Sequence[str]] = None,
    sampling_interval_s: float = 0.1,
    thread_counts: Optional[Sequence[int]] = None,
    multiplexing: str = "multi-run",
    require_complete: bool = True,
    progress: Optional[ProgressFn] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> PowerDataset:
    """One-call convenience around :class:`Campaign`.

    Exposes the full plan surface — ``events`` (counter subset),
    ``multiplexing`` mode and ``require_complete`` are forwarded, not
    silently fixed to defaults.
    """
    plan = _make_plan(
        workloads,
        frequencies_mhz,
        events=events,
        sampling_interval_s=sampling_interval_s,
        thread_counts=thread_counts,
        multiplexing=multiplexing,
    )
    campaign = Campaign(
        platform, plan, parallel=parallel, max_workers=max_workers
    )
    return campaign.run(progress, require_complete=require_complete)


def run_resilient_campaign(
    platform: Platform,
    workloads: Sequence[Workload],
    frequencies_mhz: Sequence[int],
    *,
    events: Optional[Sequence[str]] = None,
    sampling_interval_s: float = 0.1,
    thread_counts: Optional[Sequence[int]] = None,
    multiplexing: str = "multi-run",
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    min_counter_coverage: float = 0.75,
    progress: Optional[ProgressFn] = None,
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> CampaignResult:
    """One-call convenience around :class:`ResilientCampaign`."""
    plan = _make_plan(
        workloads,
        frequencies_mhz,
        events=events,
        sampling_interval_s=sampling_interval_s,
        thread_counts=thread_counts,
        multiplexing=multiplexing,
    )
    campaign = ResilientCampaign(
        platform,
        plan,
        faults=faults,
        retry=retry,
        checkpoint_dir=checkpoint_dir,
        min_counter_coverage=min_counter_coverage,
        parallel=parallel,
        max_workers=max_workers,
    )
    return campaign.run(progress)
