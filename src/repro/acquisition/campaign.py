"""Measurement campaigns: the outer loop of data acquisition.

A campaign executes every (workload, frequency, thread count)
experiment the number of times the PMU scheduling demands (one run per
programmable counter group), traces each run with the Score-P plugins,
extracts phase profiles, and merges everything into a
:class:`~repro.acquisition.dataset.PowerDataset`.

This is the simulated equivalent of the multi-day measurement sessions
behind the paper's Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.acquisition.postprocess import build_dataset, merge_runs
from repro.hardware.counters import COUNTER_NAMES
from repro.hardware.platform import Platform
from repro.hardware.pmu import EventSet, schedule_events
from repro.tracing.phases import PhaseProfile, haecsim_profiles, postprocess_profiles
from repro.tracing.scorep import trace_multiplexed_run, trace_run
from repro.workloads.base import Workload

__all__ = ["CampaignPlan", "Campaign", "run_campaign"]

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class CampaignPlan:
    """What a campaign will measure."""

    workloads: Tuple[Workload, ...]
    frequencies_mhz: Tuple[int, ...]
    events: Tuple[str, ...] = COUNTER_NAMES
    sampling_interval_s: float = 0.1
    thread_counts_override: Optional[Tuple[int, ...]] = None
    """If set, used for every workload instead of its defaults."""
    multiplexing: str = "multi-run"
    """``multi-run`` (the paper's approach: one run per PMU counter
    group) or ``time-division`` (single run, counters rotated through
    the slots — cheaper but noisier)."""

    def experiments(self) -> List[Tuple[Workload, int, int]]:
        """All (workload, frequency, threads) combinations."""
        out = []
        for w in self.workloads:
            threads_list = self.thread_counts_override or w.default_thread_counts
            for f in self.frequencies_mhz:
                for t in threads_list:
                    out.append((w, f, t))
        return out

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.frequencies_mhz:
            raise ValueError("campaign needs at least one frequency")
        if self.sampling_interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if self.multiplexing not in ("multi-run", "time-division"):
            raise ValueError(
                f"multiplexing must be 'multi-run' or 'time-division', "
                f"got {self.multiplexing!r}"
            )


class Campaign:
    """Executes a :class:`CampaignPlan` on a platform."""

    def __init__(self, platform: Platform, plan: CampaignPlan) -> None:
        self.platform = platform
        self.plan = plan
        self.event_sets: List[EventSet] = schedule_events(
            plan.events, platform.cfg
        )

    @property
    def runs_per_experiment(self) -> int:
        """Run count imposed by the acquisition mode."""
        if self.plan.multiplexing == "time-division":
            return 1
        return len(self.event_sets)

    def collect_profiles(
        self, progress: Optional[ProgressFn] = None
    ) -> List[PhaseProfile]:
        """Execute all runs and extract phase profiles."""
        profiles: List[PhaseProfile] = []
        for workload, freq_mhz, threads in self.plan.experiments():
            if progress is not None:
                progress(f"{workload.name} @ {freq_mhz} MHz, {threads} threads")
            if self.plan.multiplexing == "time-division":
                run = self.platform.execute(workload, freq_mhz, threads)
                trace = trace_multiplexed_run(
                    self.platform,
                    run,
                    self.plan.events,
                    sampling_interval_s=self.plan.sampling_interval_s,
                )
                if run.suite in ("roco2", "synthetic"):
                    profiles.extend(haecsim_profiles(trace))
                else:
                    profiles.extend(postprocess_profiles(trace))
                continue
            for run_index, event_set in enumerate(self.event_sets):
                run = self.platform.execute(
                    workload, freq_mhz, threads, run_index=run_index
                )
                trace = trace_run(
                    self.platform,
                    run,
                    event_set,
                    sampling_interval_s=self.plan.sampling_interval_s,
                )
                # roco2 traces go through the HAEC-SIM module, benchmark
                # traces through the custom OTF2 post-processing tool
                # (Section III-A).
                if run.suite in ("roco2", "synthetic"):
                    profiles.extend(haecsim_profiles(trace))
                else:
                    profiles.extend(postprocess_profiles(trace))
        return profiles

    def run(
        self,
        progress: Optional[ProgressFn] = None,
        *,
        require_complete: bool = True,
    ) -> PowerDataset:
        """Full campaign: execute, trace, profile, merge, assemble."""
        profiles = self.collect_profiles(progress)
        merged = merge_runs(profiles)
        return build_dataset(merged, require_complete=require_complete)


def run_campaign(
    platform: Platform,
    workloads: Sequence[Workload],
    frequencies_mhz: Sequence[int],
    *,
    sampling_interval_s: float = 0.1,
    thread_counts: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> PowerDataset:
    """One-call convenience around :class:`Campaign`."""
    plan = CampaignPlan(
        workloads=tuple(workloads),
        frequencies_mhz=tuple(int(f) for f in frequencies_mhz),
        sampling_interval_s=sampling_interval_s,
        thread_counts_override=tuple(thread_counts) if thread_counts else None,
    )
    return Campaign(platform, plan).run(progress)
