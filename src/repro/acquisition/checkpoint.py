"""Incremental campaign checkpoints: crash-safe persistence of runs.

A multi-day campaign must never lose finished work to a crash, an OOM
kill, or a cluster drain.  The resilient campaign loop therefore
persists the phase profiles of every completed cell (one run of one
experiment) the moment it finishes, and on restart loads them back
instead of re-executing — checkpoint/resume at run granularity.

Layout of a checkpoint directory::

    <dir>/manifest.json        # {"format": 1, "fingerprint": "...",
                               #  "events": [...]}
    <dir>/cell_<id>.npz        # one archive per completed cell

The manifest's ``events`` list records recovery actions (corrupt cells
discarded, files that vanished under a concurrent cleanup) so a
multi-process campaign leaves an audit trail instead of silently
swallowing races.

The fingerprint hashes everything that determines a cell's output
(platform seed and noise parameters, the campaign plan, the fault plan,
the retry budget), so a checkpoint from a different configuration can
never leak into a resumed campaign: on mismatch the directory is reset
and acquisition starts over.  All writes go through
:mod:`repro.io.atomic`; a process killed mid-write leaves either the
old complete cell file or none, and corrupt cells found during resume
are discarded and re-executed rather than trusted (the same recovery
discipline as the experiment data cache).

Cell archives store the profile scalars as parallel arrays plus an
``(n_profiles, n_counters)`` rate matrix with NaN marking counters a
profile does not carry — float64 end to end, so a resumed campaign is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.io.atomic import atomic_savez, atomic_write_json
from repro.tracing.phases import PhaseProfile

__all__ = [
    "CHECKPOINT_FORMAT",
    "SHARD_FORMAT",
    "CampaignCheckpoint",
    "ShardedArchiveStore",
    "ShardedManifest",
    "cell_id",
    "shard_key",
]

#: Bump when the cell archive layout changes; old checkpoints are
#: discarded, never misread.
CHECKPOINT_FORMAT = 1

#: Bump when the shard archive layout changes; old shard stores are
#: discarded, never misread.
SHARD_FORMAT = 1

#: Errors that mean "this on-disk artifact is corrupt, not a bug".
_CORRUPT_ERRORS = (
    zipfile.BadZipFile,
    KeyError,
    OSError,
    EOFError,
    ValueError,
)


def cell_id(
    workload: str,
    frequency_mhz: int,
    threads: int,
    run_index: int,
    events: Iterable[str],
) -> str:
    """Stable identifier of one campaign cell (checkpoint file key)."""
    raw = f"{workload}|{frequency_mhz}|{threads}|{run_index}|{','.join(events)}"
    return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


class CampaignCheckpoint:
    """One checkpoint directory bound to one campaign fingerprint."""

    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self._events: List[Dict[str, str]] = []
        self._manifest_ready = False
        self._initialise()

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def _initialise(self) -> None:
        """Adopt a matching checkpoint or reset a stale/corrupt one."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = None
        path = self._manifest_path()
        if path.is_file():
            try:
                manifest = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                manifest = None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != CHECKPOINT_FORMAT
            or manifest.get("fingerprint") != self.fingerprint
        ):
            # Order matters: reset first, write the new manifest after.
            # A crash between the two leaves an invalid manifest, so the
            # next start resets again instead of adopting stale cells.
            # Events logged during the reset are buffered and land in
            # the first manifest write below.
            self.reset()
            self._write_manifest()
        else:
            prior = manifest.get("events", [])
            if isinstance(prior, list):
                self._events = [e for e in prior if isinstance(e, dict)]
            self._manifest_ready = True

    def _write_manifest(self) -> None:
        atomic_write_json(
            self._manifest_path(),
            {
                "format": CHECKPOINT_FORMAT,
                "fingerprint": self.fingerprint,
                "events": self._events,
            },
        )
        self._manifest_ready = True

    def _log_event(self, kind: str, detail: str) -> None:
        """Record a recovery action in the manifest's audit trail."""
        self._events.append({"kind": kind, "detail": detail})
        if self._manifest_ready:
            self._write_manifest()

    def events(self) -> List[Dict[str, str]]:
        """The manifest's recovery audit trail (copy)."""
        return list(self._events)

    def reset(self) -> None:
        """Drop every stored cell (stale fingerprint / fresh start)."""
        for cell_path in self.directory.glob("cell_*.npz"):
            try:
                cell_path.unlink()
            except FileNotFoundError:
                # Already gone: a concurrent cleanup (parallel campaign
                # sharing the directory) unlinked it between the glob
                # and here.  Benign, but worth an audit line; any other
                # OSError (permissions, I/O) propagates.
                self._log_event(
                    "concurrent-cleanup",
                    f"{cell_path.name} vanished during reset",
                )

    # ------------------------------------------------------------------
    def cell_path(self, cid: str) -> Path:
        return self.directory / f"cell_{cid}.npz"

    def has(self, cid: str) -> bool:
        return self.cell_path(cid).is_file()

    def completed_cells(self) -> List[str]:
        """Ids of all cells currently stored."""
        return sorted(
            p.stem[len("cell_"):] for p in self.directory.glob("cell_*.npz")
        )

    # ------------------------------------------------------------------
    def store(self, cid: str, profiles: Sequence[PhaseProfile]) -> None:
        """Atomically persist one completed cell's profiles."""
        atomic_savez(
            self.cell_path(cid),
            format=np.array(CHECKPOINT_FORMAT),
            **_pack_profiles(profiles),
        )

    def load(self, cid: str) -> Optional[List[PhaseProfile]]:
        """Profiles of one stored cell, or ``None`` if absent/corrupt.

        A corrupt archive (truncated write from a previous non-atomic
        tool, bit rot, wrong format) is deleted so the campaign re-runs
        the cell instead of tripping over it again — recovery, not
        trust.
        """
        path = self.cell_path(cid)
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["format"]) != CHECKPOINT_FORMAT:
                    raise ValueError("unknown checkpoint cell format")
                names = [str(c) for c in data["counter_names"]]
                rates = data["counter_rates_per_s"]
                return [
                    _unpack_profile(data, names, rates, i)
                    for i in range(rates.shape[0])
                ]
        except _CORRUPT_ERRORS as exc:
            try:
                path.unlink()
                self._log_event(
                    "corrupt-cell-discarded",
                    f"{path.name}: {type(exc).__name__}: {exc}",
                )
            except FileNotFoundError:
                # A concurrent cleanup unlinked it first; other OSErrors
                # (permissions, I/O) propagate rather than being eaten.
                self._log_event(
                    "concurrent-cleanup",
                    f"{path.name} vanished during corrupt-cell discard",
                )
            return None


# ---------------------------------------------------------------------------
# sharded manifests
# ---------------------------------------------------------------------------


def _pack_profiles(profiles: Sequence[PhaseProfile]) -> Dict[str, np.ndarray]:
    """Profile scalars as parallel arrays plus the NaN-marked rate
    matrix — the archive layout shared by cell and shard stores."""
    names = sorted({c for p in profiles for c in p.counter_rates_per_s})
    rates = np.full((len(profiles), len(names)), np.nan)
    for i, p in enumerate(profiles):
        for j, name in enumerate(names):
            if name in p.counter_rates_per_s:
                rates[i, j] = p.counter_rates_per_s[name]
    return {
        "workload": np.array([p.workload for p in profiles]),
        "suite": np.array([p.suite for p in profiles]),
        "frequency_mhz": np.array(
            [p.frequency_mhz for p in profiles], dtype=np.int64
        ),
        "threads": np.array([p.threads for p in profiles], dtype=np.int64),
        "run_index": np.array([p.run_index for p in profiles], dtype=np.int64),
        "phase_name": np.array([p.phase_name for p in profiles]),
        "start_s": np.array([p.start_s for p in profiles]),
        "end_s": np.array([p.end_s for p in profiles]),
        "active_threads": np.array(
            [p.active_threads for p in profiles], dtype=np.int64
        ),
        "power_w": np.array([p.power_w for p in profiles]),
        "voltage_v": np.array([p.voltage_v for p in profiles]),
        "counter_names": np.array(names),
        "counter_rates_per_s": rates,
    }


def _unpack_profile(data, names: List[str], rates: np.ndarray, i: int) -> PhaseProfile:
    """One profile row out of a packed archive."""
    row = {
        name: float(rates[i, j])
        for j, name in enumerate(names)
        if not np.isnan(rates[i, j])
    }
    return PhaseProfile(
        workload=str(data["workload"][i]),
        suite=str(data["suite"][i]),
        frequency_mhz=int(data["frequency_mhz"][i]),
        threads=int(data["threads"][i]),
        run_index=int(data["run_index"][i]),
        phase_name=str(data["phase_name"][i]),
        start_s=float(data["start_s"][i]),
        end_s=float(data["end_s"][i]),
        active_threads=int(data["active_threads"][i]),
        power_w=float(data["power_w"][i]),
        voltage_v=float(data["voltage_v"][i]),
        counter_rates_per_s=row,
    )


def shard_key(key: str) -> int:
    """Stable integer hash of an arbitrary string key.

    Used for shard placement of keys that are not already hex digests
    (e.g. fleet node ids); the same key lands in the same shard on
    every run and every host.
    """
    return int(
        hashlib.blake2b(key.encode(), digest_size=8).hexdigest(), 16
    )


class ShardedArchiveStore:
    """Generic sharded, atomic, corruption-tolerant key → value store.

    The machinery that made :class:`ShardedManifest` safe for cluster
    campaigns — lazy per-shard reads, atomic shard rewrites, corrupt
    shards discarded with an audit trail, fingerprint-guarded adoption
    — is value-agnostic; subclasses provide only the archive layout via
    :meth:`_pack_shard` / :meth:`_unpack_shard`.  The serving layer's
    per-node estimator state store reuses the exact same discipline:

    * keys are hashed into ``n_shards`` archive files, so a store of
      millions of entries is N files, not millions of inodes;
    * each shard write goes through :func:`repro.io.atomic.atomic_savez`,
      so writers of *different* shards never corrupt each other and a
      kill mid-write leaves the old complete shard;
    * reads are lazy, one shard on first touch — restoring k entries
      reads at most ``min(k, N)`` shards (``shard_reads`` counts actual
      file reads; the resume tests assert on it);
    * a corrupt shard is discarded and logged, losing only its own
      entries — every other shard is untouched.

    One shard file is the unit of both atomicity and loss.
    """

    META = "shards.json"
    #: Archive-format stamp; subclasses bump their own independently.
    FORMAT: int = 1

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        *,
        n_shards: int = 8,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.n_shards = int(n_shards)
        self._events: List[Dict[str, str]] = []
        self._meta_ready = False
        #: shard index → {key → value}, for shards read or written.
        self._shards: Dict[int, Dict[str, object]] = {}
        self.shard_reads = 0
        self.shard_writes = 0
        self._initialise()

    # -- subclass hooks -------------------------------------------------
    def _pack_shard(self, cells: Dict[str, object]) -> Dict[str, np.ndarray]:
        """One shard's entries as ``npz``-ready arrays."""
        raise NotImplementedError  # pragma: no cover

    def _unpack_shard(self, data) -> Dict[str, object]:
        """Entries out of one loaded ``npz`` archive.  Malformed
        content must raise one of the corrupt-archive errors so the
        shard is discarded, never half-trusted."""
        raise NotImplementedError  # pragma: no cover

    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / self.META

    def _initialise(self) -> None:
        """Adopt a matching shard store or reset a stale/corrupt one."""
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = None
        path = self._meta_path()
        if path.is_file():
            try:
                meta = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                meta = None
        if (
            not isinstance(meta, dict)
            or meta.get("format") != self.FORMAT
            or meta.get("fingerprint") != self.fingerprint
            or meta.get("n_shards") != self.n_shards
        ):
            # Reset first, write the new meta after — a crash between
            # the two resets again rather than adopting stale shards.
            self.reset()
            self._write_meta()
        else:
            prior = meta.get("events", [])
            if isinstance(prior, list):
                self._events = [e for e in prior if isinstance(e, dict)]
            self._meta_ready = True

    def _write_meta(self) -> None:
        atomic_write_json(
            self._meta_path(),
            {
                "format": self.FORMAT,
                "fingerprint": self.fingerprint,
                "n_shards": self.n_shards,
                "events": self._events,
            },
        )
        self._meta_ready = True

    def _log_event(self, kind: str, detail: str) -> None:
        """Record a recovery action in the meta file's audit trail."""
        self._events.append({"kind": kind, "detail": detail})
        if self._meta_ready:
            self._write_meta()

    def events(self) -> List[Dict[str, str]]:
        """The shard store's recovery audit trail (copy)."""
        return list(self._events)

    def reset(self) -> None:
        """Drop every shard (stale fingerprint / fresh start)."""
        self._shards = {}
        for shard_path in self.directory.glob("shard_*.npz"):
            try:
                shard_path.unlink()
            except FileNotFoundError:
                self._log_event(
                    "concurrent-cleanup",
                    f"{shard_path.name} vanished during reset",
                )

    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Shard index a key hashes into."""
        return shard_key(key) % self.n_shards

    def shard_path(self, shard: int) -> Path:
        return self.directory / f"shard_{shard:04d}.npz"

    def _load_shard(self, shard: int) -> Dict[str, object]:
        """Entries of one shard, reading the file on first touch only."""
        cached = self._shards.get(shard)
        if cached is not None:
            return cached
        cells: Dict[str, object] = {}
        self._shards[shard] = cells
        path = self.shard_path(shard)
        if not path.is_file():
            return cells
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["format"]) != self.FORMAT:
                    raise ValueError("unknown shard format")
                self.shard_reads += 1
                cells.update(self._unpack_shard(data))
        except _CORRUPT_ERRORS as exc:
            # One corrupt shard loses only its own entries; they are
            # re-run (campaign cells) or rebuilt from the baseline
            # model (fleet nodes).
            cells.clear()
            try:
                path.unlink()
                self._log_event(
                    "corrupt-shard-discarded",
                    f"{path.name}: {type(exc).__name__}: {exc}",
                )
            except FileNotFoundError:
                self._log_event(
                    "concurrent-cleanup",
                    f"{path.name} vanished during corrupt-shard discard",
                )
        return cells

    def _write_shard(self, shard: int) -> None:
        cells = self._shards.get(shard, {})
        atomic_savez(
            self.shard_path(shard),
            format=np.array(self.FORMAT),
            **self._pack_shard(cells),
        )
        self.shard_writes += 1

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return key in self._load_shard(self.shard_of(key))

    def stored_keys(self) -> List[str]:
        """All keys currently stored (reads every shard)."""
        out: List[str] = []
        for path in self.directory.glob("shard_*.npz"):
            shard = int(path.stem[len("shard_"):])
            out.extend(str(k) for k in self._load_shard(shard))
        return sorted(out)

    def store(self, key: str, value: object) -> None:
        """Persist one entry: atomically rewrite its shard."""
        cells = self._load_shard(self.shard_of(key))
        cells[key] = value
        self._write_shard(self.shard_of(key))

    def store_many(self, items) -> int:
        """Persist a batch of entries, rewriting each dirty shard once.

        ``items`` is a mapping or an iterable of ``(key, value)``
        pairs.  The snapshot worker's entry point: N nodes land as
        ``min(N, n_shards)`` shard writes instead of N.  Returns the
        number of shard files written.
        """
        pairs = items.items() if isinstance(items, dict) else items
        by_shard: Dict[int, Dict[str, object]] = {}
        for key, value in pairs:
            by_shard.setdefault(self.shard_of(key), {})[key] = value
        for shard, entries in sorted(by_shard.items()):
            self._load_shard(shard).update(entries)
            self._write_shard(shard)
        return len(by_shard)

    def load(self, key: str) -> Optional[object]:
        """One stored entry, or ``None`` if absent — only this key's
        shard is read (and only on first touch)."""
        return self._load_shard(self.shard_of(key)).get(key)


class ShardedManifest(ShardedArchiveStore):
    """Campaign checkpoint store sharded into N archives.

    Same ``load``/``store``/``has`` surface as
    :class:`CampaignCheckpoint` (the resilient loop does not care which
    one it holds); the sharding, atomicity and corruption-recovery
    discipline comes from :class:`ShardedArchiveStore`, this subclass
    only defines the cell-profile archive layout.
    """

    FORMAT = SHARD_FORMAT

    # ------------------------------------------------------------------
    def shard_of(self, cid: str) -> int:
        """Shard index a cell id hashes into.

        Cell ids are already blake2b hex digests (:func:`cell_id`), so
        they are their own hash — and existing on-disk stores keep
        their placement across the generic-store refactor.
        """
        return int(cid, 16) % self.n_shards

    def _pack_shard(self, cells: Dict[str, object]) -> Dict[str, np.ndarray]:
        profiles: List[PhaseProfile] = []
        cell_ids: List[str] = []
        for cid, cell_profiles in cells.items():
            profiles.extend(cell_profiles)  # type: ignore[arg-type]
            cell_ids.extend([cid] * len(cell_profiles))  # type: ignore[arg-type]
        return {"cell_ids": np.array(cell_ids), **_pack_profiles(profiles)}

    def _unpack_shard(self, data) -> Dict[str, object]:
        cells: Dict[str, List[PhaseProfile]] = {}
        names = [str(c) for c in data["counter_names"]]
        rates = data["counter_rates_per_s"]
        cell_ids = [str(c) for c in data["cell_ids"]]
        for i, cid in enumerate(cell_ids):
            cells.setdefault(cid, []).append(
                _unpack_profile(data, names, rates, i)
            )
        return cells

    # ------------------------------------------------------------------
    def completed_cells(self) -> List[str]:
        """Ids of all cells currently stored (reads every shard)."""
        return self.stored_keys()

    def store(self, cid: str, profiles: Sequence[PhaseProfile]) -> None:
        """Persist one completed cell: atomically rewrite its shard."""
        super().store(cid, list(profiles))

    def load(self, cid: str) -> Optional[List[PhaseProfile]]:
        """Profiles of one stored cell, or ``None`` if absent — only
        this cell's shard is read (and only on first touch)."""
        profiles = super().load(cid)
        return list(profiles) if profiles is not None else None  # type: ignore[arg-type]
