"""Incremental campaign checkpoints: crash-safe persistence of runs.

A multi-day campaign must never lose finished work to a crash, an OOM
kill, or a cluster drain.  The resilient campaign loop therefore
persists the phase profiles of every completed cell (one run of one
experiment) the moment it finishes, and on restart loads them back
instead of re-executing — checkpoint/resume at run granularity.

Layout of a checkpoint directory::

    <dir>/manifest.json        # {"format": 1, "fingerprint": "...",
                               #  "events": [...]}
    <dir>/cell_<id>.npz        # one archive per completed cell

The manifest's ``events`` list records recovery actions (corrupt cells
discarded, files that vanished under a concurrent cleanup) so a
multi-process campaign leaves an audit trail instead of silently
swallowing races.

The fingerprint hashes everything that determines a cell's output
(platform seed and noise parameters, the campaign plan, the fault plan,
the retry budget), so a checkpoint from a different configuration can
never leak into a resumed campaign: on mismatch the directory is reset
and acquisition starts over.  All writes go through
:mod:`repro.io.atomic`; a process killed mid-write leaves either the
old complete cell file or none, and corrupt cells found during resume
are discarded and re-executed rather than trusted (the same recovery
discipline as the experiment data cache).

Cell archives store the profile scalars as parallel arrays plus an
``(n_profiles, n_counters)`` rate matrix with NaN marking counters a
profile does not carry — float64 end to end, so a resumed campaign is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.io.atomic import atomic_savez, atomic_write_json
from repro.tracing.phases import PhaseProfile

__all__ = ["CHECKPOINT_FORMAT", "CampaignCheckpoint", "cell_id"]

#: Bump when the cell archive layout changes; old checkpoints are
#: discarded, never misread.
CHECKPOINT_FORMAT = 1

#: Errors that mean "this on-disk artifact is corrupt, not a bug".
_CORRUPT_ERRORS = (
    zipfile.BadZipFile,
    KeyError,
    OSError,
    EOFError,
    ValueError,
)


def cell_id(
    workload: str,
    frequency_mhz: int,
    threads: int,
    run_index: int,
    events: Iterable[str],
) -> str:
    """Stable identifier of one campaign cell (checkpoint file key)."""
    raw = f"{workload}|{frequency_mhz}|{threads}|{run_index}|{','.join(events)}"
    return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


class CampaignCheckpoint:
    """One checkpoint directory bound to one campaign fingerprint."""

    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self._events: List[Dict[str, str]] = []
        self._manifest_ready = False
        self._initialise()

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def _initialise(self) -> None:
        """Adopt a matching checkpoint or reset a stale/corrupt one."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = None
        path = self._manifest_path()
        if path.is_file():
            try:
                manifest = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                manifest = None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != CHECKPOINT_FORMAT
            or manifest.get("fingerprint") != self.fingerprint
        ):
            # Order matters: reset first, write the new manifest after.
            # A crash between the two leaves an invalid manifest, so the
            # next start resets again instead of adopting stale cells.
            # Events logged during the reset are buffered and land in
            # the first manifest write below.
            self.reset()
            self._write_manifest()
        else:
            prior = manifest.get("events", [])
            if isinstance(prior, list):
                self._events = [e for e in prior if isinstance(e, dict)]
            self._manifest_ready = True

    def _write_manifest(self) -> None:
        atomic_write_json(
            self._manifest_path(),
            {
                "format": CHECKPOINT_FORMAT,
                "fingerprint": self.fingerprint,
                "events": self._events,
            },
        )
        self._manifest_ready = True

    def _log_event(self, kind: str, detail: str) -> None:
        """Record a recovery action in the manifest's audit trail."""
        self._events.append({"kind": kind, "detail": detail})
        if self._manifest_ready:
            self._write_manifest()

    def events(self) -> List[Dict[str, str]]:
        """The manifest's recovery audit trail (copy)."""
        return list(self._events)

    def reset(self) -> None:
        """Drop every stored cell (stale fingerprint / fresh start)."""
        for cell_path in self.directory.glob("cell_*.npz"):
            try:
                cell_path.unlink()
            except FileNotFoundError:
                # Already gone: a concurrent cleanup (parallel campaign
                # sharing the directory) unlinked it between the glob
                # and here.  Benign, but worth an audit line; any other
                # OSError (permissions, I/O) propagates.
                self._log_event(
                    "concurrent-cleanup",
                    f"{cell_path.name} vanished during reset",
                )

    # ------------------------------------------------------------------
    def cell_path(self, cid: str) -> Path:
        return self.directory / f"cell_{cid}.npz"

    def has(self, cid: str) -> bool:
        return self.cell_path(cid).is_file()

    def completed_cells(self) -> List[str]:
        """Ids of all cells currently stored."""
        return sorted(
            p.stem[len("cell_"):] for p in self.directory.glob("cell_*.npz")
        )

    # ------------------------------------------------------------------
    def store(self, cid: str, profiles: Sequence[PhaseProfile]) -> None:
        """Atomically persist one completed cell's profiles."""
        names = sorted({c for p in profiles for c in p.counter_rates_per_s})
        rates = np.full((len(profiles), len(names)), np.nan)
        for i, p in enumerate(profiles):
            for j, name in enumerate(names):
                if name in p.counter_rates_per_s:
                    rates[i, j] = p.counter_rates_per_s[name]
        atomic_savez(
            self.cell_path(cid),
            format=np.array(CHECKPOINT_FORMAT),
            workload=np.array([p.workload for p in profiles]),
            suite=np.array([p.suite for p in profiles]),
            frequency_mhz=np.array(
                [p.frequency_mhz for p in profiles], dtype=np.int64
            ),
            threads=np.array([p.threads for p in profiles], dtype=np.int64),
            run_index=np.array([p.run_index for p in profiles], dtype=np.int64),
            phase_name=np.array([p.phase_name for p in profiles]),
            start_s=np.array([p.start_s for p in profiles]),
            end_s=np.array([p.end_s for p in profiles]),
            active_threads=np.array(
                [p.active_threads for p in profiles], dtype=np.int64
            ),
            power_w=np.array([p.power_w for p in profiles]),
            voltage_v=np.array([p.voltage_v for p in profiles]),
            counter_names=np.array(names),
            counter_rates_per_s=rates,
        )

    def load(self, cid: str) -> Optional[List[PhaseProfile]]:
        """Profiles of one stored cell, or ``None`` if absent/corrupt.

        A corrupt archive (truncated write from a previous non-atomic
        tool, bit rot, wrong format) is deleted so the campaign re-runs
        the cell instead of tripping over it again — recovery, not
        trust.
        """
        path = self.cell_path(cid)
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["format"]) != CHECKPOINT_FORMAT:
                    raise ValueError("unknown checkpoint cell format")
                names = [str(c) for c in data["counter_names"]]
                rates = data["counter_rates_per_s"]
                profiles = []
                for i in range(rates.shape[0]):
                    row = {
                        name: float(rates[i, j])
                        for j, name in enumerate(names)
                        if not np.isnan(rates[i, j])
                    }
                    profiles.append(
                        PhaseProfile(
                            workload=str(data["workload"][i]),
                            suite=str(data["suite"][i]),
                            frequency_mhz=int(data["frequency_mhz"][i]),
                            threads=int(data["threads"][i]),
                            run_index=int(data["run_index"][i]),
                            phase_name=str(data["phase_name"][i]),
                            start_s=float(data["start_s"][i]),
                            end_s=float(data["end_s"][i]),
                            active_threads=int(data["active_threads"][i]),
                            power_w=float(data["power_w"][i]),
                            voltage_v=float(data["voltage_v"][i]),
                            counter_rates_per_s=row,
                        )
                    )
                return profiles
        except _CORRUPT_ERRORS as exc:
            try:
                path.unlink()
                self._log_event(
                    "corrupt-cell-discarded",
                    f"{path.name}: {type(exc).__name__}: {exc}",
                )
            except FileNotFoundError:
                # A concurrent cleanup unlinked it first; other OSErrors
                # (permissions, I/O) propagate rather than being eaten.
                self._log_event(
                    "concurrent-cleanup",
                    f"{path.name} vanished during corrupt-cell discard",
                )
            return None
