"""``python -m repro.sched`` — the scheduler chaos demo CLI."""

import sys

from repro.sched.cli import main

sys.exit(main())
