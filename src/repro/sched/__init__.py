"""Fault-tolerant cluster campaign scheduling.

A polling job scheduler in the classic mold — poll loop,
``parallelmax``, per-job context — placing campaign cells onto
heterogeneous :mod:`repro.cluster` nodes through a work-stealing
dispatch queue, surviving seeded mid-campaign node death and straggler
slowdowns, and checkpointing into sharded manifests.  Placement is
simulated on a virtual clock; measurement physics stays a pure
function of ``(root_seed, cell)``, so the merged dataset is
bit-identical to the serial campaign no matter what the cluster did.

Entry point: :class:`~repro.sched.campaign.ScheduledCampaign`, or the
``repro-sched`` CLI (``python -m repro.sched``) for a chaos demo.
"""

from repro.sched.campaign import ScheduledCampaign
from repro.sched.liveness import NodeLivenessModel, NodeState
from repro.sched.progress import NodeThroughput, ProgressReport
from repro.sched.queue import DispatchQueue, JobContext, Lane
from repro.sched.scheduler import ClusterScheduler, Placement, ScheduleTrace

__all__ = [
    "ClusterScheduler",
    "DispatchQueue",
    "JobContext",
    "Lane",
    "NodeLivenessModel",
    "NodeState",
    "NodeThroughput",
    "Placement",
    "ProgressReport",
    "ScheduleTrace",
    "ScheduledCampaign",
]
