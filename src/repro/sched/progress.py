"""Live progress reporting for scheduled campaigns.

:class:`ProgressReport` condenses a :class:`~repro.sched.scheduler.
ScheduleTrace` into the operator's view of the campaign: per-node
throughput, reassignment counts, quarantine, and the ETA the scheduler
was predicting as it went.  It rides on ``CampaignReport.scheduling``
so the audit gate (rule AU012 ``excessive-reassignment``) can grade
cluster health from the same artifact the operator reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.nodes import ClusterNode
from repro.sched.scheduler import ScheduleTrace

__all__ = ["NodeThroughput", "ProgressReport"]


@dataclass(frozen=True)
class NodeThroughput:
    """One node's share of the campaign."""

    node_id: int
    hostname: str
    slots: int
    speed_factor: float
    completed_cells: int
    lost_placements: int
    busy_s: float
    died_at_s: Optional[float] = None
    straggler_factor: Optional[float] = None

    @property
    def cells_per_s(self) -> float:
        """Completed cells per busy virtual second (0 when idle)."""
        if self.busy_s <= 0:
            return 0.0
        return self.completed_cells / self.busy_s

    def describe(self) -> str:
        state = "ok"
        if self.died_at_s is not None:
            state = f"died t={self.died_at_s:.1f}s"
        elif self.straggler_factor is not None:
            state = f"straggler x{self.straggler_factor:.1f}"
        return (
            f"{self.hostname}: {self.completed_cells} cells, "
            f"{self.lost_placements} lost, "
            f"{self.cells_per_s:.2f} cells/s [{state}]"
        )


@dataclass(frozen=True)
class ProgressReport:
    """Scheduling outcome of one campaign, in audit-ready form."""

    total_cells: int
    completed_cells: int
    reassignments: int
    """Lost placements (each was re-queued or quarantined)."""
    reassignments_by_kind: Mapping[str, int]
    reassigned_cells: int
    """Distinct cells that lost at least one placement."""
    disrupted_cells: int
    """Distinct cells that lost a placement *or* were quarantined."""
    quarantined: Mapping[int, str]
    nodes: Tuple[NodeThroughput, ...]
    makespan_s: float
    eta_history: Tuple[Tuple[float, float], ...]
    parallelmax: int
    observer_errors: Tuple[str, ...] = ()

    @classmethod
    def from_trace(
        cls,
        trace: ScheduleTrace,
        nodes: Sequence[ClusterNode],
        *,
        observer_errors: Sequence[str] = (),
    ) -> "ProgressReport":
        completions = trace.completions_by_node()
        losses: Dict[int, int] = {}
        for p in trace.placements:
            if p.outcome != "completed":
                losses[p.node_id] = losses.get(p.node_id, 0) + 1
        throughput: List[NodeThroughput] = []
        for node in nodes:
            if not node.alive:
                continue
            throughput.append(
                NodeThroughput(
                    node_id=node.node_id,
                    hostname=node.hostname,
                    slots=node.slots,
                    speed_factor=node.speed_factor,
                    completed_cells=completions.get(node.node_id, 0),
                    lost_placements=losses.get(node.node_id, 0),
                    busy_s=float(trace.node_busy_s.get(node.node_id, 0.0)),
                    died_at_s=trace.node_death_s.get(node.node_id),
                    straggler_factor=trace.straggler_factors.get(
                        node.node_id
                    ),
                )
            )
        return cls(
            total_cells=trace.n_cells,
            completed_cells=len(trace.completed_indices()),
            reassignments=trace.reassignments,
            reassignments_by_kind=dict(trace.reassignments_by_kind()),
            reassigned_cells=len(trace.reassigned_cells()),
            disrupted_cells=len(
                set(trace.reassigned_cells()) | set(trace.quarantined)
            ),
            quarantined=dict(trace.quarantined),
            nodes=tuple(throughput),
            makespan_s=trace.makespan_s,
            eta_history=trace.eta_history,
            parallelmax=trace.parallelmax,
            observer_errors=tuple(observer_errors),
        )

    @property
    def reassignment_fraction(self) -> float:
        """Disrupted share of the campaign: cells that lost at least
        one placement or were given up, over all cells (AU012's
        grading signal)."""
        if self.total_cells <= 0:
            return 0.0
        return self.disrupted_cells / self.total_cells

    def eta_s(self) -> Optional[float]:
        """Last ETA the scheduler predicted (None before any dispatch)."""
        if not self.eta_history:
            return None
        return self.eta_history[-1][1]

    def summary(self) -> List[str]:
        lines = [
            f"scheduling: {self.completed_cells}/{self.total_cells} cells "
            f"over {len(self.nodes)} nodes "
            f"(parallelmax {self.parallelmax}), "
            f"virtual makespan {self.makespan_s:.1f}s",
            f"scheduling: {self.reassignments} reassignment(s) "
            f"across {self.reassigned_cells} cell(s)"
            + (
                " [" + ", ".join(
                    f"{k}: {v}"
                    for k, v in sorted(self.reassignments_by_kind.items())
                ) + "]"
                if self.reassignments_by_kind
                else ""
            ),
        ]
        dead = [n for n in self.nodes if n.died_at_s is not None]
        slow = [
            n
            for n in self.nodes
            if n.straggler_factor is not None and n.died_at_s is None
        ]
        if dead:
            lines.append(
                "scheduling: node death mid-campaign: "
                + ", ".join(n.describe() for n in dead)
            )
        if slow:
            lines.append(
                "scheduling: stragglers: "
                + ", ".join(n.describe() for n in slow)
            )
        for idx, reason in sorted(self.quarantined.items()):
            lines.append(f"scheduling: QUARANTINED cell #{idx}: {reason}")
        for err in self.observer_errors:
            lines.append(f"scheduling: observer error: {err}")
        return lines
