"""The cluster campaign scheduler: a polling placement loop.

Shape of the thing (the classic polling job scheduler — poll loop,
``parallelmax``, per-job context): :meth:`ClusterScheduler.poll` is one
scheduling step — dispatch ready jobs onto free lanes, advance the
virtual clock to the next event, resolve everything due at that
instant (completions, heartbeat-timeout death detections, blown
deadlines).  :meth:`schedule` polls until the queue and every lane are
empty and returns a :class:`ScheduleTrace` of every placement made.

**Placement is simulated; physics is not.**  The scheduler decides
*where and when* each cell would run on the cluster — node death and
straggler slowdowns come seeded from the fault injector, detection
latency from the liveness model, reassignment bounds from the
campaign's :class:`~repro.acquisition.campaign.RetryPolicy` with
backoff served on the virtual clock (no ``time.sleep``; lint rule
RL012 holds raw sleep-retry loops out of the rest of the repository).
The cells' measured results are produced separately by the campaign
executing ``run_cell`` exactly as the local backends do, in cell
order, so the merged dataset is bit-identical no matter which node ran
which cell, how many died, or where a resume picked up.

Quarantine is a last resort: a job is given up only once it has burned
its retry budget *and* failed a placement on every node still alive —
before that, a lost placement goes back to the queue with backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.acquisition.campaign import RetryPolicy
from repro.cluster.nodes import ClusterNode
from repro.faults.injector import FaultInjector
from repro.sched.liveness import NodeLivenessModel, NodeState
from repro.sched.queue import DispatchQueue, JobContext, Lane

__all__ = ["Placement", "ScheduleTrace", "ClusterScheduler"]

#: Placement outcomes.
OUTCOME_COMPLETED = "completed"
OUTCOME_NODE_DEATH = "node-death"
OUTCOME_DEADLINE = "deadline-timeout"


@dataclass(frozen=True)
class Placement:
    """One attempt to run one cell on one node (virtual time)."""

    cell_index: int
    node_id: int
    attempt: int
    """Placement attempt of this cell (0-based)."""
    start_s: float
    end_s: float
    """Completion instant, or when the loss was *detected* (heartbeat
    timeout fires, deadline blows) — the lane is occupied until then."""
    outcome: str
    """``completed`` | ``node-death`` | ``deadline-timeout``."""


@dataclass
class _InFlight:
    """A placement in flight, with its pre-computed resolution."""

    job: JobContext
    lane: Lane
    start_s: float
    resolve_s: float
    outcome: str
    duration_s: float
    """Actual service time on this lane (busy-time accounting)."""


@dataclass(frozen=True)
class ScheduleTrace:
    """Everything the scheduler did, for audit and progress reporting."""

    n_cells: int
    placements: Tuple[Placement, ...]
    quarantined: Mapping[int, str]
    """Cell index → reason, for cells no live node could complete."""
    node_death_s: Mapping[int, float]
    """Node id → virtual death instant (ground truth)."""
    straggler_factors: Mapping[int, float]
    """Node id → slowdown factor, stragglers only (factor > 1)."""
    makespan_s: float
    eta_history: Tuple[Tuple[float, float], ...]
    """(virtual now, predicted completion) after each dispatch round."""
    parallelmax: int
    node_busy_s: Mapping[int, float]
    """Node id → virtual seconds spent on completed placements."""

    def placements_for(self, cell_index: int) -> Tuple[Placement, ...]:
        return tuple(
            p for p in self.placements if p.cell_index == cell_index
        )

    def completed(self, cell_index: int) -> bool:
        return any(
            p.cell_index == cell_index and p.outcome == OUTCOME_COMPLETED
            for p in self.placements
        )

    def completed_indices(self) -> List[int]:
        """Cell indices that completed, in campaign (cell) order."""
        return sorted(
            {
                p.cell_index
                for p in self.placements
                if p.outcome == OUTCOME_COMPLETED
            }
        )

    def completions_by_node(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for p in self.placements:
            if p.outcome == OUTCOME_COMPLETED:
                out[p.node_id] = out.get(p.node_id, 0) + 1
        return out

    def reassignments_by_kind(self) -> Dict[str, int]:
        """Lost placements by loss kind."""
        out: Dict[str, int] = {}
        for p in self.placements:
            if p.outcome != OUTCOME_COMPLETED:
                out[p.outcome] = out.get(p.outcome, 0) + 1
        return out

    @property
    def reassignments(self) -> int:
        """Total lost placements (each one was re-queued or gave up)."""
        return sum(self.reassignments_by_kind().values())

    def reassigned_cells(self) -> List[int]:
        """Cells that lost at least one placement, in cell order."""
        return sorted(
            {
                p.cell_index
                for p in self.placements
                if p.outcome != OUTCOME_COMPLETED
            }
        )


class ClusterScheduler:
    """Places campaign cells onto cluster nodes, surviving the faults.

    Parameters
    ----------
    nodes:
        The cluster.  Nodes with ``alive=False`` (dead at discovery,
        the build-time fault) never receive lanes; mid-campaign death
        and stragglers are drawn per node from ``injector``.
    costs_s:
        Nominal cost of each cell on a speed-1.0 node, in cell order.
    retry:
        Reassignment budget and backoff (virtual-clock) for lost
        placements — the same policy object the campaign uses for
        measurement faults.
    liveness:
        Heartbeat / deadline timers of the failure detector.
    injector:
        Seeded fault source for mid-campaign node death
        (``node_death_rate``) and stragglers (``straggler_rate``);
        ``None`` disables both.
    parallelmax:
        Cap on cluster-wide concurrent placements (``None`` = sum of
        node slots) — the polling scheduler's classic throttle.
    on_event:
        Progress observer for scheduling events (dispatch, death
        detection, reassignment, quarantine).  Wrapped: a raising
        observer is recorded in ``observer_errors``, never aborts
        scheduling.
    """

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        costs_s: Sequence[float],
        *,
        retry: Optional[RetryPolicy] = None,
        liveness: Optional[NodeLivenessModel] = None,
        injector: Optional[FaultInjector] = None,
        parallelmax: Optional[int] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        if any(c <= 0 for c in costs_s):
            raise ValueError("cell costs must be positive")
        self.nodes = list(nodes)
        self.costs_s = [float(c) for c in costs_s]
        self.retry = retry or RetryPolicy()
        self.liveness = liveness or NodeLivenessModel()
        self.injector = injector
        total_slots = sum(n.slots for n in self.nodes if n.alive)
        if total_slots == 0:
            raise ValueError("every cluster node is dead at discovery")
        if parallelmax is None:
            parallelmax = total_slots
        if parallelmax < 1:
            raise ValueError("parallelmax must be at least 1")
        self.parallelmax = int(min(parallelmax, max(total_slots, 1)))
        self.on_event = on_event
        #: Observer exceptions survived (telemetry must not kill
        #: placement any more than it kills acquisition).
        self.observer_errors: List[str] = []

    # ------------------------------------------------------------------
    def _notify(self, message: str) -> None:
        if self.on_event is None:
            return
        try:
            self.on_event(message)
        except Exception as exc:  # observers are telemetry, not control
            self.observer_errors.append(
                f"scheduler observer raised {type(exc).__name__}: {exc}"
            )
            import warnings

            warnings.warn(
                f"scheduler observer raised {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    def _build_states(self) -> Dict[int, NodeState]:
        """Liveness state per usable node, with seeded fault draws.

        Death instants are fractions of the *estimated* makespan (total
        nominal work over healthy capacity): early enough to matter,
        deterministic in the seed, and independent of actual placement.
        """
        live = [n for n in self.nodes if n.alive]
        if not live:
            raise ValueError("every cluster node is dead at discovery")
        capacity = sum(n.speed_factor * n.slots for n in live)
        makespan_est_s = sum(self.costs_s) / max(capacity, 1e-9)
        states: Dict[int, NodeState] = {}
        for node in live:
            state = NodeState(node=node)
            if self.injector is not None:
                state.straggler_factor = self.injector.node_straggler_factor(
                    node.node_id
                )
                fraction = self.injector.node_death_fraction(node.node_id)
                if fraction is not None:
                    state.death_s = fraction * makespan_est_s
                    state.detect_s = (
                        state.death_s + self.liveness.heartbeat_timeout_s
                    )
            states[node.node_id] = state
        return states

    def _place(
        self, job: JobContext, lane: Lane, state: NodeState, now_s: float
    ) -> _InFlight:
        """Start one placement and pre-compute how it resolves.

        The resolution is the *earliest* of: natural completion, the
        placement deadline (straggler detector), and — when the node
        dies before finishing — the heartbeat-timeout detection.
        """
        duration_s = job.nominal_cost_s / state.speed
        end_s = now_s + duration_s
        deadline_s = now_s + self.liveness.deadline_s(job.nominal_cost_s)
        candidates = [(end_s, OUTCOME_COMPLETED)]
        if state.death_s is not None and end_s > state.death_s:
            # The node dies mid-run: completion never happens; the
            # scheduler learns at the heartbeat timeout.
            candidates = [(float(state.detect_s), OUTCOME_NODE_DEATH)]
        if end_s > deadline_s:
            candidates.append((deadline_s, OUTCOME_DEADLINE))
        resolve_s, outcome = min(candidates)
        job.attempt += 1
        lane.job = job
        return _InFlight(
            job=job,
            lane=lane,
            start_s=now_s,
            resolve_s=resolve_s,
            outcome=outcome,
            duration_s=duration_s,
        )

    # ------------------------------------------------------------------
    def schedule(self) -> ScheduleTrace:
        """Run the poll loop to completion and return the trace."""
        states = self._build_states()
        lanes = [
            Lane(node_id=node.node_id, slot=slot)
            for node in self.nodes
            if node.alive
            for slot in range(node.slots)
        ]
        queue = DispatchQueue(
            [
                JobContext(index=i, nominal_cost_s=cost)
                for i, cost in enumerate(self.costs_s)
            ]
        )
        inflight: Dict[Tuple[int, int], _InFlight] = {}
        placements: List[Placement] = []
        quarantined: Dict[int, str] = {}
        eta_history: List[Tuple[float, float]] = []
        announced_dead: set = set()
        now_s = 0.0

        while not queue.empty or inflight:
            now_s = self.poll(
                now_s,
                states,
                lanes,
                queue,
                inflight,
                placements,
                quarantined,
                eta_history,
                announced_dead,
            )
            if now_s < 0:
                break  # no live lanes remain; the queue was quarantined

        return ScheduleTrace(
            n_cells=len(self.costs_s),
            placements=tuple(placements),
            quarantined=quarantined,
            node_death_s={
                nid: s.death_s
                for nid, s in states.items()
                if s.death_s is not None
            },
            straggler_factors={
                nid: s.straggler_factor
                for nid, s in states.items()
                if s.is_straggler
            },
            makespan_s=max(now_s, 0.0),
            eta_history=tuple(eta_history),
            parallelmax=self.parallelmax,
            node_busy_s={nid: s.busy_s for nid, s in states.items()},
        )

    # ------------------------------------------------------------------
    def poll(
        self,
        now_s: float,
        states: Dict[int, NodeState],
        lanes: List[Lane],
        queue: DispatchQueue,
        inflight: Dict[Tuple[int, int], _InFlight],
        placements: List[Placement],
        quarantined: Dict[int, str],
        eta_history: List[Tuple[float, float]],
        announced_dead: set,
    ) -> float:
        """One scheduling step: dispatch, advance the clock, resolve.

        Returns the new virtual time, or a negative value when no live
        lane remains and the queue has been drained into quarantine.
        """
        dispatched = self._dispatch(now_s, states, lanes, queue, inflight)
        if dispatched:
            self._record_eta(now_s, states, queue, inflight, eta_history)

        if not inflight:
            if queue.empty:
                return now_s
            # Jobs remain but nothing is running: every ready job is
            # unplaceable, the rest are backing off.
            accepting_ids = {
                lane.node_id
                for lane in lanes
                if states[lane.node_id].accepts_at(now_s)
            }
            if not accepting_ids:
                for job in queue.drain():
                    reason = "no live nodes remaining" + (
                        f" (last: {job.last_error})" if job.last_error else ""
                    )
                    quarantined[job.index] = reason
                    self._notify(f"quarantined cell #{job.index}: {reason}")
                return -1.0
            # A ready job nobody may take (fresh-only, failed on every
            # accepting node) has exhausted its last-chance tour.
            for job in queue.pop_blocked(now_s, accepting_ids):
                reason = (
                    f"placement failed on every live node after "
                    f"{job.attempt} attempt(s): {job.last_error}"
                )
                quarantined[job.index] = reason
                self._notify(f"quarantined cell #{job.index}: {reason}")
            next_ready = queue.next_ready_s()
            if next_ready is None:
                return now_s
            return max(now_s, float(next_ready))

        next_s = min(entry.resolve_s for entry in inflight.values())
        next_ready = queue.next_ready_s()
        if (
            next_ready is not None
            and next_ready > now_s
            and any(
                lane.job is None
                and states[lane.node_id].accepts_at(next_ready)
                for lane in lanes
            )
        ):
            # A free live lane could start a backing-off job before the
            # next in-flight resolution.  (A job already ready *now* was
            # either dispatched above or is blocked on lanes/parallelmax,
            # which only a resolution can free — so only a future ready
            # time may pull the clock, else it would never advance.)
            next_s = min(next_s, next_ready)
        now_s = max(now_s, next_s)
        self._resolve(now_s, states, queue, inflight, placements,
                      quarantined, announced_dead)
        return now_s

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        now_s: float,
        states: Dict[int, NodeState],
        lanes: List[Lane],
        queue: DispatchQueue,
        inflight: Dict[Tuple[int, int], _InFlight],
    ) -> int:
        """Fill free lanes from the queue (the work-stealing pull)."""
        dispatched = 0
        for lane in lanes:
            if lane.job is not None:
                continue
            if len(inflight) >= self.parallelmax:
                break
            state = states[lane.node_id]
            if not state.accepts_at(now_s):
                continue
            job = queue.pop_ready(now_s, lane.node_id)
            if job is None:
                continue
            entry = self._place(job, lane, state, now_s)
            inflight[lane.key] = entry
            dispatched += 1
        return dispatched

    def _resolve(
        self,
        now_s: float,
        states: Dict[int, NodeState],
        queue: DispatchQueue,
        inflight: Dict[Tuple[int, int], _InFlight],
        placements: List[Placement],
        quarantined: Dict[int, str],
        announced_dead: set,
    ) -> None:
        """Settle every in-flight placement due at ``now_s``."""
        due = [
            key
            for key, entry in inflight.items()
            if entry.resolve_s <= now_s
        ]
        for key in due:
            entry = inflight.pop(key)
            job, state = entry.job, states[entry.lane.node_id]
            entry.lane.job = None
            placements.append(
                Placement(
                    cell_index=job.index,
                    node_id=entry.lane.node_id,
                    attempt=job.attempt - 1,
                    start_s=entry.start_s,
                    end_s=entry.resolve_s,
                    outcome=entry.outcome,
                )
            )
            if entry.outcome == OUTCOME_COMPLETED:
                state.completed_cells += 1
                state.busy_s += entry.duration_s
                continue
            # Lost placement: account, announce, requeue or give up.
            state.lost_placements += 1
            job.tried_nodes.add(entry.lane.node_id)
            if entry.outcome == OUTCOME_NODE_DEATH:
                job.last_error = (
                    f"node {state.node.hostname} died at "
                    f"t={state.death_s:.1f}s (detected "
                    f"t={state.detect_s:.1f}s via heartbeat timeout)"
                )
                if entry.lane.node_id not in announced_dead:
                    announced_dead.add(entry.lane.node_id)
                    self._notify(
                        f"node {state.node.hostname} declared dead at "
                        f"t={now_s:.1f}s; reassigning its cells"
                    )
            else:
                job.last_error = (
                    f"deadline blown on {state.node.hostname} "
                    f"(straggler ×{state.straggler_factor:.1f}): "
                    f"{self.liveness.deadline_s(job.nominal_cost_s):.1f}s "
                    f"budget"
                )
            live_ids = {
                nid for nid, s in states.items() if s.accepts_at(now_s)
            }
            exhausted = (
                job.attempt >= self.retry.max_attempts
                and live_ids <= job.tried_nodes
            )
            if exhausted or not live_ids:
                reason = (
                    f"placement failed on every live node after "
                    f"{job.attempt} attempt(s): {job.last_error}"
                )
                quarantined[job.index] = reason
                self._notify(f"quarantined cell #{job.index}: {reason}")
                continue
            # Attempts may exceed the policy's max while untried live
            # nodes remain (quarantine needs both); cap the backoff
            # window at the policy's last rung rather than overflow.
            backoff_s = self.retry.delay_s(
                min(job.attempt, self.retry.max_attempts) - 1
            )
            job.ready_s = now_s + backoff_s
            # Past the retry budget the job is on its last-chance tour:
            # one try per not-yet-failed node, so a blown node cannot
            # keep stealing it back and starve it forever.
            job.fresh_only = job.attempt >= self.retry.max_attempts
            queue.push(job)
            self._notify(
                f"reassigning cell #{job.index} ({entry.outcome}), "
                f"attempt {job.attempt}, backoff {backoff_s:.1f}s"
            )

    def _record_eta(
        self,
        now_s: float,
        states: Dict[int, NodeState],
        queue: DispatchQueue,
        inflight: Dict[Tuple[int, int], _InFlight],
        eta_history: List[Tuple[float, float]],
    ) -> None:
        """Predicted completion: remaining nominal work over the
        capacity the scheduler still believes in."""
        remaining = sum(
            entry.job.nominal_cost_s for entry in inflight.values()
        ) + sum(job.nominal_cost_s for _, _, job in queue._jobs)
        capacity = sum(
            s.speed * s.node.slots
            for s in states.values()
            if s.accepts_at(now_s)
        )
        if capacity <= 0:
            return
        eta_history.append((now_s, now_s + remaining / capacity))
