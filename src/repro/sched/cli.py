"""``repro-sched`` — run a chaos campaign on a simulated cluster.

Usage::

    repro-sched                          # 16 nodes, defaults
    repro-sched --nodes 8 --slots 2      # smaller cluster, 2 slots/node
    repro-sched --death-rate 0.5 --straggler-rate 0.3 --fault-seed 1
    repro-sched --parallelmax 8          # throttle concurrent placements
    repro-sched --checkpoint-dir ck/     # sharded checkpoints (resumable)
    repro-sched --verify                 # also run serially and compare

Exercises the full scheduled-campaign stack — work-stealing placement,
mid-campaign node death, straggler deadlines, reassignment,
quarantine — and prints the campaign report including the scheduling
section.  ``--verify`` re-runs the same campaign serially and checks
the datasets are bit-identical (exit 1 if not, or if any cell was
quarantined under ``--strict``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.acquisition import CampaignPlan, ResilientCampaign, RetryPolicy
from repro.cluster.nodes import build_cluster
from repro.faults.plan import FaultPlan
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS, Platform
from repro.sched.campaign import ScheduledCampaign
from repro.sched.liveness import NodeLivenessModel
from repro.seeding import DEFAULT_SEED
from repro.workloads import get_workload

__all__ = ["main"]


def _small_plan() -> CampaignPlan:
    prog = tuple(
        c for c in COUNTER_NAMES if c not in FIXED_COUNTERS
    )[:8]
    return CampaignPlan(
        workloads=(get_workload("compute"), get_workload("memory_read")),
        frequencies_mhz=(1200, 2400),
        events=tuple(FIXED_COUNTERS) + prog,
        thread_counts_override=(4, 8),
    )


def _datasets_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return (
        a.counter_names == b.counter_names
        and a.workloads == b.workloads
        and a.phase_names == b.phase_names
        and np.array_equal(a.counters, b.counters)
        and np.array_equal(a.power_w, b.power_w)
        and np.array_equal(a.voltage_v, b.voltage_v)
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Chaos demo: schedule a measurement campaign onto a "
            "simulated cluster with mid-campaign node death and "
            "stragglers, then verify the dataset survived bit-identical."
        ),
    )
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--slots", type=int, default=1,
                        help="concurrency slots per node")
    parser.add_argument("--parallelmax", type=int, default=None,
                        help="cap on cluster-wide concurrent placements")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="measurement root seed")
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--death-rate", type=float, default=0.5,
                        help="per-node mid-campaign death probability")
    parser.add_argument("--straggler-rate", type=float, default=0.3)
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="placement/measurement retry budget")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="sharded checkpoint directory (resumable)")
    parser.add_argument("--shards", type=int, default=8,
                        help="checkpoint shard count")
    parser.add_argument("--verify", action="store_true",
                        help="re-run serially and compare bit-for-bit")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any cell was quarantined")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    platform = Platform(seed=args.seed)
    plan = _small_plan()
    nodes = build_cluster(
        args.nodes, seed=args.seed, slots_per_node=args.slots
    )
    faults = FaultPlan(
        node_death_rate=args.death_rate,
        straggler_rate=args.straggler_rate,
        fault_seed=args.fault_seed,
    )
    campaign = ScheduledCampaign(
        platform,
        plan,
        nodes,
        liveness=NodeLivenessModel(),
        parallelmax=args.parallelmax,
        faults=faults,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_shards=args.shards,
    )
    result = campaign.run()
    print(result.report.summary())

    status = 0
    if args.strict and result.report.scheduling.quarantined:
        print("repro-sched: FAIL: cells were quarantined", file=sys.stderr)
        status = 1
    if args.verify:
        serial = ResilientCampaign(
            platform, plan, retry=RetryPolicy(max_attempts=args.max_attempts)
        ).run()
        if result.report.scheduling.quarantined:
            print(
                "repro-sched: verify skipped dataset comparison "
                "(quarantined cells make the scheduled dataset a "
                "strict subset)",
            )
        elif _datasets_equal(result.dataset, serial.dataset):
            print(
                "repro-sched: verify OK — dataset bit-identical to "
                "the serial campaign"
            )
        else:
            print(
                "repro-sched: FAIL: scheduled dataset differs from "
                "serial",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
