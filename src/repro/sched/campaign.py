"""Cluster-scheduled campaigns: placement on top, physics unchanged.

:class:`ScheduledCampaign` runs a
:class:`~repro.acquisition.campaign.ResilientCampaign` *through* the
:class:`~repro.sched.scheduler.ClusterScheduler`: placement decides
which cells survive the cluster's faults (and charges the virtual
clock for every reassignment), then the surviving cells are measured
by exactly the same ``run_cell`` path the local backends use — in cell
order, against the campaign's single platform, checkpointed into a
:class:`~repro.acquisition.checkpoint.ShardedManifest`.

The invariant this split buys: per-cell results are a pure function of
``(root_seed, cell)``.  Nodes, deaths, stragglers, reassignment order,
``parallelmax`` and resume points can all change — the merged dataset
stays **bit-identical** to the serial campaign, minus any cells the
cluster genuinely could not complete (quarantined, and said so in the
report).

Scheduler accounting (reassignments, virtual backoff) is kept separate
from acquisition accounting (``retries``, ``total_backoff_s``): a cell
lost to a node death was never measured, so its fault stream and retry
ledger are untouched.  The scheduling story lands in
``CampaignReport.scheduling`` (a :class:`~repro.sched.progress.
ProgressReport`), where audit rule AU012 grades it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from pathlib import Path

import time

from repro.acquisition.campaign import (
    CampaignCell,
    CampaignPlan,
    ProgressFn,
    ResilientCampaign,
    RetryPolicy,
    _call_progress,
    _CellOutcome,
)
from repro.acquisition.checkpoint import ShardedManifest
from repro.acquisition.postprocess import PhaseProfile
from repro.cluster.nodes import ClusterNode
from repro.faults.plan import FaultPlan
from repro.hardware.platform import Platform
from repro.sched.liveness import NodeLivenessModel
from repro.sched.progress import ProgressReport
from repro.sched.scheduler import ClusterScheduler, ScheduleTrace
from repro.seeding import derive_rng

__all__ = ["ScheduledCampaign"]


class ScheduledCampaign(ResilientCampaign):
    """A resilient campaign placed onto a heterogeneous cluster.

    Parameters (beyond :class:`ResilientCampaign`)
    ----------
    nodes:
        The cluster (see :func:`repro.cluster.nodes.build_cluster`).
        Node ``slots`` and ``speed_factor`` shape placement only —
        measurement physics always comes from ``platform``.
    liveness:
        Failure-detector timers (heartbeat timeout, straggler
        deadline).
    parallelmax:
        Cluster-wide cap on concurrent placements (``None`` = total
        slots).
    checkpoint_dir / checkpoint_shards:
        Scheduled campaigns checkpoint into a sharded manifest: cells
        hash across ``checkpoint_shards`` atomic files, so a resume
        reads only the shards that hold its cells and concurrent
        writers never touch the same file.
    """

    def __init__(
        self,
        platform: Platform,
        plan: CampaignPlan,
        nodes: Sequence[ClusterNode],
        *,
        liveness: Optional[NodeLivenessModel] = None,
        parallelmax: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_shards: int = 8,
        min_counter_coverage: float = 0.75,
        validate: bool = True,
        sleep_fn: Callable[[float], None] = time.sleep,
        parallel: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(
            platform,
            plan,
            faults=faults,
            retry=retry,
            checkpoint_dir=None,
            min_counter_coverage=min_counter_coverage,
            validate=validate,
            sleep_fn=sleep_fn,
            parallel=parallel,
            max_workers=max_workers,
        )
        if not nodes:
            raise ValueError("scheduled campaign needs at least one node")
        self.nodes = list(nodes)
        self.liveness = liveness or NodeLivenessModel()
        self.parallelmax = parallelmax
        if checkpoint_dir is not None:
            self.checkpoint = ShardedManifest(
                checkpoint_dir, self.fingerprint(), n_shards=checkpoint_shards
            )
        #: Scheduling story of the last :meth:`run` (also attached to
        #: the report as ``scheduling``).
        self.progress_report: Optional[ProgressReport] = None
        self.last_trace: Optional[ScheduleTrace] = None

    # ------------------------------------------------------------------
    def cell_cost_s(self, cell: CampaignCell) -> float:
        """Nominal placement cost of a cell on a speed-1.0 node.

        Seeded per cell key so cost heterogeneity is deterministic and
        independent of cell order — purely a placement input, never a
        physics input.
        """
        rng = derive_rng(self.platform.seed, "sched", "cost", *cell.key)
        return 0.75 + 0.5 * float(rng.random())

    # ------------------------------------------------------------------
    def _acquire(
        self, cells: List[CampaignCell], progress: Optional[ProgressFn]
    ) -> Tuple[List[Optional[_CellOutcome]], Dict[int, List[PhaseProfile]]]:
        """Place on the cluster, then measure the placed cells.

        Placement runs first on the virtual clock; cells the cluster
        completed are then acquired — in cell order — through the base
        serial/parallel machinery, so checkpointing, resume and the
        bit-identity accounting are inherited verbatim.  Cells no live
        node could complete become quarantine outcomes with a
        placement reason.
        """
        scheduler = ClusterScheduler(
            self.nodes,
            [self.cell_cost_s(cell) for cell in cells],
            retry=self.retry,
            liveness=self.liveness,
            injector=self.injector,
            parallelmax=self.parallelmax,
            on_event=lambda msg: _call_progress(
                progress, f"sched: {msg}", self._hook_errors
            ),
        )
        trace = scheduler.schedule()
        self.last_trace = trace

        placed = trace.completed_indices()
        sub_outcomes, sub_resumed = super()._acquire(
            [cells[i] for i in placed], progress
        )

        outcomes: List[Optional[_CellOutcome]] = [None] * len(cells)
        resumed: Dict[int, List[PhaseProfile]] = {}
        for j, i in enumerate(placed):
            outcomes[i] = sub_outcomes[j]
            if j in sub_resumed:
                resumed[i] = sub_resumed[j]
        for i, reason in trace.quarantined.items():
            # attempts=1 keeps the acquisition retry/backoff ledger at
            # zero — the cell was never measured, only lost.
            outcomes[i] = _CellOutcome(
                profiles=None,
                attempts=1,
                faults=["placement-failed"],
                last_error=reason,
            )

        self.progress_report = ProgressReport.from_trace(
            trace, self.nodes, observer_errors=scheduler.observer_errors
        )
        return outcomes, resumed

    def _report_extras(self) -> Dict[str, object]:
        return {"scheduling": self.progress_report}
