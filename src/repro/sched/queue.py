"""Work-stealing dispatch: a shared cell queue pulled by node lanes.

Placement is *pull-based*: there is one global FIFO of jobs (campaign
cells with their per-job scheduling context) and one lane per node
slot.  Whenever a lane goes idle it steals the next ready job from the
shared queue — nobody pre-partitions the campaign across nodes.  That
single decision is what makes heterogeneous clusters self-balancing: a
node at half speed frees its lanes half as often and therefore takes
half the cells, with no speed model in the dispatcher at all.

The queue prefers handing a lane a job that has not already failed on
that lane's node (a straggler must not repeatedly steal back the cell
it keeps timing out on), falling back to any ready job so work never
idles while a live lane is free.

Everything here is deterministic: jobs are ordered by (ready time,
enqueue sequence), lanes by (node id, slot) — no wall clock, no
unordered iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

__all__ = ["JobContext", "Lane", "DispatchQueue"]


@dataclass
class JobContext:
    """Per-job scheduling context: one campaign cell's placement life.

    ``attempt`` counts *placements* (scheduler-level), which are
    independent of the acquisition-level retry attempts inside
    ``run_cell`` — a cell lost to a node death was never measured, so
    its fault stream is untouched by the reassignment.
    """

    index: int
    """Cell index in campaign order (the bit-identity key)."""
    nominal_cost_s: float
    """Expected cost on a speed-1.0 node (deadline baseline)."""
    attempt: int = 0
    """Placements so far (0 = never placed)."""
    ready_s: float = 0.0
    """Virtual instant this job may be (re)placed — carries the
    RetryPolicy backoff after a lost placement."""
    tried_nodes: Set[int] = field(default_factory=set)
    """Nodes a placement of this job already failed on."""
    last_error: str = ""
    """Why the most recent placement was lost."""
    fresh_only: bool = False
    """Past the retry budget: only nodes *not* in ``tried_nodes`` may
    take this job (its last chance is one try per remaining node —
    letting a failing node steal it back forever would starve it)."""


@dataclass
class Lane:
    """One concurrency slot of one node."""

    node_id: int
    slot: int
    job: Optional[JobContext] = None
    """Job currently in flight on this lane (``None`` = idle)."""

    @property
    def key(self) -> Tuple[int, int]:
        return (self.node_id, self.slot)


class DispatchQueue:
    """The shared ready-queue node lanes steal from.

    FIFO by (ready time, enqueue sequence); ``pop_ready`` implements
    the steal — next ready job, preferring one the stealing node has
    not already failed.
    """

    def __init__(self, jobs: Optional[List[JobContext]] = None) -> None:
        #: (ready_s, seq, job), kept sorted ascending.
        self._jobs: List[Tuple[float, int, JobContext]] = []
        self._seq = 0
        for job in jobs or []:
            self.push(job)

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def empty(self) -> bool:
        return not self._jobs

    def push(self, job: JobContext) -> None:
        """Enqueue a job (initial placement or reassignment)."""
        self._seq += 1
        entry = (job.ready_s, self._seq, job)
        # Insertion keeps the list sorted; campaign queues append
        # mostly-monotone ready times, so the scan is short.
        pos = len(self._jobs)
        while pos > 0 and self._jobs[pos - 1][:2] > entry[:2]:
            pos -= 1
        self._jobs.insert(pos, entry)

    def pop_ready(self, now_s: float, node_id: int) -> Optional[JobContext]:
        """Steal the next job ready at ``now_s`` for ``node_id``'s lane.

        Prefers a job that has not already failed on this node; falls
        back to any ready job (a retry on the same node is still a
        fresh placement) so a free lane never idles while work waits.
        """
        fallback = None
        for i, (ready_s, _, job) in enumerate(self._jobs):
            if ready_s > now_s:
                break
            if node_id not in job.tried_nodes:
                return self._jobs.pop(i)[2]
            if fallback is None and not job.fresh_only:
                fallback = i
        if fallback is not None:
            return self._jobs.pop(fallback)[2]
        return None

    def pop_blocked(
        self, now_s: float, accepting_ids: Set[int]
    ) -> List[JobContext]:
        """Remove and return ready jobs no accepting node may take.

        A job is blocked when it is ``fresh_only`` and every accepting
        node already failed it — those jobs would otherwise starve in a
        queue nobody is allowed to steal from.
        """
        blocked: List[JobContext] = []
        kept: List[Tuple[float, int, JobContext]] = []
        for entry in self._jobs:
            ready_s, _, job = entry
            if (
                ready_s <= now_s
                and job.fresh_only
                and accepting_ids <= job.tried_nodes
            ):
                blocked.append(job)
            else:
                kept.append(entry)
        self._jobs = kept
        return blocked

    def next_ready_s(self) -> Optional[float]:
        """Earliest ready time among queued jobs (``None`` if empty)."""
        if not self._jobs:
            return None
        return self._jobs[0][0]

    def drain(self) -> List[JobContext]:
        """Remove and return every queued job (terminal quarantine)."""
        jobs = [job for _, _, job in self._jobs]
        self._jobs = []
        return jobs
