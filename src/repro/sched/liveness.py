"""Node liveness: heartbeats, deadlines, and declared death.

The scheduler never observes a node's death directly — a dead node
simply goes silent.  What the scheduler *can* observe is two timers:

* **heartbeat timeout** — every node reports a heartbeat each
  ``heartbeat_interval_s`` of virtual time; a node silent for
  ``heartbeat_timeout_s`` is declared dead, and every cell in flight
  on it is reassigned.  Detection latency is therefore bounded by the
  timeout, never by luck.
* **placement deadline** — a cell placed on a node must finish within
  ``deadline_factor ×`` its nominal cost.  A straggler node (slowdown
  drawn by the fault injector) blows this deadline; the scheduler
  abandons the placement and reassigns, instead of waiting an unbounded
  time for a node that is technically alive but uselessly slow.

Both detections resolve to *reassignment under the campaign's
RetryPolicy* — bounded attempts with (virtual) backoff, quarantine
only once every live node has failed the cell.  Neither timer ever
touches the cell's measured physics: results stay a pure function of
``(root_seed, cell)`` regardless of where and how often a cell was
attempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.nodes import ClusterNode

__all__ = ["NodeLivenessModel", "NodeState"]


@dataclass(frozen=True)
class NodeLivenessModel:
    """Detection timers of the scheduler's failure detector."""

    heartbeat_interval_s: float = 5.0
    """Virtual-time spacing of node heartbeats."""
    heartbeat_timeout_s: float = 15.0
    """Silence longer than this declares the node dead (≥ the
    interval; the gap is the usual N-missed-beats margin against
    network jitter)."""
    deadline_factor: float = 6.0
    """A placement is abandoned after ``deadline_factor ×`` the cell's
    nominal cost — the straggler detector (> 1)."""

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.heartbeat_timeout_s < self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must be >= heartbeat_interval_s"
            )
        if self.deadline_factor <= 1.0:
            raise ValueError("deadline_factor must be > 1")

    def deadline_s(self, nominal_cost_s: float) -> float:
        """Longest a placement of a cell may run before abandonment."""
        return self.deadline_factor * float(nominal_cost_s)


@dataclass
class NodeState:
    """One node's liveness bookkeeping during a scheduled campaign.

    ``death_s`` / ``straggler_factor`` are the injector's seeded
    decisions (the simulation's ground truth); ``detect_s`` is when the
    *scheduler* learns about the death via the heartbeat timeout.  The
    dispatch loop keeps assigning to a dead-but-undetected node — those
    placements are exactly the in-flight work a real cluster loses in
    the detection window, and they all resolve to reassignment at
    ``detect_s``.
    """

    node: ClusterNode
    straggler_factor: float = 1.0
    """Service slowdown (1.0 = healthy; > 1 = straggler)."""
    death_s: Optional[float] = None
    """Virtual instant the node dies (ground truth; ``None`` = lives)."""
    detect_s: Optional[float] = None
    """When the heartbeat timeout declares the death (death_s +
    timeout)."""
    completed_cells: int = 0
    lost_placements: int = 0
    busy_s: float = field(default=0.0)
    """Virtual seconds of lane time spent on completed cells."""

    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def speed(self) -> float:
        """Effective service speed (SKU speed over straggler slowdown)."""
        return self.node.speed_factor / self.straggler_factor

    @property
    def is_straggler(self) -> bool:
        return self.straggler_factor > 1.0

    def alive_at(self, t_s: float) -> bool:
        """Ground truth: is the node actually up at ``t_s``?"""
        return self.death_s is None or t_s < self.death_s

    def accepts_at(self, t_s: float) -> bool:
        """Scheduler view: may work be dispatched here at ``t_s``?
        True until the death is *detected* — the detection window is
        part of the fault model, not an optimisation target."""
        return self.detect_s is None or t_s < self.detect_s
