"""Workload abstractions: characterization vectors and phase structure.

A workload is described to the simulated platform the same way a real
binary presents itself to real hardware: as a sequence of execution
*phases*, each with an architecture-neutral characterization of its
microarchitectural behaviour (instruction mix, locality, predictability,
bandwidth demand, …).  The :mod:`repro.hardware.microarch` model turns a
characterization plus an operating point into PMC event rates; the
:mod:`repro.hardware.power` model turns the same activity into watts.

Two *latent* fields deserve a note: ``latent_efficiency`` and
``uop_expansion`` influence power but are invisible to every counter.
They model what the paper calls "the high intricacy of the x86 CISC
architecture" — behaviour a top-down statistical model cannot observe —
and are what generates the generalization gap between training scenarios
(Fig. 4) and the ≈7.5 % MAPE floor (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Characterization", "PhaseSpec", "Workload", "StaticWorkload"]


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_nonneg(name: str, value: float) -> None:
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class Characterization:
    """Architecture-neutral description of one execution phase.

    All "``*_frac``" fields are fractions of the enclosing quantity;
    "``*_rate``/``*_ratio``" fields are per-event probabilities;
    "``*_per_kinst``" fields are events per thousand instructions.
    """

    # --- core throughput ------------------------------------------------
    ipc_base: float = 1.0
    """Plateau IPC absent memory stalls (issue width is 4)."""

    # --- instruction mix --------------------------------------------------
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.15
    fp_frac: float = 0.20
    vector_width: int = 1
    """SIMD width of the FP stream: 1 (scalar), 2 (SSE) or 4 (AVX)."""

    # --- branch behaviour ---------------------------------------------------
    branch_cond_frac: float = 0.85
    """Conditional branches as a fraction of all branches."""
    branch_taken_frac: float = 0.55
    """Taken fraction of conditional branches."""
    branch_mispred_rate: float = 0.02
    """Mispredictions per conditional branch."""

    # --- memory hierarchy ------------------------------------------------
    l1d_load_miss_rate: float = 0.03
    """L1D misses per load."""
    l1d_store_miss_rate: float = 0.02
    """L1D misses per store."""
    l1i_miss_per_kinst: float = 0.5
    """L1I misses per 1000 instructions (code footprint)."""
    l2_miss_ratio: float = 0.30
    """L2 misses per L2 access."""
    l3_miss_ratio: float = 0.30
    """Demand L3 misses per L3 access."""
    prefetch_coverage: float = 0.60
    """Fraction of DRAM fills brought in by the hardware prefetcher."""
    writeback_ratio: float = 0.30
    """Dirty evictions (DRAM writes) per DRAM fill."""
    tlb_dm_per_kinst: float = 0.3
    """Data TLB misses per 1000 instructions."""
    tlb_im_per_kinst: float = 0.02
    """Instruction TLB misses per 1000 instructions."""
    mlp: float = 4.0
    """Memory-level parallelism: overlapping outstanding misses."""
    numa_remote_frac: float = 0.0
    """Fraction of DRAM accesses served by the remote socket."""

    # --- coherence ---------------------------------------------------------
    sharing_factor: float = 0.05
    """Inter-thread cache-line sharing intensity (drives snoops)."""

    # --- latent (invisible to counters) -------------------------------------
    latent_efficiency: float = 1.0
    """Multiplier on dynamic core power that no counter observes
    (circuit-level switching-factor differences between codes)."""
    uop_expansion: float = 1.1
    """Micro-ops per instruction (CISC decode intricacy)."""

    def __post_init__(self) -> None:
        _check_nonneg("ipc_base", self.ipc_base)
        if self.ipc_base > 4.0:
            raise ValueError(f"ipc_base cannot exceed issue width 4, got {self.ipc_base}")
        for name in (
            "load_frac",
            "store_frac",
            "branch_frac",
            "fp_frac",
            "branch_cond_frac",
            "branch_taken_frac",
            "branch_mispred_rate",
            "l1d_load_miss_rate",
            "l1d_store_miss_rate",
            "l2_miss_ratio",
            "l3_miss_ratio",
            "prefetch_coverage",
            "numa_remote_frac",
            "sharing_factor",
        ):
            _check_unit(name, getattr(self, name))
        mix = self.load_frac + self.store_frac + self.branch_frac
        if mix > 1.0 + 1e-9:
            raise ValueError(
                f"load+store+branch fractions exceed 1 ({mix:.3f})"
            )
        for name in (
            "l1i_miss_per_kinst",
            "tlb_dm_per_kinst",
            "tlb_im_per_kinst",
            "writeback_ratio",
        ):
            _check_nonneg(name, getattr(self, name))
        if self.vector_width not in (1, 2, 4):
            raise ValueError(f"vector_width must be 1, 2 or 4, got {self.vector_width}")
        if not 1.0 <= self.mlp <= 16.0:
            raise ValueError(f"mlp must be in [1, 16], got {self.mlp}")
        if not 0.3 <= self.latent_efficiency <= 2.0:
            raise ValueError(
                f"latent_efficiency out of plausible range: {self.latent_efficiency}"
            )
        if not 1.0 <= self.uop_expansion <= 3.0:
            raise ValueError(f"uop_expansion must be in [1, 3], got {self.uop_expansion}")

    def with_updates(self, **kwargs) -> "Characterization":
        """Functional update (dataclasses.replace with validation)."""
        return replace(self, **kwargs)

    @staticmethod
    def blend(
        parts: Sequence[Tuple["Characterization", float]]
    ) -> "Characterization":
        """Weight-average several characterizations (phase mixing).

        ``vector_width`` is taken from the heaviest component since it
        is categorical; everything else blends linearly.
        """
        if not parts:
            raise ValueError("cannot blend zero characterizations")
        total = sum(w for _, w in parts)
        if total <= 0:
            raise ValueError("blend weights must sum to a positive value")
        heaviest = max(parts, key=lambda p: p[1])[0]
        values: Dict[str, float] = {}
        for f in fields(Characterization):
            if f.name == "vector_width":
                values[f.name] = heaviest.vector_width
                continue
            values[f.name] = (
                sum(getattr(c, f.name) * w for c, w in parts) / total
            )
        return Characterization(**values)


@dataclass(frozen=True)
class PhaseSpec:
    """One timed region of a workload's execution.

    Phase boundaries are what Score-P instrumentation sees as enter /
    leave events; the phase profile of Section III-A aggregates metrics
    between them.
    """

    name: str
    duration_s: float
    characterization: Characterization
    active_threads: int
    weight: float = 1.0
    """Relative prominence used when summarizing a workload."""

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"phase duration must be positive, got {self.duration_s}")
        if self.active_threads < 0:
            raise ValueError("active_threads cannot be negative")


class Workload:
    """Base class for everything the platform can execute.

    Subclasses implement :meth:`phases`, returning the timed phase
    sequence for a given thread count.  ``suite`` tags the origin
    ("roco2", "spec_omp2012", "synthetic") which the scenario analysis
    of Section IV-B splits on.
    """

    #: Unique name used in traces, datasets and reports.
    name: str = "workload"
    #: Suite tag ("roco2" | "spec_omp2012" | "synthetic").
    suite: str = "synthetic"
    #: Thread counts this workload is normally run with.
    default_thread_counts: Tuple[int, ...] = (24,)

    def phases(self, threads: int) -> List[PhaseSpec]:
        """Phase sequence when executed with ``threads`` threads."""
        raise NotImplementedError

    def validate_threads(self, threads: int, max_threads: int) -> None:
        if not 1 <= threads <= max_threads:
            raise ValueError(
                f"{self.name}: thread count {threads} outside [1, {max_threads}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} suite={self.suite!r}>"


class StaticWorkload(Workload):
    """A single-phase workload with a fixed characterization.

    This is the shape of the roco2 kernels: one homogeneous loop,
    executed for a fixed wall time at a chosen thread count.
    """

    def __init__(
        self,
        name: str,
        characterization: Characterization,
        *,
        suite: str = "synthetic",
        duration_s: float = 10.0,
        default_thread_counts: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.name = name
        self.suite = suite
        self.duration_s = duration_s
        self.characterization = characterization
        if default_thread_counts is not None:
            self.default_thread_counts = default_thread_counts

    def phases(self, threads: int) -> List[PhaseSpec]:
        return [
            PhaseSpec(
                name=f"{self.name}.loop",
                duration_s=self.duration_s,
                characterization=self.characterization,
                active_threads=threads,
            )
        ]
