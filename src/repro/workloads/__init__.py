"""Workload substrate: roco2 kernels, simulated SPEC OMP2012, and a
randomized workload generator."""

from repro.workloads.base import (
    Characterization,
    PhaseSpec,
    StaticWorkload,
    Workload,
)
from repro.workloads.generator import (
    DEFAULT_SPACE,
    WIDE_SPACE,
    GeneratorSpace,
    generate_workloads,
)
from repro.workloads.registry import SUITES, all_workloads, get_workload, suite
from repro.workloads.roco2 import (
    ROCO2_KERNELS,
    ROCO2_THREAD_COUNTS,
    IdleWorkload,
    roco2_suite,
)
from repro.workloads.spec_omp2012 import (
    EXCLUDED_BENCHMARKS,
    SPEC_OMP2012_BENCHMARKS,
    SpecBenchmark,
    spec_omp2012_suite,
)

__all__ = [
    "Characterization",
    "PhaseSpec",
    "Workload",
    "StaticWorkload",
    "IdleWorkload",
    "ROCO2_KERNELS",
    "ROCO2_THREAD_COUNTS",
    "roco2_suite",
    "SpecBenchmark",
    "SPEC_OMP2012_BENCHMARKS",
    "EXCLUDED_BENCHMARKS",
    "spec_omp2012_suite",
    "GeneratorSpace",
    "generate_workloads",
    "DEFAULT_SPACE",
    "WIDE_SPACE",
    "all_workloads",
    "get_workload",
    "suite",
    "SUITES",
]
