"""Workload registry: name → workload lookup and suite definitions."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.workloads.base import Workload
from repro.workloads.roco2 import roco2_suite
from repro.workloads.spec_omp2012 import spec_omp2012_suite

__all__ = ["all_workloads", "get_workload", "suite", "SUITES"]

#: Known suite names.
SUITES = ("roco2", "spec_omp2012")


def all_workloads() -> List[Workload]:
    """Every workload of the paper's evaluation (roco2 + SPEC)."""
    return roco2_suite() + spec_omp2012_suite()


def suite(name: str) -> List[Workload]:
    """All workloads of one suite."""
    if name == "roco2":
        return roco2_suite()
    if name == "spec_omp2012":
        return spec_omp2012_suite()
    raise KeyError(f"unknown suite {name!r}; known: {SUITES}")


def get_workload(name: str) -> Workload:
    """Look up a single workload by name."""
    table: Dict[str, Workload] = {w.name: w for w in all_workloads()}
    try:
        return table[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(table)}"
        ) from None
