"""The roco2 synthetic workload kernels.

roco2 (Bielert 2015) is TU Dresden's synthetic workload generator: a
set of small, homogeneous kernels executed for fixed wall-time slices
at configurable thread counts, designed to put the machine into
well-defined utilization states.  The paper uses these kernels for
counter selection, model training, and the scenario analysis.

Kernel characterizations are chosen to match what the respective inner
loops do on a Haswell core.  Each kernel is a single phase (perfectly
homogeneous by construction), which is precisely why the paper finds
synthetic-only training insufficient: the characterization vectors sit
in a low-dimensional corner of the space real applications occupy
(Section IV-B, scenario 2; Section V, Table IV).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import Characterization, PhaseSpec, StaticWorkload, Workload

__all__ = ["IdleWorkload", "ROCO2_KERNELS", "roco2_suite", "ROCO2_THREAD_COUNTS"]

#: Thread counts the roco2 campaign sweeps (the paper varies thread
#: counts for "the short-running roco2 kernels").
ROCO2_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24)


class IdleWorkload(Workload):
    """The idle system: no user threads, OS housekeeping only.

    Anchors the static + system power terms (γ·V and δ·Z of Equation 1)
    at the bottom of the power range.
    """

    name = "idle"
    suite = "roco2"
    default_thread_counts = (1,)

    def __init__(self, duration_s: float = 10.0) -> None:
        self.duration_s = duration_s

    def phases(self, threads: int) -> List[PhaseSpec]:
        # Thread count is irrelevant while idling; zero cores are active.
        return [
            PhaseSpec(
                name="idle.wait",
                duration_s=self.duration_s,
                characterization=Characterization(ipc_base=0.4),
                active_threads=0,
            )
        ]


def _kernel(name: str, char: Characterization) -> StaticWorkload:
    return StaticWorkload(
        name,
        char,
        suite="roco2",
        duration_s=10.0,
        default_thread_counts=ROCO2_THREAD_COUNTS,
    )


#: The nine active kernels plus idle.  Characterizations document what
#: each inner loop exercises.
ROCO2_KERNELS: Tuple[Workload, ...] = (
    IdleWorkload(),
    # Spin on a flag: branch-dominated, perfectly predicted, core-only.
    _kernel(
        "busywait",
        Characterization(
            ipc_base=1.3,
            load_frac=0.20,
            store_frac=0.01,
            branch_frac=0.30,
            fp_frac=0.0,
            branch_mispred_rate=0.001,
            l1d_load_miss_rate=0.001,
            l1d_store_miss_rate=0.001,
            l1i_miss_per_kinst=0.01,
            l2_miss_ratio=0.05,
            l3_miss_ratio=0.05,
            prefetch_coverage=0.10,
            writeback_ratio=0.05,
            tlb_dm_per_kinst=0.005,
            tlb_im_per_kinst=0.001,
            latent_efficiency=0.99,
            uop_expansion=1.05,
        ),
    ),
    # Dense integer/FP arithmetic, SSE, register-resident.
    _kernel(
        "compute",
        Characterization(
            ipc_base=2.8,
            load_frac=0.18,
            store_frac=0.06,
            branch_frac=0.10,
            fp_frac=0.45,
            vector_width=2,
            branch_mispred_rate=0.012,
            l1d_load_miss_rate=0.004,
            l1d_store_miss_rate=0.003,
            l1i_miss_per_kinst=0.05,
            l2_miss_ratio=0.10,
            l3_miss_ratio=0.10,
            prefetch_coverage=0.30,
            writeback_ratio=0.10,
            tlb_dm_per_kinst=0.02,
            tlb_im_per_kinst=0.002,
            latent_efficiency=1.01,
            uop_expansion=1.08,
        ),
    ),
    # libm sine in a loop: scalar FP, long dependency chains.
    _kernel(
        "sinus",
        Characterization(
            ipc_base=1.7,
            load_frac=0.15,
            store_frac=0.05,
            branch_frac=0.12,
            fp_frac=0.50,
            vector_width=1,
            branch_mispred_rate=0.004,
            l1d_load_miss_rate=0.002,
            l1d_store_miss_rate=0.002,
            l1i_miss_per_kinst=0.05,
            l2_miss_ratio=0.08,
            l3_miss_ratio=0.08,
            prefetch_coverage=0.20,
            writeback_ratio=0.08,
            tlb_dm_per_kinst=0.01,
            tlb_im_per_kinst=0.002,
            latent_efficiency=1.00,
            uop_expansion=1.10,
        ),
    ),
    # Hardware square root: low throughput, divider-bound.
    _kernel(
        "sqrt",
        Characterization(
            ipc_base=0.55,
            load_frac=0.10,
            store_frac=0.04,
            branch_frac=0.08,
            fp_frac=0.60,
            vector_width=1,
            branch_mispred_rate=0.002,
            l1d_load_miss_rate=0.002,
            l1d_store_miss_rate=0.002,
            l1i_miss_per_kinst=0.02,
            l2_miss_ratio=0.05,
            l3_miss_ratio=0.05,
            prefetch_coverage=0.15,
            writeback_ratio=0.05,
            tlb_dm_per_kinst=0.005,
            tlb_im_per_kinst=0.001,
            latent_efficiency=1.00,
            uop_expansion=1.05,
        ),
    ),
    # Blocked DGEMM: AVX, cache-blocked, moderate traffic.
    _kernel(
        "matmul",
        Characterization(
            ipc_base=3.2,
            load_frac=0.33,
            store_frac=0.08,
            branch_frac=0.06,
            fp_frac=0.52,
            vector_width=4,
            branch_mispred_rate=0.003,
            l1d_load_miss_rate=0.035,
            l1d_store_miss_rate=0.02,
            l1i_miss_per_kinst=0.03,
            l2_miss_ratio=0.25,
            l3_miss_ratio=0.12,
            prefetch_coverage=0.80,
            writeback_ratio=0.25,
            tlb_dm_per_kinst=0.15,
            tlb_im_per_kinst=0.002,
            mlp=6.0,
            latent_efficiency=1.02,
            uop_expansion=1.05,
        ),
    ),
    # Streaming read of a >LLC buffer.
    _kernel(
        "memory_read",
        Characterization(
            ipc_base=1.0,
            load_frac=0.50,
            store_frac=0.02,
            branch_frac=0.08,
            fp_frac=0.05,
            branch_mispred_rate=0.002,
            l1d_load_miss_rate=0.24,
            l1d_store_miss_rate=0.05,
            l1i_miss_per_kinst=0.02,
            l2_miss_ratio=0.85,
            l3_miss_ratio=0.90,
            prefetch_coverage=0.93,
            writeback_ratio=0.03,
            tlb_dm_per_kinst=1.2,
            tlb_im_per_kinst=0.001,
            mlp=9.0,
            latent_efficiency=0.99,
            uop_expansion=1.05,
        ),
    ),
    # Streaming write (non-temporal-ish): write-dominated traffic.
    _kernel(
        "memory_write",
        Characterization(
            ipc_base=1.0,
            load_frac=0.05,
            store_frac=0.50,
            branch_frac=0.08,
            fp_frac=0.02,
            branch_mispred_rate=0.002,
            l1d_load_miss_rate=0.05,
            l1d_store_miss_rate=0.24,
            l1i_miss_per_kinst=0.02,
            l2_miss_ratio=0.85,
            l3_miss_ratio=0.88,
            prefetch_coverage=0.80,
            writeback_ratio=0.95,
            tlb_dm_per_kinst=1.2,
            tlb_im_per_kinst=0.001,
            mlp=7.0,
            latent_efficiency=0.99,
            uop_expansion=1.05,
        ),
    ),
    # memcpy of a >LLC buffer: mixed read/write streams.
    _kernel(
        "memory_copy",
        Characterization(
            ipc_base=1.1,
            load_frac=0.34,
            store_frac=0.33,
            branch_frac=0.07,
            fp_frac=0.0,
            branch_mispred_rate=0.002,
            l1d_load_miss_rate=0.18,
            l1d_store_miss_rate=0.18,
            l1i_miss_per_kinst=0.02,
            l2_miss_ratio=0.85,
            l3_miss_ratio=0.88,
            prefetch_coverage=0.90,
            writeback_ratio=0.50,
            tlb_dm_per_kinst=1.5,
            tlb_im_per_kinst=0.001,
            mlp=8.0,
            latent_efficiency=1.00,
            uop_expansion=1.04,
        ),
    ),
    # Packed double add loop: peak AVX issue, register-resident.
    _kernel(
        "addpd",
        Characterization(
            ipc_base=3.6,
            load_frac=0.12,
            store_frac=0.04,
            branch_frac=0.06,
            fp_frac=0.62,
            vector_width=4,
            branch_mispred_rate=0.001,
            l1d_load_miss_rate=0.001,
            l1d_store_miss_rate=0.001,
            l1i_miss_per_kinst=0.01,
            l2_miss_ratio=0.05,
            l3_miss_ratio=0.05,
            prefetch_coverage=0.10,
            writeback_ratio=0.05,
            tlb_dm_per_kinst=0.005,
            tlb_im_per_kinst=0.001,
            latent_efficiency=1.02,
            uop_expansion=1.02,
        ),
    ),
)


def roco2_suite() -> List[Workload]:
    """All roco2 kernels including idle, in canonical order."""
    return list(ROCO2_KERNELS)
