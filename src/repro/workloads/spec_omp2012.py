"""Simulated SPEC OMP2012 benchmark suite.

The paper validates on SPEC OMP2012 (Müller et al. 2012) minus the
four benchmarks that failed to build or crashed on the test system
(kdtree, imagick, smithwa, botsspar).  The suite is commercial and
requires real hardware; per the substitution rule we model the ten
remaining benchmarks as *phase-structured* workloads whose base
characterizations follow each code's published behaviour (compute vs
memory bound, locality, code footprint, NUMA sensitivity).

Two properties distinguish these from the roco2 kernels and drive the
paper's scenario analysis:

* **Internal variability** — every benchmark runs through several
  phases perturbed around its base characterization ("the SPEC
  workloads have more internal variability that can even out the error
  on overall average power estimation", Section IV-B).
* **Latent complexity** — real applications have circuit-level
  behaviour synthetic loops do not reach.  The per-benchmark
  ``latent_efficiency`` and ``uop_expansion`` values sit in a different
  range than roco2's, which is what produces the systematic biases of
  Fig. 5a when training only on synthetic workloads (md and nab, with
  the lowest latent efficiency, are consistently overestimated).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.seeding import derive_rng
from repro.workloads.base import Characterization, PhaseSpec, Workload

__all__ = ["SpecBenchmark", "SPEC_OMP2012_BENCHMARKS", "spec_omp2012_suite", "EXCLUDED_BENCHMARKS"]

#: Benchmarks excluded in the paper (failed to build / crashed).
EXCLUDED_BENCHMARKS: Tuple[str, ...] = ("kdtree", "imagick", "smithwa", "botsspar")

#: Namespace seed for the deterministic phase-structure generation.
_SPEC_SEED = 0x53504543  # "SPEC"

# Fields perturbed per phase, with relative jitter strength and hard
# clipping bounds.  ``latent_efficiency`` and ``uop_expansion`` are
# deliberately NOT in this list: they are per-benchmark constants.
_PHASE_JITTER: Dict[str, Tuple[float, float, float]] = {
    # name: (relative sigma, lower clip, upper clip)
    "ipc_base": (0.18, 0.05, 3.9),
    "l1d_load_miss_rate": (0.30, 0.0005, 0.5),
    "l1d_store_miss_rate": (0.30, 0.0005, 0.5),
    "l1i_miss_per_kinst": (0.30, 0.001, 20.0),
    "l2_miss_ratio": (0.20, 0.01, 0.95),
    "l3_miss_ratio": (0.20, 0.01, 0.95),
    "prefetch_coverage": (0.10, 0.05, 0.95),
    "writeback_ratio": (0.20, 0.01, 1.5),
    "tlb_dm_per_kinst": (0.35, 0.001, 30.0),
    "tlb_im_per_kinst": (0.35, 0.0001, 10.0),
    "branch_mispred_rate": (0.25, 0.0005, 0.25),
    "mlp": (0.15, 1.0, 16.0),
}


def _perturb_phase(
    base: Characterization, rng: np.random.Generator, strength: float
) -> Characterization:
    """Jitter a characterization multiplicatively (lognormal factors)."""
    updates: Dict[str, float] = {}
    for name, (sigma, lo, hi) in _PHASE_JITTER.items():
        factor = float(np.exp(rng.normal(0.0, sigma * strength)))
        updates[name] = float(np.clip(getattr(base, name) * factor, lo, hi))
    return base.with_updates(**updates)


class SpecBenchmark(Workload):
    """One simulated SPEC OMP2012 benchmark.

    The phase structure (count, durations, perturbations, occasional
    serial regions) is generated deterministically from the benchmark
    name, so the same workload objects are recreated in every process.
    """

    suite = "spec_omp2012"
    default_thread_counts = (24,)

    def __init__(
        self,
        name: str,
        base: Characterization,
        *,
        n_phases: int = 5,
        phase_duration_s: Tuple[float, float] = (12.0, 35.0),
        variability: float = 1.0,
        serial_fraction: float = 0.05,
    ) -> None:
        if n_phases < 1:
            raise ValueError("need at least one phase")
        self.name = name
        self.base = base
        self.n_phases = n_phases
        self.phase_duration_s = phase_duration_s
        self.variability = variability
        self.serial_fraction = serial_fraction
        self._phase_cache: Dict[int, List[PhaseSpec]] = {}

    def phases(self, threads: int) -> List[PhaseSpec]:
        if threads in self._phase_cache:
            return self._phase_cache[threads]
        rng = derive_rng(_SPEC_SEED, self.name, threads)
        lo, hi = self.phase_duration_s
        out: List[PhaseSpec] = []
        for i in range(self.n_phases):
            char = _perturb_phase(self.base, rng, self.variability)
            duration = float(rng.uniform(lo, hi))
            out.append(
                PhaseSpec(
                    name=f"{self.name}.phase{i}",
                    duration_s=duration,
                    characterization=char,
                    active_threads=threads,
                )
            )
            # Occasionally a serial region (initialization, reduction,
            # I/O) — task-parallel codes have visible ones.
            if rng.random() < self.serial_fraction and threads > 1:
                out.append(
                    PhaseSpec(
                        name=f"{self.name}.serial{i}",
                        duration_s=float(rng.uniform(1.0, 4.0)),
                        characterization=char.with_updates(
                            ipc_base=min(self.base.ipc_base, 1.2)
                        ),
                        active_threads=1,
                        weight=0.2,
                    )
                )
        self._phase_cache[threads] = out
        return out


def _spec(
    name: str,
    *,
    n_phases: int = 5,
    variability: float = 1.0,
    serial_fraction: float = 0.05,
    **char_kwargs,
) -> SpecBenchmark:
    return SpecBenchmark(
        name,
        Characterization(**char_kwargs),
        n_phases=n_phases,
        variability=variability,
        serial_fraction=serial_fraction,
    )


#: The ten benchmarks the paper evaluates (OMP2012 minus exclusions).
SPEC_OMP2012_BENCHMARKS: Tuple[SpecBenchmark, ...] = (
    # 350.md — molecular dynamics (Fortran): compute bound, hard-to-
    # predict neighbour-list branches.  Lowest latent efficiency →
    # consistently overestimated in scenario 2 (Fig. 5a).
    _spec(
        "md",
        ipc_base=2.1,
        load_frac=0.26,
        store_frac=0.08,
        branch_frac=0.14,
        fp_frac=0.42,
        vector_width=2,
        branch_mispred_rate=0.025,
        l1d_load_miss_rate=0.012,
        l1d_store_miss_rate=0.008,
        l1i_miss_per_kinst=0.4,
        l2_miss_ratio=0.18,
        l3_miss_ratio=0.20,
        prefetch_coverage=0.45,
        writeback_ratio=0.20,
        tlb_dm_per_kinst=0.3,
        tlb_im_per_kinst=0.03,
        latent_efficiency=0.84,
        uop_expansion=1.12,
    ),
    # 363.swim — shallow water model: classic streaming, memory wall.
    _spec(
        "swim",
        ipc_base=1.6,
        load_frac=0.38,
        store_frac=0.14,
        branch_frac=0.07,
        fp_frac=0.40,
        vector_width=2,
        branch_mispred_rate=0.004,
        l1d_load_miss_rate=0.11,
        l1d_store_miss_rate=0.10,
        l1i_miss_per_kinst=0.1,
        l2_miss_ratio=0.70,
        l3_miss_ratio=0.75,
        prefetch_coverage=0.88,
        writeback_ratio=0.55,
        tlb_dm_per_kinst=1.8,
        tlb_im_per_kinst=0.01,
        mlp=8.0,
        numa_remote_frac=0.15,
        latent_efficiency=1.07,
        uop_expansion=1.15,
    ),
    # 367.imagick excluded; 359.botsalgn — protein alignment (tasks):
    # integer, branchy, cache-resident.
    _spec(
        "botsalgn",
        ipc_base=1.9,
        load_frac=0.28,
        store_frac=0.10,
        branch_frac=0.18,
        fp_frac=0.08,
        branch_mispred_rate=0.035,
        l1d_load_miss_rate=0.008,
        l1d_store_miss_rate=0.006,
        l1i_miss_per_kinst=0.8,
        l2_miss_ratio=0.15,
        l3_miss_ratio=0.18,
        prefetch_coverage=0.35,
        writeback_ratio=0.15,
        tlb_dm_per_kinst=0.2,
        tlb_im_per_kinst=0.05,
        serial_fraction=0.25,
        latent_efficiency=0.90,
        uop_expansion=1.25,
    ),
    # 360.ilbdc — lattice Boltzmann: indirect addressing defeats the
    # prefetcher; worst MAPE in the paper's Fig. 3.
    _spec(
        "ilbdc",
        ipc_base=1.2,
        load_frac=0.42,
        store_frac=0.16,
        branch_frac=0.06,
        fp_frac=0.30,
        vector_width=1,
        branch_mispred_rate=0.008,
        l1d_load_miss_rate=0.16,
        l1d_store_miss_rate=0.13,
        l1i_miss_per_kinst=0.1,
        l2_miss_ratio=0.75,
        l3_miss_ratio=0.80,
        prefetch_coverage=0.35,
        writeback_ratio=0.60,
        tlb_dm_per_kinst=2.5,
        tlb_im_per_kinst=0.01,
        mlp=5.5,
        numa_remote_frac=0.30,
        variability=1.2,
        latent_efficiency=1.11,
        uop_expansion=1.20,
    ),
    # 370.mgrid331 — multigrid: alternating compute/memory sweeps.
    _spec(
        "mgrid331",
        ipc_base=1.9,
        load_frac=0.34,
        store_frac=0.11,
        branch_frac=0.06,
        fp_frac=0.42,
        vector_width=2,
        branch_mispred_rate=0.005,
        l1d_load_miss_rate=0.06,
        l1d_store_miss_rate=0.05,
        l1i_miss_per_kinst=0.1,
        l2_miss_ratio=0.45,
        l3_miss_ratio=0.50,
        prefetch_coverage=0.75,
        writeback_ratio=0.40,
        tlb_dm_per_kinst=1.0,
        tlb_im_per_kinst=0.01,
        mlp=6.0,
        variability=1.5,
        n_phases=6,
        latent_efficiency=1.06,
        uop_expansion=1.18,
    ),
    # 357.bt331 — block tridiagonal CFD: fp heavy, blocked, moderate
    # traffic.
    _spec(
        "bt331",
        ipc_base=2.4,
        load_frac=0.30,
        store_frac=0.10,
        branch_frac=0.08,
        fp_frac=0.48,
        vector_width=2,
        branch_mispred_rate=0.006,
        l1d_load_miss_rate=0.025,
        l1d_store_miss_rate=0.018,
        l1i_miss_per_kinst=0.3,
        l2_miss_ratio=0.30,
        l3_miss_ratio=0.28,
        prefetch_coverage=0.65,
        writeback_ratio=0.30,
        tlb_dm_per_kinst=0.5,
        tlb_im_per_kinst=0.02,
        latent_efficiency=0.91,
        uop_expansion=1.22,
    ),
    # 351.bwaves — blast waves CFD: bandwidth bound, NUMA sensitive.
    _spec(
        "bwaves",
        ipc_base=1.7,
        load_frac=0.40,
        store_frac=0.12,
        branch_frac=0.05,
        fp_frac=0.45,
        vector_width=2,
        branch_mispred_rate=0.003,
        l1d_load_miss_rate=0.09,
        l1d_store_miss_rate=0.07,
        l1i_miss_per_kinst=0.1,
        l2_miss_ratio=0.65,
        l3_miss_ratio=0.70,
        prefetch_coverage=0.85,
        writeback_ratio=0.45,
        tlb_dm_per_kinst=1.5,
        tlb_im_per_kinst=0.01,
        mlp=7.0,
        numa_remote_frac=0.25,
        latent_efficiency=1.10,
        uop_expansion=1.15,
    ),
    # 362.fma3d — crash simulation: huge code footprint, iTLB/i-cache
    # pressure, irregular data access.
    _spec(
        "fma3d",
        ipc_base=1.5,
        load_frac=0.30,
        store_frac=0.12,
        branch_frac=0.13,
        fp_frac=0.30,
        vector_width=1,
        branch_mispred_rate=0.025,
        l1d_load_miss_rate=0.03,
        l1d_store_miss_rate=0.02,
        l1i_miss_per_kinst=4.0,
        l2_miss_ratio=0.35,
        l3_miss_ratio=0.35,
        prefetch_coverage=0.40,
        writeback_ratio=0.30,
        tlb_dm_per_kinst=1.2,
        tlb_im_per_kinst=0.8,
        variability=1.3,
        latent_efficiency=0.89,
        uop_expansion=1.45,
    ),
    # 371.applu331 — SSOR solver: mixed, moderate everything.
    _spec(
        "applu331",
        ipc_base=2.0,
        load_frac=0.32,
        store_frac=0.11,
        branch_frac=0.08,
        fp_frac=0.44,
        vector_width=2,
        branch_mispred_rate=0.008,
        l1d_load_miss_rate=0.04,
        l1d_store_miss_rate=0.03,
        l1i_miss_per_kinst=0.3,
        l2_miss_ratio=0.40,
        l3_miss_ratio=0.40,
        prefetch_coverage=0.70,
        writeback_ratio=0.35,
        tlb_dm_per_kinst=0.8,
        tlb_im_per_kinst=0.03,
        n_phases=6,
        latent_efficiency=0.94,
        uop_expansion=1.20,
    ),
    # 352.nab — molecular modeling: compute leaning, second-lowest
    # latent efficiency → overestimated alongside md in Fig. 5a.
    _spec(
        "nab",
        ipc_base=2.2,
        load_frac=0.27,
        store_frac=0.09,
        branch_frac=0.12,
        fp_frac=0.40,
        vector_width=2,
        branch_mispred_rate=0.012,
        l1d_load_miss_rate=0.015,
        l1d_store_miss_rate=0.010,
        l1i_miss_per_kinst=0.5,
        l2_miss_ratio=0.20,
        l3_miss_ratio=0.22,
        prefetch_coverage=0.50,
        writeback_ratio=0.22,
        tlb_dm_per_kinst=0.4,
        tlb_im_per_kinst=0.04,
        latent_efficiency=0.85,
        uop_expansion=1.12,
    ),
)


def spec_omp2012_suite() -> List[Workload]:
    """The ten simulated SPEC OMP2012 benchmarks, canonical order."""
    return list(SPEC_OMP2012_BENCHMARKS)
