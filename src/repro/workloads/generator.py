"""Randomized synthetic workload generation.

The paper trains on a fixed kernel set, but its conclusion — "the
selection of model training workloads has considerable impact on the
accuracy and stability of the model" — invites experimentation with
*broader* synthetic coverage.  This generator samples characterization
vectors from configurable ranges, giving the ablation studies a way to
ask: how much synthetic diversity would have been enough?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.seeding import DEFAULT_SEED, derive_rng
from repro.workloads.base import Characterization, StaticWorkload, Workload

__all__ = ["GeneratorSpace", "generate_workloads", "DEFAULT_SPACE", "WIDE_SPACE"]


@dataclass(frozen=True)
class GeneratorSpace:
    """Sampling ranges for random characterizations.

    Each field is a (low, high) range sampled uniformly (log-uniformly
    for rates spanning decades).
    """

    ipc_base: Tuple[float, float] = (0.3, 3.6)
    load_frac: Tuple[float, float] = (0.05, 0.45)
    store_frac: Tuple[float, float] = (0.02, 0.30)
    branch_frac: Tuple[float, float] = (0.04, 0.25)
    fp_frac: Tuple[float, float] = (0.0, 0.6)
    branch_mispred_rate: Tuple[float, float] = (0.001, 0.08)
    l1d_load_miss_rate: Tuple[float, float] = (0.001, 0.25)
    l1d_store_miss_rate: Tuple[float, float] = (0.001, 0.25)
    l1i_miss_per_kinst: Tuple[float, float] = (0.01, 5.0)
    l2_miss_ratio: Tuple[float, float] = (0.05, 0.9)
    l3_miss_ratio: Tuple[float, float] = (0.05, 0.9)
    prefetch_coverage: Tuple[float, float] = (0.1, 0.95)
    writeback_ratio: Tuple[float, float] = (0.02, 1.0)
    tlb_dm_per_kinst: Tuple[float, float] = (0.005, 5.0)
    tlb_im_per_kinst: Tuple[float, float] = (0.001, 1.0)
    mlp: Tuple[float, float] = (2.0, 10.0)
    numa_remote_frac: Tuple[float, float] = (0.0, 0.4)
    latent_efficiency: Tuple[float, float] = (0.95, 1.05)
    uop_expansion: Tuple[float, float] = (1.02, 1.15)

    #: Fields sampled log-uniformly (they span decades).
    LOG_FIELDS = (
        "branch_mispred_rate",
        "l1d_load_miss_rate",
        "l1d_store_miss_rate",
        "l1i_miss_per_kinst",
        "tlb_dm_per_kinst",
        "tlb_im_per_kinst",
    )


#: Roughly the coverage of hand-written micro-kernels.
DEFAULT_SPACE = GeneratorSpace()

#: Application-like coverage including the latent dimensions — what a
#: "diverse enough" training set would need to span.
WIDE_SPACE = GeneratorSpace(
    latent_efficiency=(0.85, 1.15),
    uop_expansion=(1.05, 1.5),
)


def _sample_char(space: GeneratorSpace, rng: np.random.Generator) -> Characterization:
    values = {}
    for name in (
        "ipc_base",
        "load_frac",
        "store_frac",
        "branch_frac",
        "fp_frac",
        "branch_mispred_rate",
        "l1d_load_miss_rate",
        "l1d_store_miss_rate",
        "l1i_miss_per_kinst",
        "l2_miss_ratio",
        "l3_miss_ratio",
        "prefetch_coverage",
        "writeback_ratio",
        "tlb_dm_per_kinst",
        "tlb_im_per_kinst",
        "mlp",
        "numa_remote_frac",
        "latent_efficiency",
        "uop_expansion",
    ):
        lo, hi = getattr(space, name)
        if name in GeneratorSpace.LOG_FIELDS and lo > 0:
            values[name] = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        else:
            values[name] = float(rng.uniform(lo, hi))
    # Keep the instruction mix feasible.
    mix = values["load_frac"] + values["store_frac"] + values["branch_frac"]
    if mix > 0.95:
        scale = 0.95 / mix
        for key in ("load_frac", "store_frac", "branch_frac"):
            values[key] *= scale
    values["vector_width"] = int(rng.choice((1, 2, 4)))
    return Characterization(**values)


def generate_workloads(
    n: int,
    *,
    space: GeneratorSpace = DEFAULT_SPACE,
    seed: int = DEFAULT_SEED,
    duration_s: float = 10.0,
    thread_counts: Optional[Tuple[int, ...]] = None,
) -> List[Workload]:
    """Generate ``n`` random single-phase workloads.

    Deterministic in ``seed``; names encode the index so datasets built
    from generated suites are self-describing.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = derive_rng(seed, "workload-generator")
    out: List[Workload] = []
    for i in range(n):
        char = _sample_char(space, rng)
        out.append(
            StaticWorkload(
                f"gen{i:03d}",
                char,
                suite="synthetic",
                duration_s=duration_s,
                default_thread_counts=thread_counts or (1, 8, 16, 24),
            )
        )
    return out
