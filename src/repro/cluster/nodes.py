"""Simulated clusters: many nodes with manufacturing variation.

The paper's outlook: "Further investigation also includes the
adaptation of the model to a larger scale such that it can be applied
to peta- or exa-scale systems instead of individual nodes."

Real clusters are not N copies of one chip: process variation spreads
leakage and switching energy across sockets of the *same* SKU by
several percent, and every node carries its own sensor calibration.
:func:`build_cluster` materializes that: each node is a full
:class:`~repro.hardware.platform.Platform` whose power parameters are
drawn around the SKU nominals from the node-keyed random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hardware.config import HASWELL_EP_CONFIG, PlatformConfig
from repro.hardware.power import HASWELL_EP_POWER_PARAMS, PowerModelParams
from repro.hardware.platform import Platform
from repro.seeding import DEFAULT_SEED, derive_rng

__all__ = ["ClusterNode", "build_cluster", "NodeVariation"]


@dataclass(frozen=True)
class NodeVariation:
    """Relative sigmas of per-node manufacturing variation."""

    leakage_sigma: float = 0.06
    """Leakage spreads the most across dies of one SKU."""
    switching_sigma: float = 0.025
    """Dynamic energy per event varies mildly with process corner."""
    board_sigma: float = 0.05
    """Fans / VRs / DIMM population differences."""
    speed_sigma: float = 0.08
    """Lognormal spread of node service speed (turbo bins, memory
    population, firmware): the scheduler's work-stealing queue lets
    fast nodes pull proportionally more cells."""


@dataclass(frozen=True)
class ClusterNode:
    """One node: identity plus its personalized platform."""

    node_id: int
    hostname: str
    platform: Platform
    alive: bool = True
    """False when the node failed to respond during cluster discovery
    (hardware fault, drained by the scheduler — see the cluster fault
    model in :mod:`repro.faults`)."""
    slots: int = 1
    """Concurrent campaign cells this node can host (scheduler lanes)."""
    speed_factor: float = 1.0
    """Relative service speed (1.0 = SKU nominal); a cell's wall time
    on this node scales with ``1 / speed_factor``.  Capacity only —
    never touches the measured physics, which stay a pure function of
    ``(root_seed, cell)``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "" if self.alive else " DEAD"
        return f"<ClusterNode {self.hostname}{state}>"


def _vary_params(
    base: PowerModelParams,
    rng: np.random.Generator,
    variation: NodeVariation,
) -> PowerModelParams:
    """Draw one node's power parameters around the SKU nominals."""
    def factor(sigma: float) -> float:
        return float(np.exp(rng.normal(0.0, sigma)))

    switch = factor(variation.switching_sigma)
    return replace(
        base,
        leakage_w_per_v=base.leakage_w_per_v * factor(variation.leakage_sigma),
        e_core_active=base.e_core_active * switch,
        e_uop=base.e_uop * switch,
        p_uncore_base=base.p_uncore_base * factor(variation.switching_sigma),
        p_board_const_w=base.p_board_const_w * factor(variation.board_sigma),
    )


def build_cluster(
    n_nodes: int,
    *,
    cfg: PlatformConfig = HASWELL_EP_CONFIG,
    base_params: PowerModelParams = HASWELL_EP_POWER_PARAMS,
    variation: Optional[NodeVariation] = None,
    seed: int = DEFAULT_SEED,
    hostname_prefix: str = "node",
    faults: Optional[FaultPlan] = None,
    slots_per_node: int = 1,
) -> List[ClusterNode]:
    """Materialize ``n_nodes`` simulated nodes of one SKU.

    Deterministic in ``seed``; node ``i`` always gets the same die and
    the same service speed (a lognormal draw with
    ``variation.speed_sigma``, from the same node-keyed stream as its
    power parameters).  With a fault plan, each node is independently
    dead with ``dead_node_rate`` probability (drawn from the
    node-keyed fault stream, so which nodes die is also deterministic
    in the seed).
    """
    if n_nodes < 1:
        raise ValueError("a cluster needs at least one node")
    if slots_per_node < 1:
        raise ValueError("slots_per_node must be at least 1")
    variation = variation or NodeVariation()
    injector = (
        FaultInjector(faults, seed) if faults is not None else None
    )
    nodes = []
    for i in range(n_nodes):
        rng = derive_rng(seed, "cluster-node", i)
        params = _vary_params(base_params, rng, variation)
        speed = float(np.exp(rng.normal(0.0, variation.speed_sigma)))
        platform = Platform(
            cfg, params, seed=int(derive_rng(seed, "node-seed", i).integers(2**31))
        )
        alive = injector is None or not injector.node_is_dead(i)
        nodes.append(
            ClusterNode(
                node_id=i,
                hostname=f"{hostname_prefix}{i:03d}",
                platform=platform,
                alive=alive,
                slots=slots_per_node,
                speed_factor=speed,
            )
        )
    return nodes
