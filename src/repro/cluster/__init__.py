"""Cluster-scale power estimation (the paper's scaling outlook)."""

from repro.cluster.aggregate import (
    ClusterEstimate,
    NodeEstimate,
    estimate_cluster_power,
)
from repro.cluster.nodes import ClusterNode, NodeVariation, build_cluster

__all__ = [
    "ClusterNode",
    "NodeVariation",
    "build_cluster",
    "NodeEstimate",
    "ClusterEstimate",
    "estimate_cluster_power",
]
