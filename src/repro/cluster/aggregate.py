"""Cluster-level power estimation (the paper's scaling outlook).

Given a cluster of simulated nodes and a workload assignment, estimate
total cluster power with a PMC model and compare against the ground
truth.  Two modeling strategies are compared:

* **shared** — one model trained on a single reference node, applied to
  every node (what a site would deploy if per-node calibration is too
  expensive);
* **per-node** — the methodology re-run on every node (counter set kept
  fixed, coefficients refit per node).

Process variation makes the shared model systematically wrong on
individual nodes but surprisingly good in aggregate (per-node errors
partially cancel) — the quantitative version of the paper's "larger
scale" speculation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.campaign import run_campaign
from repro.acquisition.dataset import PowerDataset
from repro.cluster.nodes import ClusterNode
from repro.core.model import FittedPowerModel, PowerModel
from repro.faults.errors import NodeFailure
from repro.workloads.base import Workload

__all__ = ["NodeEstimate", "ClusterEstimate", "estimate_cluster_power"]


@dataclass(frozen=True)
class NodeEstimate:
    """Per-node truth vs estimate for one workload assignment."""

    hostname: str
    workload: str
    true_power_w: float
    estimated_w: float

    @property
    def error_w(self) -> float:
        return self.estimated_w - self.true_power_w

    @property
    def ape_percent(self) -> float:
        return abs(self.error_w) / self.true_power_w * 100.0


@dataclass(frozen=True)
class ClusterEstimate:
    """Aggregate over a node assignment."""

    nodes: Tuple[NodeEstimate, ...]
    strategy: str
    skipped_nodes: Tuple[str, ...] = ()
    """Hostnames excluded from the totals because the node was dead
    (only populated with ``on_dead_nodes="skip"``)."""

    @property
    def true_total_w(self) -> float:
        return sum(n.true_power_w for n in self.nodes)

    @property
    def estimated_total_w(self) -> float:
        return sum(n.estimated_w for n in self.nodes)

    @property
    def total_error_percent(self) -> float:
        return (
            abs(self.estimated_total_w - self.true_total_w)
            / self.true_total_w
            * 100.0
        )

    @property
    def mean_node_ape_percent(self) -> float:
        return float(np.mean([n.ape_percent for n in self.nodes]))

    @property
    def worst_node_ape_percent(self) -> float:
        return float(np.max([n.ape_percent for n in self.nodes]))


def _node_dataset(
    node: ClusterNode,
    workloads: Sequence[Workload],
    frequencies: Sequence[int],
    threads: int,
) -> PowerDataset:
    return run_campaign(
        node.platform,
        workloads,
        frequencies,
        thread_counts=[threads],
    )


def estimate_cluster_power(
    nodes: Sequence[ClusterNode],
    assignment: Dict[str, Workload],
    *,
    counters: Sequence[str],
    training_workloads: Sequence[Workload],
    frequencies_mhz: Sequence[int] = (1200, 2000, 2600),
    run_frequency_mhz: int = 2400,
    threads: int = 24,
    strategy: str = "shared",
    on_dead_nodes: str = "raise",
) -> ClusterEstimate:
    """Estimate total cluster power for a workload assignment.

    Parameters
    ----------
    nodes:
        The cluster (see :func:`~repro.cluster.nodes.build_cluster`).
    assignment:
        hostname → workload each node is running.
    counters:
        PMC events of the deployed model (selection is assumed done).
    training_workloads:
        Calibration suite executed for model fitting.
    strategy:
        ``shared`` (train once on the first node) or ``per-node``.
    on_dead_nodes:
        ``raise`` (strict default: a dead node aborts with
        :class:`~repro.faults.errors.NodeFailure`) or ``skip``
        (estimate the surviving nodes; the skipped hostnames are
        reported in :attr:`ClusterEstimate.skipped_nodes`).
    """
    if strategy not in ("shared", "per-node"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if on_dead_nodes not in ("raise", "skip"):
        raise ValueError(f"on_dead_nodes must be 'raise' or 'skip', got {on_dead_nodes!r}")
    missing = [n.hostname for n in nodes if n.hostname not in assignment]
    if missing:
        raise KeyError(f"assignment missing nodes: {missing}")

    dead = [n.hostname for n in nodes if not n.alive]
    if dead and on_dead_nodes == "raise":
        raise NodeFailure(
            f"cluster has dead nodes: {dead}; pass on_dead_nodes='skip' "
            f"to estimate the survivors"
        )
    live_nodes = [n for n in nodes if n.alive]
    if not live_nodes:
        raise NodeFailure("no live nodes left to estimate")

    shared_model: Optional[FittedPowerModel] = None
    if strategy == "shared":
        train = _node_dataset(
            live_nodes[0], training_workloads, frequencies_mhz, threads
        )
        shared_model = PowerModel(counters).fit(train)

    estimates: List[NodeEstimate] = []
    for node in live_nodes:
        workload = assignment[node.hostname]
        if strategy == "per-node":
            train = _node_dataset(
                node, training_workloads, frequencies_mhz, threads
            )
            model = PowerModel(counters).fit(train)
        else:
            assert shared_model is not None
            model = shared_model
        # The node runs its assigned workload; the model sees only the
        # acquired counter data of that run.
        observed = _node_dataset(node, [workload], [run_frequency_mhz], threads)
        predicted = float(model.predict(observed).mean())
        truth = float(observed.power_w.mean())
        estimates.append(
            NodeEstimate(
                hostname=node.hostname,
                workload=workload.name,
                true_power_w=truth,
                estimated_w=predicted,
            )
        )
    return ClusterEstimate(
        nodes=tuple(estimates),
        strategy=strategy,
        skipped_nodes=tuple(dead),
    )
