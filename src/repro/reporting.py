"""Shared finding/severity vocabulary of the repo's analysis gates.

Two gates watch this repository: ``replint`` (static analysis over
*source trees*, :mod:`repro.lint`) and ``repraudit`` (statistical-rigor
analysis over *fitted artifacts*, :mod:`repro.audit`).  Both emit
one-line diagnostics, render text and JSON reports, and exit with the
same convention — so the shared shapes live here, in one small module
both import, instead of drifting apart in two copies.

Exit-code convention (both CLIs)
--------------------------------
* ``0`` — clean, or no finding at/above the gating severity;
* ``1`` — findings that fail the gate;
* ``2`` — usage or I/O error (bad path, unreadable input).

Severity scale
--------------
Lint findings are all gate-failing by construction (a violated source
invariant has no "minor" reading), so :class:`BaseFinding` defaults to
``major``.  Audit findings grade along the full
``pass < minor < major < fail`` scale of the Statistical Rigor QA
verdict vocabulary; ``worst_severity`` folds a set of findings into the
report-level verdict.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "SEVERITY_PASS",
    "SEVERITY_MINOR",
    "SEVERITY_MAJOR",
    "SEVERITY_FAIL",
    "SEVERITY_ORDER",
    "severity_rank",
    "worst_severity",
    "BaseFinding",
    "render_text_report",
    "render_json_report",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

SEVERITY_PASS = "pass"
SEVERITY_MINOR = "minor"
SEVERITY_MAJOR = "major"
SEVERITY_FAIL = "fail"

#: Verdict scale, least to most severe.  ``pass`` is the verdict of an
#: empty finding set; individual findings carry the other three.
SEVERITY_ORDER = (SEVERITY_PASS, SEVERITY_MINOR, SEVERITY_MAJOR, SEVERITY_FAIL)

_RANK: Dict[str, int] = {s: i for i, s in enumerate(SEVERITY_ORDER)}


def severity_rank(severity: str) -> int:
    """Position of a severity on the scale (``pass``=0 … ``fail``=3)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITY_ORDER}"
        ) from None


def worst_severity(severities: Sequence[str]) -> str:
    """The report-level verdict: worst severity present, else ``pass``."""
    worst = SEVERITY_PASS
    for s in severities:
        if severity_rank(s) > severity_rank(worst):
            worst = s
    return worst


class BaseFinding:
    """Contract shared by lint and audit findings.

    Subclasses are (frozen, ordered) dataclasses carrying at least
    ``rule_id`` and ``message``; this mixin fixes the reporting
    surface — one formatted line, one JSON-able dict, a severity —
    so the renderers below work on either kind.
    """

    rule_id = ""
    message = ""
    #: Lint findings are uniformly gate-failing; audit findings carry a
    #: per-finding grade as a dataclass field shadowing this default.
    severity = SEVERITY_MAJOR

    def format(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:  # pragma: no cover
        raise NotImplementedError


def _breakdown(findings: Sequence[BaseFinding]) -> str:
    by_rule = Counter(f.rule_id for f in findings)
    return ", ".join(f"{rule} ×{count}" for rule, count in sorted(by_rule.items()))


def render_text_report(
    tool: str,
    findings: Sequence[BaseFinding],
    *,
    checked: int,
    noun: str = "files",
    trailer: Optional[str] = None,
) -> str:
    """Formatted finding lines plus a one-line summary.

    The summary reads ``<tool>: N findings in M <noun> (<per-rule
    breakdown>)`` — or ``<tool>: clean (M <noun>)`` — exactly the shape
    ``replint`` has always printed; ``repraudit`` appends its verdict
    through ``trailer``.
    """
    lines: List[str] = [f.format() for f in findings]
    if findings:
        lines.append("")
        lines.append(
            f"{tool}: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} in {checked} {noun} "
            f"({_breakdown(findings)})"
        )
    else:
        lines.append(f"{tool}: clean ({checked} {noun})")
    if trailer:
        lines.append(trailer)
    return "\n".join(lines)


def render_json_report(
    findings: Sequence[BaseFinding],
    *,
    checked: int,
    checked_key: str = "files_checked",
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Machine-readable report (stable key order, version-stamped)."""
    payload: Dict[str, object] = {
        "version": 1,
        checked_key: checked,
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
