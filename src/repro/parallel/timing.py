"""Per-stage wall-time accounting for the parallel pipeline.

One monotonic clock (:data:`MONOTONIC_CLOCK`, ``time.perf_counter``)
serves every measurement in the repository — wall-clock sources like
``time.time`` jump under NTP corrections and suspend/resume, which is
exactly what a multi-hour campaign hits.  :class:`StageTimer` collects
:class:`StageTiming` records while a pipeline runs; the frozen
:class:`TimingReport` travels on ``CampaignReport`` and
``WorkflowResult`` so speedups are measured, not guessed — the
``BENCH_parallel.json`` trajectory is built from these records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.parallel.executor import BaseExecutor

__all__ = ["MONOTONIC_CLOCK", "StageTiming", "StageTimer", "TimingReport"]

#: The single monotonic time source (seconds, arbitrary epoch).
MONOTONIC_CLOCK = time.perf_counter


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one pipeline stage under one executor."""

    stage: str
    elapsed_s: float
    n_items: int
    """Work items actually executed (resumed/skipped items excluded)."""
    parallel: str = "serial"
    max_workers: int = 1

    @property
    def per_item_s(self) -> float:
        return self.elapsed_s / self.n_items if self.n_items > 0 else 0.0

    def describe(self) -> str:
        return (
            f"{self.stage}: {self.elapsed_s:.3f} s "
            f"({self.n_items} items, {self.parallel}×{self.max_workers})"
        )


@dataclass(frozen=True)
class TimingReport:
    """Ordered per-stage timings of one pipeline run."""

    stages: Tuple[StageTiming, ...] = ()

    @property
    def total_s(self) -> float:
        return float(sum(s.elapsed_s for s in self.stages))

    def stage(self, name: str) -> StageTiming:
        """The first stage with the given name (KeyError if absent)."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(f"no stage named {name!r} in {[s.stage for s in self.stages]}")

    def speedup_over(self, baseline: "TimingReport", stage: str) -> float:
        """How much faster this run's ``stage`` was than ``baseline``'s."""
        mine = self.stage(stage).elapsed_s
        theirs = baseline.stage(stage).elapsed_s
        return theirs / mine if mine > 0.0 else float("inf")

    def summary(self) -> str:
        lines = [s.describe() for s in self.stages]
        lines.append(f"total: {self.total_s:.3f} s")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the shape stored in BENCH_parallel.json)."""
        return {
            "total_s": self.total_s,
            "stages": [
                {
                    "stage": s.stage,
                    "elapsed_s": s.elapsed_s,
                    "n_items": s.n_items,
                    "parallel": s.parallel,
                    "max_workers": s.max_workers,
                }
                for s in self.stages
            ],
        }


class StageTimer:
    """Accumulates stage timings on the shared monotonic clock."""

    def __init__(self) -> None:
        self._stages: List[StageTiming] = []

    @contextmanager
    def stage(
        self,
        name: str,
        *,
        n_items: int = 0,
        executor: Optional[BaseExecutor] = None,
    ) -> Iterator[None]:
        """Time a ``with`` block as one stage (recorded even on error)."""
        t0 = MONOTONIC_CLOCK()
        try:
            yield
        finally:
            self.record(
                name, MONOTONIC_CLOCK() - t0, n_items=n_items, executor=executor
            )

    def record(
        self,
        name: str,
        elapsed_s: float,
        *,
        n_items: int = 0,
        executor: Optional[BaseExecutor] = None,
    ) -> None:
        """Append a stage whose extent was measured by the caller."""
        self._stages.append(
            StageTiming(
                stage=name,
                elapsed_s=float(elapsed_s),
                n_items=int(n_items),
                parallel=executor.kind if executor is not None else "serial",
                max_workers=executor.max_workers if executor is not None else 1,
            )
        )

    def report(self) -> TimingReport:
        return TimingReport(stages=tuple(self._stages))
