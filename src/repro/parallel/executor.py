"""Executor abstraction: serial, thread-pool and process-pool backends.

The one contract every backend honours is **deterministic ordering**:
``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), …]`` — results
are assembled by item index, never by completion order.  Combined with
the repository-wide rule that work items draw randomness only from
per-item keyed RNG streams (:func:`repro.seeding.derive_rng`), this
makes every parallel pipeline bit-identical to its serial counterpart;
the tier-1 suite asserts exactly that, including under injected faults.

Pools are cached per ``(kind, max_workers)`` and shared across calls:
campaign cells, selection steps and CV folds all reuse the same
workers, so pool start-up cost is paid once per process, not once per
fan-out.  ``shutdown_pools()`` tears them down (registered atexit).

Process-backend caveats: ``fn`` and every item must be picklable (bound
methods pickle their instance — e.g. the whole campaign), and worker
side mutations (fault counters, recorder callbacks) stay in the child.
Callers that need side effects run them in the parent via the
``on_result`` hook, which fires in completion order — use it only for
order-independent effects such as per-cell checkpoint stores.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures.process import BrokenProcessPool
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.parallel.arena import release_arenas

__all__ = [
    "PARALLEL_KINDS",
    "PARALLEL_ENV",
    "MAX_WORKERS_ENV",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_max_workers",
    "resolve_executor",
    "shutdown_pools",
]

#: Recognised ``parallel=`` values, in cost order.
PARALLEL_KINDS = ("serial", "thread", "process")

#: Environment override for call sites that leave ``parallel=None``.
PARALLEL_ENV = "REPRO_PARALLEL"

#: Environment override for call sites that leave ``max_workers=None``.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

OnResult = Callable[[int, Any], None]


def default_max_workers() -> int:
    """Worker count when neither argument nor environment specifies one.

    At least 2 even on single-core boxes: latency-bound stages (real
    acquisition campaigns waiting on the system under test) still gain
    from overlap there, and CPU-bound stages lose almost nothing.
    """
    return max(os.cpu_count() or 1, 2)


class BaseExecutor:
    """Common surface: ``kind``, ``max_workers`` and ordered ``map``."""

    kind: str = ""

    def __init__(self, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        on_result: Optional[OnResult] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item; results ordered by item index.

        ``on_result(index, result)`` fires in the *calling* process as
        results arrive (completion order for pool backends, item order
        for the serial backend) — the hook for order-independent parent
        side effects such as incremental checkpointing.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}×{self.max_workers}"


class SerialExecutor(BaseExecutor):
    """The reference backend: a plain loop, no concurrency at all."""

    kind = "serial"

    def __init__(self) -> None:
        super().__init__(1)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        on_result: Optional[OnResult] = None,
    ) -> List[Any]:
        results: List[Any] = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results


# ---------------------------------------------------------------------------
# shared pool cache
# ---------------------------------------------------------------------------

_POOL_CACHE: Dict[Tuple[str, int], _FuturesExecutor] = {}

#: True in any process forked from this one (i.e. in pool workers).
_FORKED_WORKER = False


def _forget_inherited_pools() -> None:
    """A forked child inherits the parent's cached pool *objects* but
    not the manager threads and queue feeders behind them — a nested
    ``map`` submitted to an inherited pool deadlocks forever (the
    latent bug behind the hung nested experiment runner).  Forget the
    cache without shutting anything down (the pools, their queues and
    their workers belong to the parent) and remember that we are a
    worker so :func:`resolve_executor` degrades nested process
    backends to serial instead of forking grandchildren."""
    global _FORKED_WORKER
    _FORKED_WORKER = True
    _POOL_CACHE.clear()


os.register_at_fork(after_in_child=_forget_inherited_pools)


def _pool(kind: str, max_workers: int) -> _FuturesExecutor:
    key = (kind, max_workers)
    pool = _POOL_CACHE.get(key)
    if pool is None:
        if kind == "thread":
            pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-parallel"
            )
        else:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_CACHE[key] = pool
    return pool


def shutdown_pools(*, join_timeout_s: float = 10.0) -> None:
    """Tear down every cached pool (tests and interpreter exit).

    Thread pools join cleanly (their workers only ever run our own
    short tasks).  Process pools get a *bounded* join: a worker wedged
    in an uninterruptible call would otherwise hang interpreter exit
    forever, so after ``join_timeout_s`` stragglers are terminated,
    then killed.  Any live shared-memory arenas are released last —
    pool teardown must never strand a ``/dev/shm`` segment.
    """
    if join_timeout_s < 0:
        raise ValueError("join_timeout_s must be non-negative")
    pools = list(_POOL_CACHE.values())
    _POOL_CACHE.clear()
    deadline = time.perf_counter() + join_timeout_s
    for pool in pools:
        if isinstance(pool, ProcessPoolExecutor):
            # Snapshot workers before shutdown clears the bookkeeping.
            workers = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in workers:
                proc.join(max(0.0, deadline - time.perf_counter()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(0.5)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(0.5)
        else:
            pool.shutdown(wait=True)
    release_arenas()


atexit.register(shutdown_pools)


class _PoolExecutor(BaseExecutor):
    """Shared implementation for the thread and process backends."""

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        on_result: Optional[OnResult] = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        try:
            return self._map(fn, items, on_result)
        except BrokenProcessPool:
            # A worker died (OOM kill, hard crash, a chaos-killed
            # os._exit).  The pool object is permanently poisoned — and
            # it may have been poisoned *between* fan-outs, in which
            # case this fan-out's items never ran at all.  Evict it and
            # retry the whole batch once on a fresh pool: items are
            # pure functions of their inputs (the determinism
            # contract), so re-running them is safe, and ``on_result``
            # effects are order-independent by the same contract.  A
            # second failure means the workload itself kills workers —
            # evict again and surface it.
            self._evict_pool()
            try:
                return self._map(fn, items, on_result)
            except BrokenProcessPool:
                self._evict_pool()
                raise

    def _evict_pool(self) -> None:
        broken = _POOL_CACHE.pop((self.kind, self.max_workers), None)
        if broken is not None:
            broken.shutdown(wait=False)

    def _map(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        on_result: Optional[OnResult],
    ) -> List[Any]:
        pool = _pool(self.kind, self.max_workers)
        if on_result is None:
            # Chunked dispatch: one task per worker slice amortises the
            # per-task pickling of ``fn`` (which for bound methods
            # carries the whole instance).  Executor.map already yields
            # results in submission order.
            chunksize = max(1, math.ceil(len(items) / self.max_workers))
            return list(pool.map(fn, items, chunksize=chunksize))
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        results: List[Any] = [None] * len(items)
        try:
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                on_result(index, result)
                results[index] = result
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend: zero pickling, shared memory.

    The right choice for latency-bound work (acquisition on real
    hardware waits on the system under test) and for numpy-heavy work
    that releases the GIL.
    """

    kind = "thread"


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend: true CPU parallelism, pickled work items."""

    kind = "process"


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------


def resolve_executor(
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    *,
    n_items: Optional[int] = None,
    min_items_per_worker: int = 1,
) -> BaseExecutor:
    """Turn ``parallel=``/``max_workers=`` call arguments into a backend.

    Resolution order: explicit argument → environment
    (``REPRO_PARALLEL`` / ``REPRO_MAX_WORKERS``) → serial with
    :func:`default_max_workers` workers.  Every parallel-capable entry
    point in the repository funnels through here, so one environment
    variable flips the whole pipeline (the CI ``parallel`` job runs the
    tier-1 suite under ``REPRO_PARALLEL=process``).

    Small-task guard: a call site that knows its fan-out size passes
    ``n_items`` (and its per-item cost class as
    ``min_items_per_worker``); a pool backend is then granted at most
    ``n_items // min_items_per_worker`` workers, and degrades to the
    serial backend entirely below two.  This is what stops a global
    ``REPRO_PARALLEL=process`` from dispatching microsecond candidate
    fits or CV folds to a process pool where pickling costs 3–10× the
    work itself (the 0.11×/0.62× "speedups" recorded in
    ``BENCH_parallel.json`` before this guard existed).  Every backend
    is bit-identical, so the degradation never changes results — only
    wall time.

    Nested resolution: inside a pool worker (any forked child of this
    process), ``process`` resolves to the serial backend.  A worker
    that forked grandchildren would oversubscribe the cores its
    parent's pool already owns and leak the grandchildren when the
    worker is torn down mid-task — and before this rule existed, the
    nested ``map`` deadlocked outright on the fork-inherited pool
    cache.  ``thread`` stays available in workers (fresh pools are
    created after the inherited cache is dropped at fork).
    """
    kind = parallel if parallel is not None else os.environ.get(PARALLEL_ENV)
    kind = (kind or "serial").strip().lower()
    if kind not in PARALLEL_KINDS:
        raise ValueError(
            f"parallel must be one of {PARALLEL_KINDS}, got {kind!r}"
        )
    if min_items_per_worker < 1:
        raise ValueError(
            f"min_items_per_worker must be >= 1, got {min_items_per_worker}"
        )
    if kind == "serial":
        return SerialExecutor()
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env is None or not env.strip():
            max_workers = default_max_workers()
        else:
            # Validate here, by name: a bad value must not surface as a
            # cryptic int() traceback or a pool-construction crash far
            # from the variable that caused it.
            try:
                max_workers = int(env.strip())
            except ValueError:
                raise ValueError(
                    f"{MAX_WORKERS_ENV} must be a positive integer, "
                    f"got {env!r}"
                ) from None
            if max_workers < 1:
                raise ValueError(
                    f"{MAX_WORKERS_ENV} must be a positive integer, "
                    f"got {env!r}"
                )
    if n_items is not None:
        worker_cap = n_items // min_items_per_worker
        if worker_cap < 2:
            return SerialExecutor()
        max_workers = min(max_workers, worker_cap)
    if kind == "thread":
        return ThreadExecutor(max_workers)
    if _FORKED_WORKER:
        # Nested fan-out: this process *is* a pool worker.  Forking
        # grandchildren oversubscribes the same cores and leaks them
        # when the worker is torn down mid-task, so the process backend
        # degrades to serial here — bit-identical by contract, and the
        # parent's fan-out already owns the parallelism budget.
        return SerialExecutor()
    return ProcessExecutor(max_workers)
