"""Zero-copy shared-memory arena for process-backend fan-out.

The process backend's historical weakness was its payloads: every work
item pickled the full design matrix (or the whole dataset) into the
pool's call pipe, so CPU-bound selection and CV ran *slower* than
serial (the 0.11×/0.62× rows of ``BENCH_parallel.json`` before this
module existed).  The arena removes the payload: the parent publishes
each large array once into a ``multiprocessing.shared_memory`` segment
and dispatches tiny picklable :class:`ArrayHandle` records —
``(segment name, shape, dtype)`` — that workers resolve into read-only
numpy views of the very same pages.  No serialization, no copy; a work
item shrinks from megabytes to ~100 bytes.

Lifecycle contract (leak-proof by construction, DESIGN.md §16):

* The **parent owns every segment**.  Workers only ever attach; a
  crashed worker therefore cannot leak anything — the parent unlinks.
* :meth:`SharedArena.close` is idempotent and unlink-first: the
  ``/dev/shm`` entry disappears immediately, even while a live view
  still pins the mapping (the memory is reclaimed when the last view
  goes away — POSIX semantics).
* Every live arena is tracked in a module registry;
  :func:`release_arenas` closes them all and is invoked from
  ``shutdown_pools()`` and registered ``atexit`` — so segments are
  unlinked on normal exit, explicit pool teardown, worker crash
  (the fan-out raises, the ``finally``/context-manager closes) and
  injected faults alike.
* The ``resource_tracker`` backstop: pool workers share the parent's
  tracker process (both fork and spawn hand the tracker fd down), so a
  worker's attach-time registration dedupes against the parent's
  create-time one and the parent's unlink retires the name exactly
  once.  If the parent dies without unlinking, the tracker itself
  reclaims the segment — an orphaned ``/dev/shm`` entry cannot survive
  the process tree.

``REPRO_ARENA=0`` is the escape hatch: call sites fall back to the
historical pickled-payload dispatch, preserved so the before/after
trajectory stays measurable (the parallel benchmark records both).

Batching rides along: :func:`split_batches` groups work items into one
contiguous slice per worker, so per-dispatch overhead is amortized and
a flatten of the returned batches reproduces pool order exactly —
the bit-identity reduce of the call sites is untouched.
"""

from __future__ import annotations

import atexit
import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

__all__ = [
    "ARENA_ENV",
    "ArrayHandle",
    "SharedArena",
    "arena_enabled",
    "attached_segments",
    "detach_all",
    "release_arenas",
    "split_batches",
]

#: Environment escape hatch: ``REPRO_ARENA=0`` keeps process-backend
#: dispatch on the historical pickled-payload route for A/B runs.
ARENA_ENV = "REPRO_ARENA"

#: Prefix of every segment this module creates — makes leaked segments
#: attributable (and the leak test's ``/dev/shm`` scan precise).
SEGMENT_PREFIX = "repro-arena"

_T = TypeVar("_T")


class _SafeSharedMemory(shared_memory.SharedMemory):
    """``SharedMemory`` whose ``close`` tolerates live exported views.

    A resolved handle hands out numpy views backed by the segment's
    buffer; closing the mapping while such a view is alive raises
    ``BufferError`` (from finalizers too, as noisy "Exception ignored"
    tracebacks at interpreter exit).  Suppressing it is safe: the view
    itself keeps the underlying mmap alive, and once the segment is
    unlinked nothing can leak — the pages are reclaimed when the last
    view drops.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


def arena_enabled(arena: Optional[bool] = None) -> bool:
    """Resolve the arena switch for one call.

    Resolution order: explicit ``arena=`` argument → ``REPRO_ARENA``
    environment variable → default **on**.  ``0``/``false``/``no``/
    ``off`` (any case) disable; anything else enables.
    """
    if arena is not None:
        return bool(arena)
    env = os.environ.get(ARENA_ENV)
    if env is None:
        return True
    return env.strip().lower() not in ("0", "false", "no", "off")


# ---------------------------------------------------------------------------
# worker-side attachment cache
# ---------------------------------------------------------------------------

#: Segments this process has attached to (worker side, or a parent
#: resolving its own handles), keyed by segment name.
_ATTACHMENTS: Dict[str, shared_memory.SharedMemory] = {}

#: Resolved read-only views, keyed by (name, shape, dtype) — rebuilding
#: the ndarray per work item would be cheap but pointless.
_VIEW_MEMO: Dict[Tuple[str, Tuple[int, ...], str], np.ndarray] = {}

#: Attachment-cache bound: beyond this many distinct segments the
#: oldest are detached (long-lived workers serving many arenas).
_ATTACH_CAP = 64


def _attach(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHMENTS.get(name)
    if seg is None:
        seg = _SafeSharedMemory(name=name)
        _ATTACHMENTS[name] = seg
        while len(_ATTACHMENTS) > _ATTACH_CAP:
            old_name = next(iter(_ATTACHMENTS))
            old = _ATTACHMENTS.pop(old_name)
            for key in [k for k in _VIEW_MEMO if k[0] == old_name]:
                del _VIEW_MEMO[key]
            # Live views of the evicted segment stay valid: each view
            # owns the underlying mmap through its buffer chain.
            old.close()
    return seg


def attached_segments() -> Tuple[str, ...]:
    """Names of the segments this process currently has attached."""
    return tuple(_ATTACHMENTS)


def detach_all() -> None:
    """Drop every cached attachment (worker/test hygiene).

    Attachments whose views are still referenced stay mapped — closing
    them would invalidate live arrays — but are dropped from the cache.
    """
    _VIEW_MEMO.clear()
    for name in list(_ATTACHMENTS):
        _ATTACHMENTS.pop(name).close()


@dataclass(frozen=True)
class ArrayHandle:
    """Picklable reference to one published array.

    ``(segment name, shape, dtype)`` is the entire wire format — what a
    work item carries instead of the array itself.  ``name == ""``
    denotes a zero-byte array (no segment backs it).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def resolve(self) -> np.ndarray:
        """Read-only view of the published array in this process.

        Attachments and views are memoized per process, so resolving
        the same handle across many work items maps the segment once.
        """
        if not self.name:
            empty = np.empty(self.shape, dtype=np.dtype(self.dtype))
            empty.flags.writeable = False
            return empty
        key = (self.name, self.shape, self.dtype)
        view = _VIEW_MEMO.get(key)
        if view is None:
            seg = _attach(self.name)
            dtype = np.dtype(self.dtype)
            count = int(np.prod(self.shape, dtype=np.int64))
            view = np.frombuffer(seg.buf, dtype=dtype, count=count)
            view = view.reshape(self.shape)
            view.flags.writeable = False
            _VIEW_MEMO[key] = view
        return view


# ---------------------------------------------------------------------------
# parent-side arena
# ---------------------------------------------------------------------------

#: Every not-yet-closed arena of this process; release_arenas() drains
#: it from shutdown_pools() and atexit.
_LIVE_ARENAS: Set["SharedArena"] = set()

_SEGMENT_COUNTER = itertools.count()


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    while True:
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
        try:
            return _SafeSharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - pid-reuse leftover
            continue


class SharedArena:
    """Owner of a set of shared-memory segments for one fan-out scope.

    Usage::

        with SharedArena() as arena:
            handle = arena.publish(big_array)
            executor.map(worker, [(handle, batch) for batch in batches])
        # segments unlinked here — normal exit or exception alike

    ``publish`` copies the array into a fresh segment once (identical
    bytes, C-contiguous) and returns its :class:`ArrayHandle`; repeat
    publications of the *same array object* are deduplicated.  The
    arena owns its segments until :meth:`close`, which unlinks them;
    close is idempotent and also triggered by :func:`release_arenas`
    (wired into ``shutdown_pools()`` and ``atexit``).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._published: Dict[int, Tuple[ArrayHandle, np.ndarray]] = {}
        self._closed = False
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(self._segments)

    def publish(self, array: np.ndarray) -> ArrayHandle:
        """Copy one array into shared memory; return its handle."""
        if self._closed:
            raise RuntimeError("cannot publish into a closed arena")
        arr = np.asarray(array)
        cached = self._published.get(id(arr))
        if cached is not None:
            return cached[0]
        arr_c = np.ascontiguousarray(arr)
        if arr_c.nbytes == 0:
            handle = ArrayHandle("", arr_c.shape, arr_c.dtype.str)
        else:
            seg = _create_segment(arr_c.nbytes)
            dest = np.frombuffer(
                seg.buf, dtype=arr_c.dtype, count=arr_c.size
            ).reshape(arr_c.shape)
            np.copyto(dest, arr_c)
            del dest
            self._segments[seg.name] = seg
            handle = ArrayHandle(seg.name, arr_c.shape, arr_c.dtype.str)
        # Keep the source referenced so id() cannot be recycled while
        # the dedupe entry lives.
        self._published[id(arr)] = (handle, arr)
        return handle

    def close(self) -> None:
        """Unlink and release every segment (idempotent).

        Unlink runs first so the ``/dev/shm`` entry is gone even when a
        live view in this process still pins the mapping (the close
        then raises ``BufferError``, which is tolerated: the pages are
        reclaimed when the last view drops).
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_ARENAS.discard(self)
        segments = self._segments
        self._segments = {}
        self._published = {}
        for seg in segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            seg.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def release_arenas() -> None:
    """Close every live arena of this process.

    Called from ``shutdown_pools()`` (so pool teardown cannot strand
    segments) and registered ``atexit`` as the final backstop.
    """
    for arena in list(_LIVE_ARENAS):
        arena.close()


atexit.register(release_arenas)


def _disown_inherited_arenas() -> None:
    """Forked children inherit ``_LIVE_ARENAS`` by reference, but arena
    ownership never crosses a fork: only the parent may unlink.  Forget
    the inherited registry (without closing) so a child that ever runs
    ``release_arenas()`` cannot tear the parent's segments out from
    under sibling workers."""
    _LIVE_ARENAS.clear()


os.register_at_fork(after_in_child=_disown_inherited_arenas)


# ---------------------------------------------------------------------------
# batched dispatch
# ---------------------------------------------------------------------------


def split_batches(items: Sequence[_T], n_batches: int) -> List[List[_T]]:
    """Contiguous near-equal batches, order preserved.

    The batching policy of every arena call site: one batch per worker
    slot (sizes differ by at most one, larger batches first), so a
    single dispatch round covers the fan-out and flattening the
    returned batch results in batch order reproduces the original item
    order — the parent-side reduce stays in pool order, bit-identical
    to per-item dispatch.
    """
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    items = list(items)
    n_batches = min(n_batches, len(items)) or 1
    size, extra = divmod(len(items), n_batches)
    batches: List[List[_T]] = []
    start = 0
    for i in range(n_batches):
        stop = start + size + (1 if i < extra else 0)
        batches.append(items[start:stop])
        start = stop
    return batches
