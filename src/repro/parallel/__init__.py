"""Deterministic parallel execution layer.

Every fan-out loop in the reproduction — campaign cell acquisition,
Algorithm 1's per-step candidate fits, k-fold cross validation — is
embarrassingly parallel *and* seeded per work item, so parallel
execution must be (and is) bit-identical to serial execution.  This
package centralises how that fan-out happens:

* :class:`SerialExecutor`, :class:`ThreadExecutor`,
  :class:`ProcessExecutor` — one ``map`` contract, three backends,
  selected by name via :func:`resolve_executor` (``parallel="serial" |
  "thread" | "process"``, ``max_workers=N``) or the ``REPRO_PARALLEL``
  / ``REPRO_MAX_WORKERS`` environment variables;
* :class:`SharedArena` / :class:`ArrayHandle` — zero-copy
  shared-memory dispatch for the process backend: large arrays are
  published once and work items carry ~100-byte handles instead of
  pickled matrices, with :func:`split_batches` amortizing per-dispatch
  overhead (one batch per worker, flattened in pool order).
  ``REPRO_ARENA=0`` falls back to pickled payloads;
* :class:`TimingReport` / :class:`StageTimer` — per-stage wall-time
  accounting on a single monotonic clock, surfaced on
  ``CampaignReport`` and ``WorkflowResult``.

The determinism contract (DESIGN.md §11): results are ordered by work
item index, never by completion order; work items draw randomness only
from per-item keyed RNG streams (:func:`repro.seeding.derive_rng`);
side effects (checkpoints, progress) stay in the calling process.
Lint rule RL009 forbids direct ``concurrent.futures``/
``multiprocessing`` use anywhere else in the repository.
"""

from repro.parallel.arena import (
    ARENA_ENV,
    ArrayHandle,
    SharedArena,
    arena_enabled,
    release_arenas,
    split_batches,
)
from repro.parallel.executor import (
    MAX_WORKERS_ENV,
    PARALLEL_ENV,
    PARALLEL_KINDS,
    BaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_max_workers,
    resolve_executor,
    shutdown_pools,
)
from repro.parallel.timing import (
    MONOTONIC_CLOCK,
    StageTimer,
    StageTiming,
    TimingReport,
)

__all__ = [
    "PARALLEL_KINDS",
    "PARALLEL_ENV",
    "MAX_WORKERS_ENV",
    "ARENA_ENV",
    "ArrayHandle",
    "SharedArena",
    "arena_enabled",
    "release_arenas",
    "split_batches",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_max_workers",
    "resolve_executor",
    "shutdown_pools",
    "MONOTONIC_CLOCK",
    "StageTiming",
    "StageTimer",
    "TimingReport",
]
