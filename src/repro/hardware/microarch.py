"""Behavioural microarchitecture model: characterization → PMC rates.

This module is the analytical heart of the simulated platform.  Given a
workload phase characterization, an operating point and a thread count,
it produces

* per-chip-cycle rates for all 54 PAPI preset counters (system-wide
  event counts normalized by ``f_clk × wall_time`` — exactly the
  :math:`E_n` "events per cpu cycle" normalization of Section III-C),
* the *hidden* activity the ground-truth power model consumes (DRAM
  traffic, µop throughput, vector FLOPs, stall structure) — quantities
  a top-down model never sees directly.

Two behaviours matter for reproducing the paper and are modelled
explicitly:

* **The memory wall** — effective IPC degrades with core frequency for
  memory-bound phases (DRAM latency is fixed in nanoseconds, so it
  costs more cycles at higher f) and with thread count once the
  per-socket DRAM bandwidth saturates.  Counter rates are therefore
  frequency- and thread-dependent, as on real hardware.
* **Counter-family consistency** — derived identities hold by
  construction (``L1_TCM = L1_DCM + L1_ICM``, ``BR_CN = BR_TKN +
  BR_NTK``, ``BR_CN = BR_MSP + BR_PRC``, cache access chains, …).
  These identities are what give the selection algorithm its
  multicollinearity head-aches (Section IV-A), including the CA_SNP
  blow-up: snoop traffic is a near-linear image of L3/memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.hardware.config import PlatformConfig
from repro.hardware.counters import COUNTER_NAMES
from repro.hardware.dvfs import OperatingPoint
from repro.workloads.base import Characterization

__all__ = ["HiddenActivity", "MicroarchState", "evaluate", "place_threads"]

#: Duty cycle of background OS activity when a core is otherwise idle
#: (timer ticks, housekeeping).  Keeps idle counters small but nonzero.
_BACKGROUND_DUTY = 0.002


@dataclass(frozen=True)
class HiddenActivity:
    """Per-socket physical activity for the bottom-up power model.

    All "``*_per_cycle``" quantities are per chip-cycle sums over the
    socket's active cores (same normalization as the counter rates).
    """

    active_cores: Tuple[int, ...]
    """Active core count per socket."""
    uops_per_cycle: Tuple[float, ...]
    """Micro-ops retired per chip-cycle, per socket."""
    fp_scalar_per_cycle: Tuple[float, ...]
    fp_vector_per_cycle: Tuple[float, ...]
    vector_width: int
    l1_accesses_per_cycle: Tuple[float, ...]
    l2_accesses_per_cycle: Tuple[float, ...]
    l3_accesses_per_cycle: Tuple[float, ...]
    dram_read_bytes_per_s: Tuple[float, ...]
    dram_write_bytes_per_s: Tuple[float, ...]
    remote_bytes_per_s: Tuple[float, ...]
    stall_frac: Tuple[float, ...]
    """Average fraction of active-core cycles stalled (clock-gateable)."""
    flush_per_cycle: Tuple[float, ...]
    """Pipeline flushes (mispredicts) per chip-cycle, per socket."""
    tlb_walks_per_cycle: Tuple[float, ...]
    """Page-table walks (data + instruction) per chip-cycle, per socket."""
    bw_utilization: Tuple[float, ...]
    """DRAM bandwidth utilization per socket in [0, 1]."""
    latent_efficiency: float
    ipc_per_socket: Tuple[float, ...]


@dataclass(frozen=True)
class MicroarchState:
    """Counter rates plus hidden activity for one phase execution."""

    counter_rates: np.ndarray
    """Shape (54,), events per chip-cycle, canonical counter order."""
    hidden: HiddenActivity

    def rate(self, name: str) -> float:
        """Rate of one counter by PAPI preset name."""
        return float(self.counter_rates[COUNTER_NAMES.index(name)])


def place_threads(threads: int, cfg: PlatformConfig) -> Tuple[int, ...]:
    """Compact thread pinning: fill socket 0, then socket 1, ….

    Mirrors the OMP_PLACES=cores / compact binding used for the SPEC
    OMP2012 runs.
    """
    if not 0 <= threads <= cfg.total_cores:
        raise ValueError(
            f"thread count {threads} outside [0, {cfg.total_cores}]"
        )
    remaining = threads
    placement = []
    for _ in range(cfg.sockets):
        n = min(remaining, cfg.cores_per_socket)
        placement.append(n)
        remaining -= n
    return tuple(placement)


def _memory_chain(char: Characterization) -> Dict[str, float]:
    """Per-instruction demand rates through the cache hierarchy.

    Returns per-instruction event probabilities for every cache/TLB
    counter plus DRAM traffic, enforcing the family identities.
    """
    loads = char.load_frac
    stores = char.store_frac

    l1_ldm = loads * char.l1d_load_miss_rate
    l1_stm = stores * char.l1d_store_miss_rate
    l1_dcm = l1_ldm + l1_stm
    l1_icm = char.l1i_miss_per_kinst / 1000.0
    l1_tcm = l1_dcm + l1_icm

    # L2: demand accesses are the L1 misses; instruction side misses
    # less often (code streams prefetch well).
    l2_dcr = l1_ldm
    l2_dcw = l1_stm
    l2_dca = l2_dcr + l2_dcw
    l2_ica = l1_icm
    l2_icr = l2_ica
    l2i_miss_ratio = 0.5 * char.l2_miss_ratio
    l2_ich = l2_ica * (1.0 - l2i_miss_ratio)
    l2_dcm = char.l2_miss_ratio * l2_dca
    l2_icm = l2i_miss_ratio * l2_ica
    l2_tcm = l2_dcm + l2_icm
    l2_stm = char.l2_miss_ratio * l2_dcw
    l2_tca = l2_dca + l2_ica
    l2_tcr = l2_dcr + l2_icr
    l2_tcw = l2_dcw

    # L3: accesses are L2 misses.
    l3_dcr = char.l2_miss_ratio * l2_dcr
    l3_dcw = char.l2_miss_ratio * l2_dcw
    l3_dca = l3_dcr + l3_dcw
    l3_ica = l2_icm
    l3_icr = l3_ica
    l3_tca = l3_dca + l3_ica
    l3_tcr = l3_dcr + l3_icr
    l3_tcw = l3_dcw

    # Lines that must come from DRAM; the hardware prefetcher brings in
    # the covered share ahead of demand (counted as PRF_DM, not as
    # demand L3 misses), the rest arrive as demand misses (L3_TCM).
    dram_fills = char.l3_miss_ratio * l3_tca
    cov = min(char.prefetch_coverage, 0.97)
    prf_dm = cov * dram_fills
    l3_tcm = (1.0 - cov) * dram_fills
    l3_ldm = (1.0 - cov) * char.l3_miss_ratio * l3_dcr
    dram_writes = char.writeback_ratio * dram_fills

    return {
        "L1_LDM": l1_ldm,
        "L1_STM": l1_stm,
        "L1_DCM": l1_dcm,
        "L1_ICM": l1_icm,
        "L1_TCM": l1_tcm,
        "L2_DCA": l2_dca,
        "L2_DCR": l2_dcr,
        "L2_DCW": l2_dcw,
        "L2_ICA": l2_ica,
        "L2_ICR": l2_icr,
        "L2_ICH": l2_ich,
        "L2_DCM": l2_dcm,
        "L2_ICM": l2_icm,
        "L2_TCM": l2_tcm,
        "L2_STM": l2_stm,
        "L2_TCA": l2_tca,
        "L2_TCR": l2_tcr,
        "L2_TCW": l2_tcw,
        "L3_DCA": l3_dca,
        "L3_DCR": l3_dcr,
        "L3_DCW": l3_dcw,
        "L3_ICA": l3_ica,
        "L3_ICR": l3_icr,
        "L3_TCA": l3_tca,
        "L3_TCR": l3_tcr,
        "L3_TCW": l3_tcw,
        "L3_TCM": l3_tcm,
        "L3_LDM": l3_ldm,
        "PRF_DM": prf_dm,
        "TLB_DM": char.tlb_dm_per_kinst / 1000.0,
        "TLB_IM": char.tlb_im_per_kinst / 1000.0,
        "dram_fills": dram_fills,
        "dram_writes": dram_writes,
    }


def _stall_cycles_per_inst(
    char: Characterization,
    mem: Dict[str, float],
    op: OperatingPoint,
    cfg: PlatformConfig,
) -> float:
    """Average stall cycles per instruction at this operating point.

    Demand misses stall the pipeline for their (frequency-dependent)
    latency divided by the exploitable memory-level parallelism;
    prefetched fills do not stall.  TLB walks and branch mispredictions
    add fixed-cycle penalties.
    """
    f_ghz = op.frequency_ghz
    dram_cycles = cfg.dram_latency_ns * f_ghz * (
        1.0 + cfg.remote_latency_penalty * char.numa_remote_frac
    )
    # Prefetched streams also hide most intermediate-level hit latency.
    prefetch_hide = 1.0 - 0.85 * char.prefetch_coverage
    mem_stall = (
        (mem["L1_DCM"] * cfg.l2_hit_cycles + mem["L2_TCM"] * cfg.l3_hit_cycles)
        * prefetch_hide
        + mem["L3_TCM"] * dram_cycles
    ) / char.mlp
    tlb_stall = (
        (char.tlb_dm_per_kinst + char.tlb_im_per_kinst)
        / 1000.0
        * cfg.tlb_walk_cycles
        / max(char.mlp * 0.5, 1.0)
    )
    br_stall = (
        char.branch_frac
        * char.branch_cond_frac
        * char.branch_mispred_rate
        * cfg.mispredict_penalty_cycles
    )
    frontend_stall = mem["L1_ICM"] * 14.0
    return mem_stall + tlb_stall + br_stall + frontend_stall


def _socket_ipc(
    char: Characterization,
    mem: Dict[str, float],
    op: OperatingPoint,
    cfg: PlatformConfig,
    cores_active: int,
) -> Tuple[float, float]:
    """Effective per-core IPC and bandwidth utilization for one socket."""
    if cores_active == 0:
        return 0.0, 0.0
    stall = _stall_cycles_per_inst(char, mem, op, cfg)
    cpi = 1.0 / max(char.ipc_base, 1e-3) + stall
    ipc_latency = 1.0 / cpi

    bytes_per_inst = (mem["dram_fills"] + mem["dram_writes"]) * cfg.cache_line_bytes
    if bytes_per_inst <= 0.0:
        return ipc_latency, 0.0
    demand_gbs = (
        cores_active * ipc_latency * op.frequency_hz * bytes_per_inst / 1e9
    )
    if demand_gbs <= cfg.peak_dram_bw_gbs:
        return ipc_latency, demand_gbs / cfg.peak_dram_bw_gbs
    # Saturated: throughput clips to the bandwidth roof.
    ipc_bw = ipc_latency * cfg.peak_dram_bw_gbs / demand_gbs
    return ipc_bw, 1.0


def _per_core_rates(
    char: Characterization,
    mem: Dict[str, float],
    ipc: float,
    op: OperatingPoint,
    cfg: PlatformConfig,
    n_active_on_socket: int,
) -> Dict[str, float]:
    """Events per core-cycle for one active core of one socket."""
    r: Dict[str, float] = {}
    # Fixed / instruction counters.
    r["TOT_CYC"] = 1.0
    r["REF_CYC"] = cfg.reference_clock_mhz / op.frequency_mhz
    r["TOT_INS"] = ipc
    r["LD_INS"] = char.load_frac * ipc
    r["SR_INS"] = char.store_frac * ipc
    r["LST_INS"] = r["LD_INS"] + r["SR_INS"]

    # Branches.
    br = char.branch_frac * ipc
    br_cn = char.branch_cond_frac * br
    r["BR_INS"] = br
    r["BR_CN"] = br_cn
    r["BR_UCN"] = br - br_cn
    r["BR_TKN"] = char.branch_taken_frac * br_cn
    r["BR_NTK"] = br_cn - r["BR_TKN"]
    r["BR_MSP"] = char.branch_mispred_rate * br_cn
    r["BR_PRC"] = br_cn - r["BR_MSP"]

    # Memory hierarchy (per-instruction chain × IPC).
    for key in (
        "L1_DCM", "L1_ICM", "L1_TCM", "L1_LDM", "L1_STM",
        "L2_DCM", "L2_ICM", "L2_TCM", "L2_STM", "L2_DCA", "L2_DCR",
        "L2_DCW", "L2_ICA", "L2_ICR", "L2_ICH", "L2_TCA", "L2_TCR",
        "L2_TCW",
        "L3_TCM", "L3_LDM", "L3_DCA", "L3_DCR", "L3_DCW", "L3_ICA",
        "L3_ICR", "L3_TCA", "L3_TCR", "L3_TCW",
        "PRF_DM", "TLB_DM", "TLB_IM",
    ):
        r[key] = mem[key] * ipc

    # Coherence: snoops are driven by L3 lookups (uncore broadcasts) and
    # by cross-core sharing; nearly a linear image of the L3 counters —
    # the engineered CA_SNP multicollinearity of Section IV-A.
    share = char.sharing_factor * max(n_active_on_socket - 1, 0) / max(
        cfg.cores_per_socket - 1, 1
    )
    l3_lookups = mem["L3_TCA"] * ipc
    lst = r["LST_INS"]
    r["CA_SNP"] = 0.90 * l3_lookups + 0.25 * share * lst
    r["CA_SHR"] = 0.30 * share * lst
    r["CA_CLN"] = 0.60 * mem["L2_STM"] * ipc + 0.10 * share * lst
    r["CA_ITV"] = 0.20 * share * lst

    # Stall / issue structure.  Split cycles into stalled and unstalled;
    # in unstalled cycles completion is bursty at the local IPC.
    stall_per_inst = _stall_cycles_per_inst(char, mem, op, cfg)
    stall_frac = min(stall_per_inst * ipc, 0.95)
    unstalled = 1.0 - stall_frac
    ipc_local = ipc / max(unstalled, 0.05)
    # P(no completion | unstalled) for bursty completion.
    p_zero = float(np.exp(-min(ipc_local, 4.0)))
    stl_ccy = min(stall_frac + unstalled * p_zero, 0.99)
    p_full = (min(ipc_local, 4.0) / 4.0) ** 2.5
    ful_ccy = unstalled * p_full
    r["STL_CCY"] = stl_ccy
    r["STL_ICY"] = 0.85 * stl_ccy
    r["FUL_CCY"] = ful_ccy
    r["FUL_ICY"] = 0.80 * ful_ccy
    r["RES_STL"] = min(stall_frac * 1.08 + 0.02, 0.99)
    r["MEM_WCY"] = min(
        mem["dram_writes"] * ipc * cfg.dram_latency_ns * op.frequency_ghz
        * 0.25 / char.mlp,
        0.9,
    )
    return r


def evaluate(
    char: Characterization,
    op: OperatingPoint,
    active_threads: int,
    cfg: PlatformConfig,
) -> MicroarchState:
    """Evaluate the microarchitecture model for one phase.

    Returns system-wide counter rates per chip-cycle (``count /
    (f_clk × wall_time)``) and the per-socket hidden activity.
    ``active_threads == 0`` models the idle system: only background OS
    duty remains.
    """
    placement = place_threads(active_threads, cfg)
    mem = _memory_chain(char)

    total = np.zeros(len(COUNTER_NAMES), dtype=np.float64)
    uops, fp_s, fp_v = [], [], []
    l1a, l2a, l3a = [], [], []
    dram_r, dram_w, remote = [], [], []
    stall_fr, flush, tlb_walks, bw_util, ipc_sock = [], [], [], [], []

    name_to_idx = {n: i for i, n in enumerate(COUNTER_NAMES)}

    for n_active in placement:
        if n_active == 0:
            # Idle socket: background housekeeping only.
            eff_cores = _BACKGROUND_DUTY
            ipc = 0.4
            bg = Characterization(ipc_base=0.4)
            bg_mem = _memory_chain(bg)
            rates = _per_core_rates(bg, bg_mem, ipc, op, cfg, 1)
            scale = eff_cores
            util = 0.0
            cur_char, cur_mem = bg, bg_mem
        else:
            ipc, util = _socket_ipc(char, mem, op, cfg, n_active)
            rates = _per_core_rates(char, mem, ipc, op, cfg, n_active)
            scale = float(n_active)
            cur_char, cur_mem = char, mem

        for key, val in rates.items():
            total[name_to_idx[key]] += val * scale

        inst_rate = ipc * scale  # instructions per chip-cycle
        uops.append(inst_rate * cur_char.uop_expansion)
        fp_ops = inst_rate * cur_char.fp_frac
        if cur_char.vector_width > 1:
            fp_v.append(fp_ops)
            fp_s.append(0.0)
        else:
            fp_v.append(0.0)
            fp_s.append(fp_ops)
        l1a.append(inst_rate * (cur_char.load_frac + cur_char.store_frac))
        l2a.append(cur_mem["L2_TCA"] * inst_rate)
        l3a.append(cur_mem["L3_TCA"] * inst_rate)
        fills_ps = cur_mem["dram_fills"] * inst_rate * op.frequency_hz
        wbs_ps = cur_mem["dram_writes"] * inst_rate * op.frequency_hz
        dram_r.append(fills_ps * cfg.cache_line_bytes)
        dram_w.append(wbs_ps * cfg.cache_line_bytes)
        remote.append(
            (fills_ps + wbs_ps) * cfg.cache_line_bytes * cur_char.numa_remote_frac
        )
        stall_per_inst = _stall_cycles_per_inst(cur_char, cur_mem, op, cfg)
        stall_fr.append(min(stall_per_inst * ipc, 0.95))
        flush.append(
            inst_rate
            * cur_char.branch_frac
            * cur_char.branch_cond_frac
            * cur_char.branch_mispred_rate
        )
        tlb_walks.append(
            inst_rate
            * (cur_char.tlb_dm_per_kinst + cur_char.tlb_im_per_kinst)
            / 1000.0
        )
        bw_util.append(util)
        ipc_sock.append(ipc)

    hidden = HiddenActivity(
        active_cores=placement,
        uops_per_cycle=tuple(uops),
        fp_scalar_per_cycle=tuple(fp_s),
        fp_vector_per_cycle=tuple(fp_v),
        vector_width=char.vector_width,
        l1_accesses_per_cycle=tuple(l1a),
        l2_accesses_per_cycle=tuple(l2a),
        l3_accesses_per_cycle=tuple(l3a),
        dram_read_bytes_per_s=tuple(dram_r),
        dram_write_bytes_per_s=tuple(dram_w),
        remote_bytes_per_s=tuple(remote),
        stall_frac=tuple(stall_fr),
        flush_per_cycle=tuple(flush),
        tlb_walks_per_cycle=tuple(tlb_walks),
        bw_utilization=tuple(bw_util),
        latent_efficiency=char.latent_efficiency,
        ipc_per_socket=tuple(ipc_sock),
    )
    return MicroarchState(counter_rates=total, hidden=hidden)
