"""RAPL: the on-chip energy counter alternative to external sensors.

The paper deliberately uses *external* calibrated 12 V instrumentation
(Ilsche et al. 2015) rather than Intel's Running Average Power Limit
interface.  This module models RAPL the way it behaves on Haswell-EP so
the trade-off can be studied quantitatively:

* **Register semantics** — a 32-bit accumulating energy counter in
  units of 2⁻¹⁶ J (≈ 15.3 µJ), updated every ~1 ms, which wraps around
  after ≈ 65 kJ (minutes at node power); consumers must handle the
  wrap.
* **Scope** — the PKG domain covers cores + uncore + package leakage,
  but *not* the voltage-regulator losses and board consumers the 12 V
  sensors see, and (on this machine model) not the DRAM domain.
* **Accuracy** — Haswell RAPL is itself partially model-based; we give
  each chip a per-die gain residual and a small activity-dependent
  bias.

The comparison benchmark trains Equation 1 against RAPL readings and
shows the resulting model systematically under-estimates wall power —
inherited scope, not statistical error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hardware.platform import PhaseExecution, Platform, RunExecution
from repro.seeding import derive_rng

__all__ = [
    "RaplEnergyCounter",
    "rapl_power_between",
    "RaplMeter",
]

#: Energy status unit: 2^-16 J (Haswell default ESU).
ENERGY_UNIT_J = 2.0**-16
#: The MSR is a 32-bit accumulator.
REGISTER_MASK = 0xFFFFFFFF
#: RAPL updates roughly every millisecond.
UPDATE_INTERVAL_S = 1e-3


class RaplEnergyCounter:
    """One package's accumulating energy register."""

    def __init__(self, initial_raw: int = 0) -> None:
        if not 0 <= initial_raw <= REGISTER_MASK:
            raise ValueError("initial register value out of 32-bit range")
        self._energy_j = initial_raw * ENERGY_UNIT_J

    def advance(self, power_w: float, duration_s: float) -> None:
        """Accumulate ``power × time`` into the register."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        self._energy_j += power_w * duration_s

    def read(self) -> int:
        """Raw register value: quantized, wrapped, update-granular."""
        ticks = int(self._energy_j / ENERGY_UNIT_J)
        return ticks & REGISTER_MASK

    @property
    def wrap_period_s_at(self) -> float:
        """Seconds until wrap at 100 W — documentation helper."""
        return (REGISTER_MASK + 1) * ENERGY_UNIT_J / 100.0


def rapl_power_between(
    raw_before: int, raw_after: int, interval_s: float
) -> float:
    """Average power from two raw register reads, handling wraparound.

    The canonical consumer-side computation: a single wrap between the
    two reads is recovered; intervals long enough for two wraps are a
    sampling bug and cannot be detected from the register alone.
    """
    for raw in (raw_before, raw_after):
        if not 0 <= raw <= REGISTER_MASK:
            raise ValueError("raw register value out of 32-bit range")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    delta = raw_after - raw_before
    if delta < 0:
        delta += REGISTER_MASK + 1
    return delta * ENERGY_UNIT_J / interval_s


class RaplMeter:
    """RAPL-based power measurement of simulated executions.

    The per-die gain residual is drawn once from the platform's seed —
    a property of that chip's internal calibration, like the paper's
    observation that RAPL accuracy varies across parts.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        gain_sigma: float = 0.015,
        activity_bias: float = 0.03,
    ) -> None:
        self.platform = platform
        rng = derive_rng(platform.seed, "rapl-calibration")
        self.gains: Tuple[float, ...] = tuple(
            1.0 + float(rng.normal(0.0, gain_sigma))
            for _ in range(platform.cfg.sockets)
        )
        self.activity_bias = activity_bias

    # ------------------------------------------------------------------
    def package_power_true(self, phase: PhaseExecution, socket: int) -> float:
        """What the PKG domain physically covers: cores + uncore +
        leakage — everything except the board/VR plane."""
        p = phase.power_breakdown
        return (
            p.dynamic_core_w[socket]
            + p.uncore_w[socket]
            + p.static_w[socket]
            - self.platform.power_params.p_dram_background_w
        )

    def reported_power(self, phase: PhaseExecution, socket: int) -> float:
        """RAPL's estimate of its own domain (gain + activity bias)."""
        true = self.package_power_true(phase, socket)
        stall = phase.state.hidden.stall_frac[socket]
        # Haswell RAPL's internal model misjudges heavily-stalled
        # (clock-gated) phases slightly.
        bias = 1.0 + self.activity_bias * (stall - 0.2)
        return max(true * self.gains[socket] * bias, 0.0)

    # ------------------------------------------------------------------
    def measure_phase(self, phase: PhaseExecution) -> float:
        """Phase-average node 'power' as RAPL sees it: sum of PKG
        domains, computed through real register reads (quantization +
        wraparound included)."""
        total = 0.0
        for socket in range(self.platform.cfg.sockets):
            counter = RaplEnergyCounter(
                initial_raw=int(
                    derive_rng(
                        self.platform.seed,
                        "rapl-register",
                        phase.phase.name,
                        socket,
                    ).integers(REGISTER_MASK + 1)
                )
            )
            before = counter.read()
            counter.advance(
                self.reported_power(phase, socket), phase.duration_s
            )
            after = counter.read()
            total += rapl_power_between(before, after, phase.duration_s)
        return total

    def measure_run(self, run: RunExecution) -> float:
        """Duration-weighted run-average RAPL power."""
        total_energy_j = sum(
            self.measure_phase(p) * p.duration_s for p in run.phases
        )
        return total_energy_j / run.total_duration_s
