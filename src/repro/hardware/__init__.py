"""Simulated x86 hardware substrate.

Everything the paper's methodology touches on the physical side —
DVFS states, PAPI counters, the PMU, calibrated power sensors, per-core
voltage telemetry and the chip's actual (bottom-up) power behaviour —
is modelled here.  See DESIGN.md §5 for how the generative structure
maps onto the paper's experimental observations.
"""

from repro.hardware.arm import (
    CORTEX_A15_CONFIG,
    CORTEX_A15_CURVE,
    CORTEX_A15_POWER_PARAMS,
)
from repro.hardware.config import HASWELL_EP_CONFIG, PlatformConfig
from repro.hardware.counters import (
    COUNTER_NAMES,
    FIXED_COUNTERS,
    PAPI_PRESETS,
    PROGRAMMABLE_COUNTERS,
    CounterSpec,
    counter_index,
    counters_in_group,
    describe,
)
from repro.hardware.dvfs import (
    HASWELL_EP_CURVE,
    PAPER_FREQUENCIES_MHZ,
    SELECTION_FREQUENCY_MHZ,
    OperatingPoint,
    PState,
    VoltageFrequencyCurve,
)
from repro.hardware.microarch import (
    HiddenActivity,
    MicroarchState,
    evaluate,
    place_threads,
)
from repro.hardware.platform import PhaseExecution, Platform, RunExecution
from repro.hardware.pmu import PMU, EventSet, schedule_events
from repro.hardware.power import (
    HASWELL_EP_POWER_PARAMS,
    PowerBreakdown,
    PowerModelParams,
    compute_power,
)
from repro.hardware.sensors import (
    PowerSensor,
    SensorArray,
    SensorCalibration,
    SensorFaults,
    apply_sensor_faults,
)
from repro.hardware.skylake import (
    SKYLAKE_SP_CONFIG,
    SKYLAKE_SP_CURVE,
    SKYLAKE_SP_POWER_PARAMS,
)
from repro.hardware.voltage import VoltageTelemetry

__all__ = [
    "PlatformConfig",
    "HASWELL_EP_CONFIG",
    "CounterSpec",
    "PAPI_PRESETS",
    "COUNTER_NAMES",
    "FIXED_COUNTERS",
    "PROGRAMMABLE_COUNTERS",
    "counter_index",
    "counters_in_group",
    "describe",
    "OperatingPoint",
    "PState",
    "VoltageFrequencyCurve",
    "HASWELL_EP_CURVE",
    "PAPER_FREQUENCIES_MHZ",
    "SELECTION_FREQUENCY_MHZ",
    "MicroarchState",
    "HiddenActivity",
    "evaluate",
    "place_threads",
    "PowerModelParams",
    "PowerBreakdown",
    "compute_power",
    "HASWELL_EP_POWER_PARAMS",
    "PMU",
    "EventSet",
    "schedule_events",
    "PowerSensor",
    "SensorArray",
    "SensorCalibration",
    "SensorFaults",
    "apply_sensor_faults",
    "VoltageTelemetry",
    "Platform",
    "RunExecution",
    "PhaseExecution",
    "SKYLAKE_SP_CONFIG",
    "SKYLAKE_SP_CURVE",
    "SKYLAKE_SP_POWER_PARAMS",
    "CORTEX_A15_CONFIG",
    "CORTEX_A15_CURVE",
    "CORTEX_A15_POWER_PARAMS",
]
