"""The 54 standardized PAPI preset counters of the experimental platform.

Section IV: "As possible input to the power model, we use 54 PAPI
counters that are available on the system. […] We focus on the
standardized PAPI counters to keep the amount of measurements needed
feasible.  Also the standardized PAPI counters represent a more generic
view of the processor architecture."

Counter short names follow the paper's convention (PAPI preset names
without the ``PAPI_`` prefix, e.g. ``PRF_DM`` for
``PAPI_PRF_DM``).  Each counter carries

* a human-readable description (used in the analysis of Section V),
* a *group* (cache / coherence / TLB / branch / stall / instruction /
  cycle) used by the PMU scheduler and the correlation heat analysis,
* whether it is a **fixed** counter (always collected, like the three
  architectural fixed counters of Intel PMUs) or must be scheduled onto
  one of the limited programmable counter slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "CounterSpec",
    "PAPI_PRESETS",
    "COUNTER_NAMES",
    "FIXED_COUNTERS",
    "PROGRAMMABLE_COUNTERS",
    "counter_index",
    "describe",
]


@dataclass(frozen=True)
class CounterSpec:
    """Static description of one PAPI preset event."""

    name: str
    description: str
    group: str
    fixed: bool = False


def _c(name: str, description: str, group: str, fixed: bool = False) -> CounterSpec:
    return CounterSpec(name=name, description=description, group=group, fixed=fixed)


#: All 54 PAPI presets available on the simulated Haswell-EP platform,
#: in canonical order.  The order defines dataset column order.
PAPI_PRESETS: Tuple[CounterSpec, ...] = (
    # --- cycles (fixed architectural counters) ------------------------
    _c("TOT_CYC", "Total cycles", "cycle", fixed=True),
    _c("REF_CYC", "Reference clock cycles", "cycle", fixed=True),
    _c("TOT_INS", "Instructions completed", "instruction", fixed=True),
    # --- instruction mix ----------------------------------------------
    _c("LD_INS", "Load instructions", "instruction"),
    _c("SR_INS", "Store instructions", "instruction"),
    _c("LST_INS", "Load/store instructions completed", "instruction"),
    _c("BR_INS", "Branch instructions", "branch"),
    # --- branches -------------------------------------------------------
    _c("BR_UCN", "Unconditional branch instructions", "branch"),
    _c("BR_CN", "Conditional branch instructions", "branch"),
    _c("BR_TKN", "Conditional branch instructions taken", "branch"),
    _c("BR_NTK", "Conditional branch instructions not taken", "branch"),
    _c("BR_MSP", "Conditional branch instructions mispredicted", "branch"),
    _c("BR_PRC", "Conditional branch instructions correctly predicted", "branch"),
    # --- L1 cache -------------------------------------------------------
    _c("L1_DCM", "Level 1 data cache misses", "cache_l1"),
    _c("L1_ICM", "Level 1 instruction cache misses", "cache_l1"),
    _c("L1_TCM", "Level 1 cache misses", "cache_l1"),
    _c("L1_LDM", "Level 1 load misses", "cache_l1"),
    _c("L1_STM", "Level 1 store misses", "cache_l1"),
    # --- L2 cache -------------------------------------------------------
    _c("L2_DCM", "Level 2 data cache misses", "cache_l2"),
    _c("L2_ICM", "Level 2 instruction cache misses", "cache_l2"),
    _c("L2_TCM", "Level 2 cache misses", "cache_l2"),
    _c("L2_STM", "Level 2 store misses", "cache_l2"),
    _c("L2_DCA", "Level 2 data cache accesses", "cache_l2"),
    _c("L2_DCR", "Level 2 data cache reads", "cache_l2"),
    _c("L2_DCW", "Level 2 data cache writes", "cache_l2"),
    _c("L2_ICA", "Level 2 instruction cache accesses", "cache_l2"),
    _c("L2_ICR", "Level 2 instruction cache reads", "cache_l2"),
    _c("L2_ICH", "Level 2 instruction cache hits", "cache_l2"),
    _c("L2_TCA", "Level 2 total cache accesses", "cache_l2"),
    _c("L2_TCR", "Level 2 total cache reads", "cache_l2"),
    _c("L2_TCW", "Level 2 total cache writes", "cache_l2"),
    # --- L3 cache -------------------------------------------------------
    _c("L3_TCM", "Level 3 cache misses", "cache_l3"),
    _c("L3_LDM", "Level 3 load misses", "cache_l3"),
    _c("L3_DCA", "Level 3 data cache accesses", "cache_l3"),
    _c("L3_DCR", "Level 3 data cache reads", "cache_l3"),
    _c("L3_DCW", "Level 3 data cache writes", "cache_l3"),
    _c("L3_ICA", "Level 3 instruction cache accesses", "cache_l3"),
    _c("L3_ICR", "Level 3 instruction cache reads", "cache_l3"),
    _c("L3_TCA", "Level 3 total cache accesses", "cache_l3"),
    _c("L3_TCR", "Level 3 total cache reads", "cache_l3"),
    _c("L3_TCW", "Level 3 total cache writes", "cache_l3"),
    # --- coherence --------------------------------------------------------
    _c("CA_SNP", "Requests for a snoop", "coherence"),
    _c("CA_SHR", "Requests for exclusive access to shared cache line", "coherence"),
    _c("CA_CLN", "Requests for exclusive access to clean cache line", "coherence"),
    _c("CA_ITV", "Requests for cache line intervention", "coherence"),
    # --- TLB ---------------------------------------------------------------
    _c("TLB_DM", "Data translation lookaside buffer misses", "tlb"),
    _c("TLB_IM", "Instruction translation lookaside buffer misses", "tlb"),
    # --- prefetch -----------------------------------------------------------
    _c("PRF_DM", "Data prefetch cache misses", "prefetch"),
    # --- stalls / pipeline ---------------------------------------------------
    _c("MEM_WCY", "Cycles waiting for memory writes", "stall"),
    _c("STL_ICY", "Cycles with no instruction issue", "stall"),
    _c("FUL_ICY", "Cycles with maximum instruction issue", "stall"),
    _c("STL_CCY", "Cycles with no instructions completed", "stall"),
    _c("FUL_CCY", "Cycles with maximum instructions completed", "stall"),
    _c("RES_STL", "Cycles stalled on any resource", "stall"),
)

if len(PAPI_PRESETS) != 54:  # pragma: no cover - module-load invariant
    raise AssertionError(
        f"platform must expose exactly 54 PAPI presets, got {len(PAPI_PRESETS)}"
    )

#: Canonical counter name order (dataset column order).
COUNTER_NAMES: Tuple[str, ...] = tuple(c.name for c in PAPI_PRESETS)

#: Architectural fixed counters: collected in every run at no slot cost.
FIXED_COUNTERS: Tuple[str, ...] = tuple(c.name for c in PAPI_PRESETS if c.fixed)

#: Events competing for the limited programmable PMU slots.
PROGRAMMABLE_COUNTERS: Tuple[str, ...] = tuple(
    c.name for c in PAPI_PRESETS if not c.fixed
)

_INDEX: Dict[str, int] = {c.name: i for i, c in enumerate(PAPI_PRESETS)}
_BY_NAME: Dict[str, CounterSpec] = {c.name: c for c in PAPI_PRESETS}


def counter_index(name: str) -> int:
    """Column index of a counter in the canonical order."""
    try:
        return _INDEX[name]
    except KeyError:
        raise KeyError(
            f"unknown PAPI preset {name!r}; known: {', '.join(COUNTER_NAMES)}"
        ) from None


def describe(name: str) -> CounterSpec:
    """Full :class:`CounterSpec` for a counter name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown PAPI preset {name!r}") from None


def counters_in_group(group: str) -> List[str]:
    """All counter names belonging to a group (e.g. ``cache_l2``)."""
    names = [c.name for c in PAPI_PRESETS if c.group == group]
    if not names:
        groups = sorted({c.group for c in PAPI_PRESETS})
        raise KeyError(f"unknown counter group {group!r}; known: {groups}")
    return names
