"""A second simulated x86 generation (extension / paper future work).

Section VI: "To strengthen the general validity of the approach, more
experiments should be performed on different generations of x86
processors."  This module provides a Skylake-SP class machine (modelled
on a dual Xeon Gold 6148): 14 nm process, 2 × 20 cores, mesh uncore,
six DDR4 channels — with correspondingly different V/f behaviour and
per-event energies.

The cross-platform benchmark trains Equation 1 on the Haswell-EP
platform and evaluates it here, demonstrating that PMC power-model
*coefficients* are machine-specific even when the methodology is not.
"""

from __future__ import annotations

from repro.hardware.config import PlatformConfig
from repro.hardware.dvfs import PState, VoltageFrequencyCurve
from repro.hardware.power import PowerModelParams

__all__ = ["SKYLAKE_SP_CURVE", "SKYLAKE_SP_CONFIG", "SKYLAKE_SP_POWER_PARAMS"]

#: 14 nm V/f curve: lower voltages at equal frequency than Haswell.
SKYLAKE_SP_CURVE = VoltageFrequencyCurve(
    (
        PState(1200, 0.62),
        PState(1600, 0.70),
        PState(2000, 0.78),
        PState(2400, 0.88),
    )
)

#: Dual Xeon Gold 6148 class node.
SKYLAKE_SP_CONFIG = PlatformConfig(
    name="skylake-sp",
    sockets=2,
    cores_per_socket=20,
    curve=SKYLAKE_SP_CURVE,
    dram_latency_ns=89.0,  # mesh adds latency vs the Haswell ring
    remote_latency_penalty=0.50,
    peak_dram_bw_gbs=105.0,  # six DDR4-2666 channels
    issue_width=4,
    mispredict_penalty_cycles=16.0,
    l2_hit_cycles=14.0,  # 1 MiB private L2
    l3_hit_cycles=50.0,  # non-inclusive mesh LLC
    tlb_walk_cycles=26.0,
    programmable_slots=4,
    reference_clock_mhz=2400,
)

#: 14 nm energies: lower switching energy per event, larger uncore
#: (mesh) base power, higher idle DRAM power (six channels).
SKYLAKE_SP_POWER_PARAMS = PowerModelParams(
    v_ref=0.9,
    e_core_active=0.62,
    clock_gate_saving=0.50,
    e_uop=0.17,
    e_fp_scalar=0.08,
    e_fp_vector=0.04,
    vector_width_exponent=1.35,  # AVX-512-era frequency/voltage pain
    e_l1_access=0.09,
    e_l2_access=1.10,
    e_l3_access=6.5,  # mesh hop energy
    e_flush=20.0,
    e_tlb_walk=30.0,
    p_uncore_base=14.0,
    e_dram_read_pj_per_byte=260.0,
    e_dram_write_pj_per_byte=290.0,
    saturation_knee=0.85,
    saturation_penalty=0.20,
    e_qpi_pj_per_byte=60.0,  # UPI
    p_dram_background_w=4.0,
    leakage_w_per_v=17.0,
    leakage_temp_coeff=0.008,
    t_ambient_c=35.0,
    t_reference_c=50.0,
    thermal_resistance_k_per_w=0.13,
    vr_efficiency=0.92,
    p_board_const_w=5.0,
)
