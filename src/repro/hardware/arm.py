"""A simulated ARM development board — the methodology's origin.

Walker et al. developed the modeling approach on embedded ARM systems
(Cortex-A15/A7), where it achieved 2.8 % / 3.8 % MAPE; the paper under
reproduction adapts it to x86 and lands at 7.54 %, attributing the gap
to "the high intricacy of the x86 CISC architecture and PMCs".

This module provides the ARM side of that comparison: a single-cluster
Cortex-A15-class platform (4 in-order-ish cores, 0.6–1.8 GHz,
LPDDR3).  Two properties make its PMC models intrinsically more
accurate, both encoded in the parameterization:

* **Observability** — a shallow RISC pipeline has little power-relevant
  state the counters miss: ``latent_sensitivity`` is far below the x86
  value, so workload-specific circuit effects barely perturb power.
* **Simplicity** — no wide vector units (``vector_width_exponent`` 1.0)
  and a small uncore; dynamic power is almost a linear function of the
  counted events.

The ARM-vs-x86 benchmark reruns the identical pipeline here and
reproduces the paper's accuracy ordering.
"""

from __future__ import annotations

from repro.hardware.config import PlatformConfig
from repro.hardware.dvfs import PState, VoltageFrequencyCurve
from repro.hardware.power import PowerModelParams

__all__ = ["CORTEX_A15_CURVE", "CORTEX_A15_CONFIG", "CORTEX_A15_POWER_PARAMS"]

#: Typical big-cluster DVFS ladder of a 28 nm Cortex-A15 SoC.
CORTEX_A15_CURVE = VoltageFrequencyCurve(
    (
        PState(600, 0.90),
        PState(1000, 0.98),
        PState(1400, 1.09),
        PState(1800, 1.23),
    )
)

#: Single 4-core cluster (an ODROID-class development board).
CORTEX_A15_CONFIG = PlatformConfig(
    name="cortex-a15",
    sockets=1,
    cores_per_socket=4,
    curve=CORTEX_A15_CURVE,
    dram_latency_ns=130.0,  # LPDDR3
    remote_latency_penalty=0.0,  # single cluster, no NUMA
    peak_dram_bw_gbs=10.5,
    issue_width=3,
    mispredict_penalty_cycles=15.0,
    l2_hit_cycles=21.0,
    l3_hit_cycles=21.0,  # no L3: treat as L2-class latency
    tlb_walk_cycles=40.0,
    programmable_slots=6,  # A15 PMU: 6 counters + cycle counter
    reference_clock_mhz=1800,
)

#: 28 nm embedded-class energies (roughly 1/8 of the Haswell values)
#: with the latent channels closed: this is what makes ARM models
#: accurate.
CORTEX_A15_POWER_PARAMS = PowerModelParams(
    v_ref=1.1,
    e_core_active=0.11,
    clock_gate_saving=0.55,
    e_uop=0.055,
    e_fp_scalar=0.03,
    e_fp_vector=0.02,  # NEON at fixed 128-bit width
    vector_width_exponent=1.0,
    latent_sensitivity=0.30,
    e_l1_access=0.02,
    e_l2_access=0.25,
    e_l3_access=0.25,
    e_flush=4.0,
    e_tlb_walk=6.0,
    p_uncore_base=0.35,
    e_dram_read_pj_per_byte=95.0,
    e_dram_write_pj_per_byte=110.0,
    saturation_knee=0.85,
    saturation_penalty=0.15,
    e_qpi_pj_per_byte=0.0,
    p_dram_background_w=0.30,
    leakage_w_per_v=0.55,
    leakage_temp_coeff=0.010,
    t_ambient_c=35.0,
    t_reference_c=50.0,
    thermal_resistance_k_per_w=4.0,  # small passive heatsink
    vr_efficiency=0.88,
    p_board_const_w=0.9,
)
