"""Batched acquisition kernel: vectorized phase simulation + memoization.

Campaign acquisition is the outer loop everything in Section III-A
feeds on, and the scalar path evaluates the microarchitecture and
power models one phase at a time through Python dict arithmetic
(:func:`repro.hardware.microarch.evaluate`,
:func:`repro.hardware.power.compute_power`).  This module provides the
same physics as ndarray expressions over a *stack* of phases:

* :func:`simulate_phases` — evaluate ``(characterization, placement)``
  rows against one operating point in a single pass, producing the
  identical ``MicroarchState`` / ``PowerBreakdown`` pairs the scalar
  path produces, bit for bit;
* :class:`PhaseStateMemo` — a bounded cache over those pairs.
  ``evaluate()`` is deterministic in ``(characterization,
  operating_point, placement, cfg)`` and a multi-run campaign
  re-executes every experiment once per PMU event set
  (``runs_per_experiment = len(event_sets)``), so pre-jitter states
  are recomputed N× by the scalar loop; the memo computes them once
  and replays them, while run jitter and sensor noise stay per-run on
  their existing ``derive_rng`` streams;
* :func:`fastsim_enabled` — the ``REPRO_FASTSIM`` escape hatch
  (default on; ``REPRO_FASTSIM=0`` restores the scalar reference
  path end to end).

Bit-identity contract
---------------------
The batched expressions transliterate the scalar source *operation by
operation*: identical operator order and associativity, ``np.minimum``
/ ``np.maximum`` for ``min`` / ``max``, masked row assignment for the
``_socket_ipc`` bandwidth branches, and the per-socket accumulation
into the counter vector preserved as two sequential adds.  No
reductions, no ``gemv``/``gemm`` — the §16 arena lesson — so BLAS
accumulation-order drift cannot leak in.  Elementwise float64 ufuncs
round identically to their scalar C-double counterparts, which the
full-registry tests in ``tests/hardware/test_fastsim.py`` pin down to
the last bit (including the ``np.exp`` / ``**2.5`` transcendental
calls).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.config import PlatformConfig
from repro.hardware.counters import COUNTER_NAMES, counter_index
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.microarch import (
    _BACKGROUND_DUTY,
    HiddenActivity,
    MicroarchState,
    _memory_chain,
    _per_core_rates,
    _stall_cycles_per_inst,
    place_threads,
)
from repro.hardware.power import (
    HASWELL_EP_POWER_PARAMS,
    PowerBreakdown,
    PowerModelParams,
)
from repro.workloads.base import Characterization

__all__ = [
    "FASTSIM_ENV",
    "fastsim_enabled",
    "PhaseStateMemo",
    "simulate_phases",
]

#: Environment variable disabling the batched kernel (``0`` → scalar
#: reference path everywhere, mirroring ``REPRO_FASTFIT`` / ``REPRO_ARENA``).
FASTSIM_ENV = "REPRO_FASTSIM"

_TRUE_VALUES = ("1", "true", "yes", "on")
_FALSE_VALUES = ("0", "false", "no", "off")

#: Parse results per raw env string — the switch is consulted on every
#: cell of a campaign, and the handful of distinct values ever seen
#: parse once.  The environment itself is still read on every call, so
#: flipping ``REPRO_FASTSIM`` mid-process takes effect immediately.
_PARSE_CACHE: dict = {}

_NANO = 1e-9


def fastsim_enabled(fast: Optional[bool] = None) -> bool:
    """Resolve the fast/scalar switch: explicit argument, else env.

    Unlike the lenient ``REPRO_FASTFIT`` parse, an unrecognized value
    raises — a typo like ``REPRO_FASTSIM=fa1se`` silently *enabling*
    the path under test would defeat the escape hatch (same contract
    as ``REPRO_MAX_WORKERS``).
    """
    if fast is not None:
        return bool(fast)
    env = os.environ.get(FASTSIM_ENV)
    if env is None:
        return True
    cached = _PARSE_CACHE.get(env)
    if cached is not None:
        return cached
    norm = env.strip().lower()
    if norm in _TRUE_VALUES:
        result = True
    elif norm in _FALSE_VALUES:
        result = False
    else:
        raise ValueError(
            f"{FASTSIM_ENV} must be one of "
            f"{_TRUE_VALUES + _FALSE_VALUES}, got {env!r}"
        )
    if len(_PARSE_CACHE) < 64:
        _PARSE_CACHE[env] = result
    return result


# ---------------------------------------------------------------------------
# phase-state memo
# ---------------------------------------------------------------------------


class PhaseStateMemo:
    """Bounded FIFO cache of pre-jitter ``(MicroarchState, PowerBreakdown)``.

    Keyed by ``(characterization, frequency_mhz, active_threads)`` —
    the config and power parameters are fixed per :class:`Platform`
    instance, which owns the memo.  Valid because run jitter only
    rescales ``counter_rates`` (never ``hidden``) and the base power
    depends on ``hidden`` alone; both per-run effects are applied
    downstream of the cache.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: Dict[
            Tuple[Characterization, int, int],
            Tuple[MicroarchState, PowerBreakdown],
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: Tuple[Characterization, int, int]
    ) -> Optional[Tuple[MicroarchState, PowerBreakdown]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self,
        key: Tuple[Characterization, int, int],
        value: Tuple[MicroarchState, PowerBreakdown],
    ) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            # Evict the oldest insertion; dicts preserve insert order.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


# ---------------------------------------------------------------------------
# batched microarchitecture model
# ---------------------------------------------------------------------------

#: Characterization fields lifted into the batch as float64 columns.
_CHAR_FIELDS = (
    "ipc_base",
    "load_frac",
    "store_frac",
    "branch_frac",
    "fp_frac",
    "branch_cond_frac",
    "branch_taken_frac",
    "branch_mispred_rate",
    "l1d_load_miss_rate",
    "l1d_store_miss_rate",
    "l1i_miss_per_kinst",
    "l2_miss_ratio",
    "l3_miss_ratio",
    "prefetch_coverage",
    "writeback_ratio",
    "tlb_dm_per_kinst",
    "tlb_im_per_kinst",
    "mlp",
    "numa_remote_frac",
    "sharing_factor",
    "latent_efficiency",
    "uop_expansion",
)


def _char_columns(chars: Sequence[Characterization]) -> Dict[str, np.ndarray]:
    return {
        f: np.array([getattr(c, f) for c in chars], dtype=np.float64)
        for f in _CHAR_FIELDS
    }


def _memory_chain_batch(c: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Vectorized :func:`repro.hardware.microarch._memory_chain`."""
    loads = c["load_frac"]
    stores = c["store_frac"]

    l1_ldm = loads * c["l1d_load_miss_rate"]
    l1_stm = stores * c["l1d_store_miss_rate"]
    l1_dcm = l1_ldm + l1_stm
    l1_icm = c["l1i_miss_per_kinst"] / 1000.0
    l1_tcm = l1_dcm + l1_icm

    l2_dcr = l1_ldm
    l2_dcw = l1_stm
    l2_dca = l2_dcr + l2_dcw
    l2_ica = l1_icm
    l2_icr = l2_ica
    l2i_miss_ratio = 0.5 * c["l2_miss_ratio"]
    l2_ich = l2_ica * (1.0 - l2i_miss_ratio)
    l2_dcm = c["l2_miss_ratio"] * l2_dca
    l2_icm = l2i_miss_ratio * l2_ica
    l2_tcm = l2_dcm + l2_icm
    l2_stm = c["l2_miss_ratio"] * l2_dcw
    l2_tca = l2_dca + l2_ica
    l2_tcr = l2_dcr + l2_icr
    l2_tcw = l2_dcw

    l3_dcr = c["l2_miss_ratio"] * l2_dcr
    l3_dcw = c["l2_miss_ratio"] * l2_dcw
    l3_dca = l3_dcr + l3_dcw
    l3_ica = l2_icm
    l3_icr = l3_ica
    l3_tca = l3_dca + l3_ica
    l3_tcr = l3_dcr + l3_icr
    l3_tcw = l3_dcw

    dram_fills = c["l3_miss_ratio"] * l3_tca
    cov = np.minimum(c["prefetch_coverage"], 0.97)
    prf_dm = cov * dram_fills
    l3_tcm = (1.0 - cov) * dram_fills
    l3_ldm = (1.0 - cov) * c["l3_miss_ratio"] * l3_dcr
    dram_writes = c["writeback_ratio"] * dram_fills

    return {
        "L1_LDM": l1_ldm,
        "L1_STM": l1_stm,
        "L1_DCM": l1_dcm,
        "L1_ICM": l1_icm,
        "L1_TCM": l1_tcm,
        "L2_DCA": l2_dca,
        "L2_DCR": l2_dcr,
        "L2_DCW": l2_dcw,
        "L2_ICA": l2_ica,
        "L2_ICR": l2_icr,
        "L2_ICH": l2_ich,
        "L2_DCM": l2_dcm,
        "L2_ICM": l2_icm,
        "L2_TCM": l2_tcm,
        "L2_STM": l2_stm,
        "L2_TCA": l2_tca,
        "L2_TCR": l2_tcr,
        "L2_TCW": l2_tcw,
        "L3_DCA": l3_dca,
        "L3_DCR": l3_dcr,
        "L3_DCW": l3_dcw,
        "L3_ICA": l3_ica,
        "L3_ICR": l3_icr,
        "L3_TCA": l3_tca,
        "L3_TCR": l3_tcr,
        "L3_TCW": l3_tcw,
        "L3_TCM": l3_tcm,
        "L3_LDM": l3_ldm,
        "PRF_DM": prf_dm,
        "TLB_DM": c["tlb_dm_per_kinst"] / 1000.0,
        "TLB_IM": c["tlb_im_per_kinst"] / 1000.0,
        "dram_fills": dram_fills,
        "dram_writes": dram_writes,
    }


def _stall_batch(
    c: Dict[str, np.ndarray],
    mem: Dict[str, np.ndarray],
    op: OperatingPoint,
    cfg: PlatformConfig,
) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.microarch._stall_cycles_per_inst`."""
    f_ghz = op.frequency_ghz
    dram_cycles = cfg.dram_latency_ns * f_ghz * (
        1.0 + cfg.remote_latency_penalty * c["numa_remote_frac"]
    )
    prefetch_hide = 1.0 - 0.85 * c["prefetch_coverage"]
    mem_stall = (
        (mem["L1_DCM"] * cfg.l2_hit_cycles + mem["L2_TCM"] * cfg.l3_hit_cycles)
        * prefetch_hide
        + mem["L3_TCM"] * dram_cycles
    ) / c["mlp"]
    tlb_stall = (
        (c["tlb_dm_per_kinst"] + c["tlb_im_per_kinst"])
        / 1000.0
        * cfg.tlb_walk_cycles
        / np.maximum(c["mlp"] * 0.5, 1.0)
    )
    br_stall = (
        c["branch_frac"]
        * c["branch_cond_frac"]
        * c["branch_mispred_rate"]
        * cfg.mispredict_penalty_cycles
    )
    frontend_stall = mem["L1_ICM"] * 14.0
    return mem_stall + tlb_stall + br_stall + frontend_stall


def _socket_ipc_batch(
    c: Dict[str, np.ndarray],
    mem: Dict[str, np.ndarray],
    stall: np.ndarray,
    op: OperatingPoint,
    cfg: PlatformConfig,
    cores_active: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.hardware.microarch._socket_ipc` for
    rows with ``cores_active > 0`` (idle sockets take the scalar
    background path)."""
    cpi = 1.0 / np.maximum(c["ipc_base"], 1e-3) + stall
    ipc_latency = 1.0 / cpi

    bytes_per_inst = (mem["dram_fills"] + mem["dram_writes"]) * cfg.cache_line_bytes
    demand_gbs = (
        cores_active * ipc_latency * op.frequency_hz * bytes_per_inst / 1e9
    )
    # Unsaturated rows: util = demand / peak.  bytes_per_inst == 0 rows
    # land here with demand 0 and util exactly 0.0, matching the scalar
    # early return.
    ipc = ipc_latency.copy()
    util = demand_gbs / cfg.peak_dram_bw_gbs
    saturated = demand_gbs > cfg.peak_dram_bw_gbs
    if saturated.any():
        ipc[saturated] = (
            ipc_latency[saturated] * cfg.peak_dram_bw_gbs / demand_gbs[saturated]
        )
        util[saturated] = 1.0
    return ipc, util


def _per_core_rates_batch(
    c: Dict[str, np.ndarray],
    mem: Dict[str, np.ndarray],
    ipc: np.ndarray,
    stall_per_inst: np.ndarray,
    op: OperatingPoint,
    cfg: PlatformConfig,
    n_active_on_socket: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`~repro.hardware.microarch._per_core_rates`.

    Returns a ``(rows, n_counters)`` matrix of events per core-cycle in
    canonical counter order.
    """
    m = ipc.shape[0]
    rates = np.zeros((m, len(COUNTER_NAMES)), dtype=np.float64)

    def col(name: str) -> int:
        return counter_index(name)

    rates[:, col("TOT_CYC")] = 1.0
    rates[:, col("REF_CYC")] = cfg.reference_clock_mhz / op.frequency_mhz
    rates[:, col("TOT_INS")] = ipc
    ld = c["load_frac"] * ipc
    sr = c["store_frac"] * ipc
    rates[:, col("LD_INS")] = ld
    rates[:, col("SR_INS")] = sr
    lst = ld + sr
    rates[:, col("LST_INS")] = lst

    br = c["branch_frac"] * ipc
    br_cn = c["branch_cond_frac"] * br
    br_tkn = c["branch_taken_frac"] * br_cn
    br_msp = c["branch_mispred_rate"] * br_cn
    rates[:, col("BR_INS")] = br
    rates[:, col("BR_CN")] = br_cn
    rates[:, col("BR_UCN")] = br - br_cn
    rates[:, col("BR_TKN")] = br_tkn
    rates[:, col("BR_NTK")] = br_cn - br_tkn
    rates[:, col("BR_MSP")] = br_msp
    rates[:, col("BR_PRC")] = br_cn - br_msp

    for key in (
        "L1_DCM", "L1_ICM", "L1_TCM", "L1_LDM", "L1_STM",
        "L2_DCM", "L2_ICM", "L2_TCM", "L2_STM", "L2_DCA", "L2_DCR",
        "L2_DCW", "L2_ICA", "L2_ICR", "L2_ICH", "L2_TCA", "L2_TCR",
        "L2_TCW",
        "L3_TCM", "L3_LDM", "L3_DCA", "L3_DCR", "L3_DCW", "L3_ICA",
        "L3_ICR", "L3_TCA", "L3_TCR", "L3_TCW",
        "PRF_DM", "TLB_DM", "TLB_IM",
    ):
        rates[:, col(key)] = mem[key] * ipc

    share = c["sharing_factor"] * np.maximum(n_active_on_socket - 1, 0) / max(
        cfg.cores_per_socket - 1, 1
    )
    l3_lookups = mem["L3_TCA"] * ipc
    rates[:, col("CA_SNP")] = 0.90 * l3_lookups + 0.25 * share * lst
    rates[:, col("CA_SHR")] = 0.30 * share * lst
    rates[:, col("CA_CLN")] = 0.60 * mem["L2_STM"] * ipc + 0.10 * share * lst
    rates[:, col("CA_ITV")] = 0.20 * share * lst

    stall_frac = np.minimum(stall_per_inst * ipc, 0.95)
    unstalled = 1.0 - stall_frac
    ipc_local = ipc / np.maximum(unstalled, 0.05)
    # exp/pow go through the scalar libm calls the reference path makes:
    # numpy's SIMD transcendental loops round differently in the last
    # ulp (observed for float64 ``**``), which would break bit-identity.
    clipped = np.minimum(ipc_local, 4.0)
    p_zero = np.array(
        [float(np.exp(-float(v))) for v in clipped], dtype=np.float64
    )
    stl_ccy = np.minimum(stall_frac + unstalled * p_zero, 0.99)
    p_full = np.array(
        [(float(v) / 4.0) ** 2.5 for v in clipped], dtype=np.float64
    )
    ful_ccy = unstalled * p_full
    rates[:, col("STL_CCY")] = stl_ccy
    rates[:, col("STL_ICY")] = 0.85 * stl_ccy
    rates[:, col("FUL_CCY")] = ful_ccy
    rates[:, col("FUL_ICY")] = 0.80 * ful_ccy
    rates[:, col("RES_STL")] = np.minimum(stall_frac * 1.08 + 0.02, 0.99)
    rates[:, col("MEM_WCY")] = np.minimum(
        mem["dram_writes"] * ipc * cfg.dram_latency_ns * op.frequency_ghz
        * 0.25 / c["mlp"],
        0.9,
    )
    return rates


def _idle_socket_terms(
    op: OperatingPoint, cfg: PlatformConfig
) -> Tuple[np.ndarray, Dict[str, float]]:
    """Counter contribution and hidden terms of one idle socket.

    Computed once per batch *through the scalar functions themselves*,
    then broadcast into the idle rows — the background characterization
    is a constant, so there is nothing to vectorize.
    """
    ipc = 0.4
    bg = Characterization(ipc_base=0.4)
    bg_mem = _memory_chain(bg)
    per_core = _per_core_rates(bg, bg_mem, ipc, op, cfg, 1)
    contrib = np.zeros(len(COUNTER_NAMES), dtype=np.float64)
    for key, val in per_core.items():
        contrib[counter_index(key)] += val * _BACKGROUND_DUTY

    inst_rate = ipc * _BACKGROUND_DUTY
    stall_per_inst = _stall_cycles_per_inst(bg, bg_mem, op, cfg)
    fills_ps = bg_mem["dram_fills"] * inst_rate * op.frequency_hz
    wbs_ps = bg_mem["dram_writes"] * inst_rate * op.frequency_hz
    hidden = {
        "uops": inst_rate * bg.uop_expansion,
        "fp_s": inst_rate * bg.fp_frac,  # background vector_width == 1
        "fp_v": 0.0,
        "l1a": inst_rate * (bg.load_frac + bg.store_frac),
        "l2a": bg_mem["L2_TCA"] * inst_rate,
        "l3a": bg_mem["L3_TCA"] * inst_rate,
        "dram_r": fills_ps * cfg.cache_line_bytes,
        "dram_w": wbs_ps * cfg.cache_line_bytes,
        "remote": (fills_ps + wbs_ps) * cfg.cache_line_bytes
        * bg.numa_remote_frac,
        "stall_fr": min(stall_per_inst * ipc, 0.95),
        "flush": inst_rate
        * bg.branch_frac
        * bg.branch_cond_frac
        * bg.branch_mispred_rate,
        "tlb": inst_rate
        * (bg.tlb_dm_per_kinst + bg.tlb_im_per_kinst)
        / 1000.0,
        "util": 0.0,
        "ipc": ipc,
    }
    return contrib, hidden


# ---------------------------------------------------------------------------
# batched power model
# ---------------------------------------------------------------------------


def _socket_power_batch(
    s: Dict[str, np.ndarray],
    vector_width: np.ndarray,
    latent_efficiency: np.ndarray,
    op: OperatingPoint,
    p: PowerModelParams,
) -> Tuple[np.ndarray, ...]:
    """Vectorized :func:`~repro.hardware.power._socket_power_w` for one
    socket across all phases.  ``s`` holds the per-phase hidden arrays
    of that socket."""
    v_scale = (op.voltage_v / p.v_ref) ** 2
    f = op.frequency_hz

    # Scalar libm pow, not the array ufunc loop (see _per_core_rates_batch).
    width_factor = np.array(
        [int(v) ** p.vector_width_exponent for v in vector_width],
        dtype=np.float64,
    )
    gating = 1.0 - p.clock_gate_saving * s["stall_fr"]
    per_cycle_nj = (
        s["n_active"] * p.e_core_active * gating
        + s["uops"] * p.e_uop
        + s["fp_s"] * p.e_fp_scalar
        + s["fp_v"] * p.e_fp_vector * width_factor
        + s["l1a"] * p.e_l1_access
        + s["l2a"] * p.e_l2_access
        + s["l3a"] * p.e_l3_access
        + s["flush"] * p.e_flush
        + s["tlb"] * p.e_tlb_walk
    )
    latent = 1.0 + p.latent_sensitivity * (latent_efficiency - 1.0)
    dyn = v_scale * f * per_cycle_nj * _NANO * latent

    sat = np.ones_like(dyn)
    over_knee = s["util"] > p.saturation_knee
    if over_knee.any():
        sat[over_knee] = 1.0 + p.saturation_penalty * (
            s["util"][over_knee] - p.saturation_knee
        ) / (1.0 - p.saturation_knee)
    dram = (
        s["dram_r"] * p.e_dram_read_pj_per_byte
        + s["dram_w"] * p.e_dram_write_pj_per_byte
    ) * 1e-12 * sat
    qpi = s["remote"] * p.e_qpi_pj_per_byte * 1e-12
    unc = p.p_uncore_base * v_scale + dram + qpi + p.p_dram_background_w

    leak_v = p.leakage_w_per_v * op.voltage_v
    static = np.full_like(dyn, leak_v)
    temp = np.full_like(dyn, p.t_ambient_c)
    for _ in range(4):
        internal = dyn + unc + static
        temp = p.t_ambient_c + p.thermal_resistance_k_per_w * internal
        static = leak_v * (
            1.0 + p.leakage_temp_coeff * (temp - p.t_reference_c)
        )
    internal = dyn + unc + static
    board = internal * (1.0 / p.vr_efficiency - 1.0) + p.p_board_const_w
    total = internal + board
    # The scalar compute_power re-derives board as the residual; keep
    # that exact (non-associative) subtraction order.
    board_resid = total - dyn - unc - static
    return total, dyn, unc, static, board_resid, temp


# ---------------------------------------------------------------------------
# phase batch
# ---------------------------------------------------------------------------


def simulate_phases(
    chars: Sequence[Characterization],
    active_threads: Sequence[int],
    op: OperatingPoint,
    cfg: PlatformConfig,
    params: PowerModelParams = HASWELL_EP_POWER_PARAMS,
) -> List[Tuple[MicroarchState, PowerBreakdown]]:
    """Batched equivalent of ``evaluate`` + ``compute_power`` per phase.

    All rows share one operating point (frequency is pinned for a run,
    Section III-A); characterization and placement vary per row.
    """
    if len(chars) != len(active_threads):
        raise ValueError(
            f"{len(chars)} characterizations for "
            f"{len(active_threads)} thread counts"
        )
    n = len(chars)
    if n == 0:
        return []

    placements = np.array(
        [place_threads(t, cfg) for t in active_threads], dtype=np.int64
    )
    c = _char_columns(chars)
    vector_width = np.array(
        [ch.vector_width for ch in chars], dtype=np.float64
    )
    mem = _memory_chain_batch(c)
    stall_all = _stall_batch(c, mem, op, cfg)
    idle_contrib, idle_hidden = _idle_socket_terms(op, cfg)

    total = np.zeros((n, len(COUNTER_NAMES)), dtype=np.float64)
    _HIDDEN_KEYS = (
        "uops", "fp_s", "fp_v", "l1a", "l2a", "l3a",
        "dram_r", "dram_w", "remote", "stall_fr", "flush", "tlb",
        "util", "ipc",
    )
    per_socket: List[Dict[str, np.ndarray]] = []

    for sock in range(cfg.sockets):
        n_active = placements[:, sock]
        active = n_active > 0
        contrib = np.zeros((n, len(COUNTER_NAMES)), dtype=np.float64)
        hid = {k: np.empty(n, dtype=np.float64) for k in _HIDDEN_KEYS}
        hid["n_active"] = n_active.astype(np.float64)

        if not active.all():
            idle = ~active
            contrib[idle] = idle_contrib
            for k in _HIDDEN_KEYS:
                hid[k][idle] = idle_hidden[k]

        if active.any():
            rows = np.nonzero(active)[0]
            ca = {k: v[rows] for k, v in c.items()}
            ma = {k: v[rows] for k, v in mem.items()}
            stall = stall_all[rows]
            scale = n_active[rows].astype(np.float64)
            ipc, util = _socket_ipc_batch(ca, ma, stall, op, cfg, scale)
            rates = _per_core_rates_batch(ca, ma, ipc, stall, op, cfg, scale)
            contrib[rows] = rates * scale[:, None]

            inst_rate = ipc * scale
            fp_ops = inst_rate * ca["fp_frac"]
            vec = vector_width[rows] > 1
            hid["uops"][rows] = inst_rate * ca["uop_expansion"]
            hid["fp_v"][rows] = np.where(vec, fp_ops, 0.0)
            hid["fp_s"][rows] = np.where(vec, 0.0, fp_ops)
            hid["l1a"][rows] = inst_rate * (ca["load_frac"] + ca["store_frac"])
            hid["l2a"][rows] = ma["L2_TCA"] * inst_rate
            hid["l3a"][rows] = ma["L3_TCA"] * inst_rate
            fills_ps = ma["dram_fills"] * inst_rate * op.frequency_hz
            wbs_ps = ma["dram_writes"] * inst_rate * op.frequency_hz
            hid["dram_r"][rows] = fills_ps * cfg.cache_line_bytes
            hid["dram_w"][rows] = wbs_ps * cfg.cache_line_bytes
            hid["remote"][rows] = (
                (fills_ps + wbs_ps) * cfg.cache_line_bytes
                * ca["numa_remote_frac"]
            )
            hid["stall_fr"][rows] = np.minimum(stall * ipc, 0.95)
            hid["flush"][rows] = (
                inst_rate
                * ca["branch_frac"]
                * ca["branch_cond_frac"]
                * ca["branch_mispred_rate"]
            )
            hid["tlb"][rows] = (
                inst_rate
                * (ca["tlb_dm_per_kinst"] + ca["tlb_im_per_kinst"])
                / 1000.0
            )
            hid["util"][rows] = util
            hid["ipc"][rows] = ipc

        total += contrib
        per_socket.append(hid)

    latent = c["latent_efficiency"]
    power_terms_w = [
        _socket_power_batch(hid, vector_width, latent, op, params)
        for hid in per_socket
    ]

    out: List[Tuple[MicroarchState, PowerBreakdown]] = []
    n_sockets = cfg.sockets
    for i in range(n):
        hidden = HiddenActivity(
            active_cores=tuple(int(placements[i, s]) for s in range(n_sockets)),
            uops_per_cycle=tuple(
                float(per_socket[s]["uops"][i]) for s in range(n_sockets)
            ),
            fp_scalar_per_cycle=tuple(
                float(per_socket[s]["fp_s"][i]) for s in range(n_sockets)
            ),
            fp_vector_per_cycle=tuple(
                float(per_socket[s]["fp_v"][i]) for s in range(n_sockets)
            ),
            vector_width=chars[i].vector_width,
            l1_accesses_per_cycle=tuple(
                float(per_socket[s]["l1a"][i]) for s in range(n_sockets)
            ),
            l2_accesses_per_cycle=tuple(
                float(per_socket[s]["l2a"][i]) for s in range(n_sockets)
            ),
            l3_accesses_per_cycle=tuple(
                float(per_socket[s]["l3a"][i]) for s in range(n_sockets)
            ),
            dram_read_bytes_per_s=tuple(
                float(per_socket[s]["dram_r"][i]) for s in range(n_sockets)
            ),
            dram_write_bytes_per_s=tuple(
                float(per_socket[s]["dram_w"][i]) for s in range(n_sockets)
            ),
            remote_bytes_per_s=tuple(
                float(per_socket[s]["remote"][i]) for s in range(n_sockets)
            ),
            stall_frac=tuple(
                float(per_socket[s]["stall_fr"][i]) for s in range(n_sockets)
            ),
            flush_per_cycle=tuple(
                float(per_socket[s]["flush"][i]) for s in range(n_sockets)
            ),
            tlb_walks_per_cycle=tuple(
                float(per_socket[s]["tlb"][i]) for s in range(n_sockets)
            ),
            bw_utilization=tuple(
                float(per_socket[s]["util"][i]) for s in range(n_sockets)
            ),
            latent_efficiency=chars[i].latent_efficiency,
            ipc_per_socket=tuple(
                float(per_socket[s]["ipc"][i]) for s in range(n_sockets)
            ),
        )
        state = MicroarchState(
            counter_rates=total[i].copy(), hidden=hidden
        )
        breakdown = PowerBreakdown(
            per_socket_w=tuple(float(power_terms_w[s][0][i]) for s in range(n_sockets)),
            dynamic_core_w=tuple(
                float(power_terms_w[s][1][i]) for s in range(n_sockets)
            ),
            uncore_w=tuple(float(power_terms_w[s][2][i]) for s in range(n_sockets)),
            static_w=tuple(float(power_terms_w[s][3][i]) for s in range(n_sockets)),
            board_w=tuple(float(power_terms_w[s][4][i]) for s in range(n_sockets)),
            temperature_c=tuple(
                float(power_terms_w[s][5][i]) for s in range(n_sockets)
            ),
        )
        out.append((state, breakdown))
    return out
