"""Ground-truth bottom-up power model of the simulated platform.

This is the "real chip" the statistical method is trying to
characterize from the outside.  It computes the power drawn at the 12 V
inputs of each socket (where the paper's calibrated sensors sit) from
the hidden activity of :mod:`repro.hardware.microarch`:

* **Dynamic core power** — per-event switching energies scaled by
  :math:`(V/V_0)^2 f` (clock tree per active core with partial clock
  gating during stalls, µop retirement, scalar/vector FP with a
  *superlinear* width factor, cache access energies, mispredict
  flushes), multiplied by the workload's latent efficiency factor.
* **Uncore power** — ring/L3 base, DRAM traffic energy per byte (with a
  row-conflict penalty near bandwidth saturation), QPI energy for
  remote-NUMA traffic.
* **Static power** — leakage ∝ V with a temperature feedback loop
  (hotter socket → more leakage → hotter socket), solved by fixed-point
  iteration.
* **Board overhead** — voltage-regulator efficiency and constant board
  consumers behind the same 12 V rail.

The latent efficiency, the superlinear vector term, the thermal
feedback and the saturation penalty are deliberately *not* expressible
as a linear combination of counter rates × V²f — they are what bounds
the accuracy of Equation 1 at the ≈7.5 % MAPE the paper reports, and
what generates the systematic per-workload biases of Fig. 5a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.hardware.config import PlatformConfig
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.microarch import HiddenActivity

__all__ = ["PowerModelParams", "PowerBreakdown", "compute_power", "HASWELL_EP_POWER_PARAMS"]

_NANO = 1e-9


@dataclass(frozen=True)
class PowerModelParams:
    """Physical coefficients of the ground-truth model.

    Energies are in nanojoules per event at the reference voltage
    ``v_ref``; they scale with :math:`(V/V_{ref})^2`.
    """

    v_ref: float = 1.0

    # --- per-event switching energies (nJ) ------------------------------
    e_core_active: float = 0.75
    """Clock tree + always-on logic per active-core cycle."""
    clock_gate_saving: float = 0.45
    """Fraction of the active-cycle energy saved while stalled."""
    e_uop: float = 0.24
    e_fp_scalar: float = 0.10
    e_fp_vector: float = 0.05
    vector_width_exponent: float = 1.25
    """FP vector energy scales with width**exponent — superlinear,
    invisible to the counters (the AVX latent term)."""
    latent_sensitivity: float = 1.0
    """How strongly the workload's latent efficiency factor moves this
    chip's dynamic power.  Deep out-of-order CISC machines (x86) carry
    much unobserved microarchitectural state — the paper's "high
    intricacy of the x86 CISC architecture" — whereas simple in-order
    RISC cores couple power tightly to the counted events.  1.0 = full
    effect (x86); smaller values emulate ARM-class observability."""
    e_l1_access: float = 0.12
    e_l2_access: float = 1.30
    e_l3_access: float = 5.00
    e_flush: float = 25.0
    """Pipeline flush (mispredict) energy: ~15 cycles of discarded
    speculative work plus refill."""
    e_tlb_walk: float = 35.0
    """Page-table walk energy per TLB miss (multi-level memory walks)."""

    # --- uncore -----------------------------------------------------------
    p_uncore_base: float = 9.0
    """Ring + LLC + memory controller base power per socket (W) at
    ``v_ref``, scaling with V²."""
    e_dram_read_pj_per_byte: float = 300.0
    e_dram_write_pj_per_byte: float = 340.0
    saturation_knee: float = 0.85
    saturation_penalty: float = 0.20
    """Extra DRAM energy fraction at full bandwidth saturation (row
    conflicts, command overhead)."""
    e_qpi_pj_per_byte: float = 80.0
    p_dram_background_w: float = 2.5
    """DIMM background (refresh, PLL) per socket."""

    # --- static ---------------------------------------------------------------
    leakage_w_per_v: float = 13.0
    """Socket leakage at v_ref and reference temperature (W/V)."""
    leakage_temp_coeff: float = 0.009
    """Fractional leakage increase per Kelvin above reference."""
    t_ambient_c: float = 35.0
    t_reference_c: float = 50.0
    thermal_resistance_k_per_w: float = 0.15
    """Junction temperature rise per watt of socket power."""

    # --- board / measurement plane -----------------------------------------
    vr_efficiency: float = 0.91
    p_board_const_w: float = 4.5
    """Constant consumers behind each socket's 12 V rail."""

    def __post_init__(self) -> None:
        if not 0.5 < self.vr_efficiency <= 1.0:
            raise ValueError(f"implausible VR efficiency {self.vr_efficiency}")
        if self.v_ref <= 0:
            raise ValueError("v_ref must be positive")


#: Default parameterization for the simulated Xeon E5-2690v3.
HASWELL_EP_POWER_PARAMS = PowerModelParams()


@dataclass(frozen=True)
class PowerBreakdown:
    """Decomposition of the node power for one phase execution.

    ``measured_w`` is what the 12 V sensors see (sum over sockets);
    the component fields aid testing and the documentation examples.
    """

    per_socket_w: Tuple[float, ...]
    dynamic_core_w: Tuple[float, ...]
    uncore_w: Tuple[float, ...]
    static_w: Tuple[float, ...]
    board_w: Tuple[float, ...]
    temperature_c: Tuple[float, ...]

    @property
    def measured_w(self) -> float:
        return float(sum(self.per_socket_w))


def _dynamic_core_w(
    hidden: HiddenActivity,
    socket: int,
    op: OperatingPoint,
    p: PowerModelParams,
) -> float:
    """Dynamic power of one socket's cores (W)."""
    v_scale = (op.voltage_v / p.v_ref) ** 2
    f = op.frequency_hz
    n_active = hidden.active_cores[socket]
    stall = hidden.stall_frac[socket]

    width_factor = hidden.vector_width**p.vector_width_exponent

    # Effective active-cycle energy: stalled cycles are partially gated.
    gating = 1.0 - p.clock_gate_saving * stall
    per_cycle_nj = (
        n_active * p.e_core_active * gating
        + hidden.uops_per_cycle[socket] * p.e_uop
        + hidden.fp_scalar_per_cycle[socket] * p.e_fp_scalar
        + hidden.fp_vector_per_cycle[socket] * p.e_fp_vector * width_factor
        + hidden.l1_accesses_per_cycle[socket] * p.e_l1_access
        + hidden.l2_accesses_per_cycle[socket] * p.e_l2_access
        + hidden.l3_accesses_per_cycle[socket] * p.e_l3_access
        + hidden.flush_per_cycle[socket] * p.e_flush
        + hidden.tlb_walks_per_cycle[socket] * p.e_tlb_walk
    )
    latent = 1.0 + p.latent_sensitivity * (hidden.latent_efficiency - 1.0)
    return v_scale * f * per_cycle_nj * _NANO * latent


def _uncore_w(
    hidden: HiddenActivity,
    socket: int,
    op: OperatingPoint,
    p: PowerModelParams,
) -> float:
    """Uncore + memory power of one socket (W)."""
    v_scale = (op.voltage_v / p.v_ref) ** 2
    util = hidden.bw_utilization[socket]
    sat = 1.0
    if util > p.saturation_knee:
        sat += p.saturation_penalty * (util - p.saturation_knee) / (
            1.0 - p.saturation_knee
        )
    dram = (
        hidden.dram_read_bytes_per_s[socket] * p.e_dram_read_pj_per_byte
        + hidden.dram_write_bytes_per_s[socket] * p.e_dram_write_pj_per_byte
    ) * 1e-12 * sat
    qpi = hidden.remote_bytes_per_s[socket] * p.e_qpi_pj_per_byte * 1e-12
    return p.p_uncore_base * v_scale + dram + qpi + p.p_dram_background_w


def _socket_power_w(
    hidden: HiddenActivity,
    socket: int,
    op: OperatingPoint,
    p: PowerModelParams,
) -> Tuple[float, float, float, float, float]:
    """Power of one socket at the 12 V input, with thermal fixed point.

    Returns (total, dynamic, uncore, static, board, temperature) —
    packed as the tuple the caller re-assembles.
    """
    dyn = _dynamic_core_w(hidden, socket, op, p)
    unc = _uncore_w(hidden, socket, op, p)

    # Leakage depends on temperature which depends on total power:
    # iterate the fixed point (converges geometrically, 4 steps is
    # plenty for the gains involved).
    static = p.leakage_w_per_v * op.voltage_v
    temp = p.t_ambient_c
    for _ in range(4):
        internal = dyn + unc + static
        temp = p.t_ambient_c + p.thermal_resistance_k_per_w * internal
        static = (
            p.leakage_w_per_v
            * op.voltage_v
            * (1.0 + p.leakage_temp_coeff * (temp - p.t_reference_c))
        )
    internal = dyn + unc + static
    board = internal * (1.0 / p.vr_efficiency - 1.0) + p.p_board_const_w
    return internal + board, dyn, unc, static, temp


def compute_power(
    hidden: HiddenActivity,
    op: OperatingPoint,
    cfg: PlatformConfig,
    params: PowerModelParams = HASWELL_EP_POWER_PARAMS,
) -> PowerBreakdown:
    """Ground-truth node power for one phase execution."""
    totals, dyns, uncs, stats, boards, temps = [], [], [], [], [], []
    for s in range(cfg.sockets):
        total, dyn, unc, static, temp = _socket_power_w(hidden, s, op, params)
        totals.append(total)
        dyns.append(dyn)
        uncs.append(unc)
        stats.append(static)
        boards.append(total - dyn - unc - static)
        temps.append(temp)
    return PowerBreakdown(
        per_socket_w=tuple(totals),
        dynamic_core_w=tuple(dyns),
        uncore_w=tuple(uncs),
        static_w=tuple(stats),
        board_w=tuple(boards),
        temperature_c=tuple(temps),
    )
