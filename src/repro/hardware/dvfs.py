"""DVFS states and the voltage/frequency curve of the platform.

The paper fixes the operating frequency per run and sweeps "5 distinct
operating frequencies between 1200 and 2600 MHz" (Section IV-B).  On
contemporary Intel processors the actual core voltage can be read at
runtime (which is why the paper needs no separate voltage model); we
replicate that with a calibrated V/f curve plus load-dependent and
measurement jitter in :mod:`repro.hardware.voltage`.

Voltages follow the near-affine V/f relation of Haswell-EP parts
(~0.70 V at 1.2 GHz up to ~1.04 V at 2.6 GHz, no turbo — Turbo Boost is
disabled on the system under test, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "OperatingPoint",
    "PState",
    "VoltageFrequencyCurve",
    "HASWELL_EP_CURVE",
    "PAPER_FREQUENCIES_MHZ",
    "SELECTION_FREQUENCY_MHZ",
]

#: The five DVFS states swept in Section IV-B (MHz).
PAPER_FREQUENCIES_MHZ: Tuple[int, ...] = (1200, 1600, 2000, 2400, 2600)

#: Counter selection runs at a fixed 2400 MHz (Section IV-A).
SELECTION_FREQUENCY_MHZ: int = 2400


@dataclass(frozen=True)
class PState:
    """One ACPI P-state: nominal frequency and its supply voltage."""

    frequency_mhz: int
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")
        if not 0.4 < self.voltage_v < 1.5:
            raise ValueError(
                f"implausible core voltage {self.voltage_v} V for a 22 nm part"
            )


@dataclass(frozen=True)
class OperatingPoint:
    """A concrete (frequency, voltage) pair a run executes at.

    ``frequency_hz`` and ``voltage_v`` are what enter Equation 1 as
    ``f_clk`` and ``V_DD``.
    """

    frequency_mhz: int
    voltage_v: float

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_mhz / 1000.0


class VoltageFrequencyCurve:
    """Piecewise-linear nominal V/f curve built from P-state anchors."""

    def __init__(self, pstates: Tuple[PState, ...]) -> None:
        if len(pstates) < 2:
            raise ValueError("need at least two P-states to interpolate")
        ordered = tuple(sorted(pstates, key=lambda p: p.frequency_mhz))
        freqs = [p.frequency_mhz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate P-state frequencies")
        volts = [p.voltage_v for p in ordered]
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise ValueError("voltage must be non-decreasing in frequency")
        self._pstates = ordered

    @property
    def pstates(self) -> Tuple[PState, ...]:
        return self._pstates

    @property
    def min_frequency_mhz(self) -> int:
        return self._pstates[0].frequency_mhz

    @property
    def max_frequency_mhz(self) -> int:
        return self._pstates[-1].frequency_mhz

    def voltage_at(self, frequency_mhz: float) -> float:
        """Nominal supply voltage at a frequency (linear interpolation).

        Frequencies outside the P-state table are a configuration
        error, not an extrapolation case — real hardware refuses them.
        """
        ps = self._pstates
        if not ps[0].frequency_mhz <= frequency_mhz <= ps[-1].frequency_mhz:
            raise ValueError(
                f"{frequency_mhz} MHz outside supported range "
                f"[{ps[0].frequency_mhz}, {ps[-1].frequency_mhz}]"
            )
        for lo, hi in zip(ps, ps[1:]):
            if frequency_mhz <= hi.frequency_mhz:
                span = hi.frequency_mhz - lo.frequency_mhz
                t = (frequency_mhz - lo.frequency_mhz) / span
                return lo.voltage_v + t * (hi.voltage_v - lo.voltage_v)
        raise AssertionError("unreachable")  # pragma: no cover

    def operating_point(self, frequency_mhz: int) -> OperatingPoint:
        """The nominal :class:`OperatingPoint` for a pinned frequency."""
        return OperatingPoint(
            frequency_mhz=int(frequency_mhz),
            voltage_v=self.voltage_at(frequency_mhz),
        )


#: Nominal V/f anchors for the simulated Xeon E5-2690v3 (Haswell-EP).
HASWELL_EP_CURVE = VoltageFrequencyCurve(
    (
        PState(1200, 0.70),
        PState(1600, 0.78),
        PState(2000, 0.87),
        PState(2400, 0.97),
        PState(2600, 1.04),
    )
)
