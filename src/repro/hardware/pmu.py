"""Performance monitoring unit: counter programming and scheduling.

Real PMUs can only collect a handful of programmable events
simultaneously — the reason the paper needs "multiple runs of the same
application […] due to the hardware limitation on simultaneous
recording of multiple PAPI counters" (Section III-A).  This module
models that constraint:

* :class:`EventSet` — a validated set of events that fits the PMU
  (≤ ``programmable_slots`` programmable events; fixed counters are
  free),
* :func:`schedule_events` — partition an arbitrary event list into the
  minimal sequence of event sets, i.e. the run plan of a campaign,
* :class:`PMU` — turns true per-cycle rates into counted values for the
  programmed events, applying counting noise.

Counting noise has two components, matching observed PMU behaviour:
a coherent per-run scale jitter (the run executed slightly differently)
applied upstream by the platform, and small independent per-counter
read noise applied here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hardware.config import PlatformConfig
from repro.hardware.counters import (
    COUNTER_NAMES,
    FIXED_COUNTERS,
    PROGRAMMABLE_COUNTERS,
    counter_index,
)

__all__ = ["EventSet", "schedule_events", "PMU"]


@dataclass(frozen=True)
class EventSet:
    """A set of simultaneously countable events."""

    events: Tuple[str, ...]

    def __post_init__(self) -> None:
        seen = set()
        for e in self.events:
            counter_index(e)  # validates the name
            if e in seen:
                raise ValueError(f"duplicate event {e!r} in event set")
            seen.add(e)

    def programmable(self) -> Tuple[str, ...]:
        return tuple(e for e in self.events if e not in FIXED_COUNTERS)

    def validate_against(self, cfg: PlatformConfig) -> None:
        prog = self.programmable()
        if len(prog) > cfg.programmable_slots:
            raise ValueError(
                f"event set needs {len(prog)} programmable slots, PMU has "
                f"{cfg.programmable_slots}: {prog}"
            )


def schedule_events(
    events: Sequence[str], cfg: PlatformConfig
) -> List[EventSet]:
    """Partition ``events`` into a minimal run plan.

    Fixed counters ride along in every run (they are always collected);
    programmable events are packed ``programmable_slots`` per run in
    canonical counter order, so the plan is deterministic.
    """
    for e in events:
        counter_index(e)
    fixed = [e for e in FIXED_COUNTERS if e in events or True]
    # Always collect all fixed counters: they cost nothing.
    prog = [e for e in PROGRAMMABLE_COUNTERS if e in set(events)]
    unknown_prog = set(events) - set(FIXED_COUNTERS) - set(PROGRAMMABLE_COUNTERS)
    if unknown_prog:  # pragma: no cover - names validated above
        raise ValueError(f"unschedulable events: {sorted(unknown_prog)}")

    sets: List[EventSet] = []
    if not prog:
        sets.append(EventSet(events=tuple(fixed)))
        return sets
    for start in range(0, len(prog), cfg.programmable_slots):
        chunk = prog[start : start + cfg.programmable_slots]
        es = EventSet(events=tuple(fixed) + tuple(chunk))
        es.validate_against(cfg)
        sets.append(es)
    return sets


class PMU:
    """Counts events for one run given true rates.

    Parameters
    ----------
    cfg:
        Platform description (slot limit).
    read_noise_sigma:
        Relative sigma of independent per-counter noise (sampling
        skid, interrupt shadow, …).
    """

    def __init__(
        self,
        cfg: PlatformConfig,
        *,
        read_noise_sigma: float = 0.01,
        multiplex_noise_sigma: float = 0.02,
    ):
        if read_noise_sigma < 0 or multiplex_noise_sigma < 0:
            raise ValueError("noise sigma cannot be negative")
        self.cfg = cfg
        self.read_noise_sigma = read_noise_sigma
        self.multiplex_noise_sigma = multiplex_noise_sigma

    def count(
        self,
        event_set: EventSet,
        true_rates: np.ndarray,
        frequency_hz: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        """Counted totals for the programmed events over one phase.

        ``true_rates`` is the full 54-vector of per-chip-cycle rates;
        only the programmed events are returned — the campaign layer
        must merge runs to reconstruct the full vector, as on real
        hardware.
        """
        event_set.validate_against(self.cfg)
        if true_rates.shape != (len(COUNTER_NAMES),):
            raise ValueError(
                f"expected rate vector of shape ({len(COUNTER_NAMES)},), "
                f"got {true_rates.shape}"
            )
        if duration_s <= 0 or frequency_hz <= 0:
            raise ValueError("duration and frequency must be positive")
        cycles = frequency_hz * duration_s
        out: Dict[str, float] = {}
        for name in event_set.events:
            rate = float(true_rates[counter_index(name)])
            noise = 1.0 + float(rng.normal(0.0, self.read_noise_sigma))
            count = max(rate * cycles * noise, 0.0)
            # Counters are integral.
            out[name] = float(np.floor(count))
        return out

    def count_multiplexed(
        self,
        events: Sequence[str],
        true_rates: np.ndarray,
        frequency_hz: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        """Count arbitrarily many events in ONE run by time-division
        multiplexing (PAPI_multiplex_init style).

        The programmable events are rotated through the hardware slots;
        each group observes only ``1/n_groups`` of the run and its
        counts are extrapolated by ``n_groups``.  Extrapolation
        amplifies sampling noise by roughly ``sqrt(n_groups)`` — the
        accuracy price of avoiding the paper's multi-run campaigns,
        quantified in the acquisition-mode benchmark.
        """
        for e in events:
            counter_index(e)
        if true_rates.shape != (len(COUNTER_NAMES),):
            raise ValueError(
                f"expected rate vector of shape ({len(COUNTER_NAMES)},), "
                f"got {true_rates.shape}"
            )
        if duration_s <= 0 or frequency_hz <= 0:
            raise ValueError("duration and frequency must be positive")
        prog = [e for e in events if e not in FIXED_COUNTERS]
        n_groups = max(
            -(-len(prog) // self.cfg.programmable_slots), 1
        )
        cycles = frequency_hz * duration_s
        out: Dict[str, float] = {}
        for name in events:
            rate = float(true_rates[counter_index(name)])
            if name in FIXED_COUNTERS:
                sigma = self.read_noise_sigma
            else:
                sigma = np.hypot(
                    self.read_noise_sigma,
                    self.multiplex_noise_sigma * np.sqrt(max(n_groups - 1, 0)),
                )
            noise = 1.0 + float(rng.normal(0.0, sigma))
            out[name] = float(np.floor(max(rate * cycles * noise, 0.0)))
        return out
