"""Per-core voltage readout — the x86_adapt analogue.

Section III: "there is no need for a CPU voltage model, given that it
is possible to read actual core voltages during runtime on contemporary
Intel processors"; the scorep_x86_adapt plugin samples these per-core
registers.  We model the readable voltage as the nominal P-state
voltage plus a small load-dependent regulation bump and quantized
telemetry noise — the reading the statistical model uses as
:math:`V_{DD}` in Equation 1.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.config import PlatformConfig
from repro.hardware.dvfs import OperatingPoint

__all__ = ["VoltageTelemetry"]


class VoltageTelemetry:
    """Runtime voltage readout of the simulated package."""

    #: VID step of the on-die telemetry (V) — readings are quantized.
    VID_STEP = 1.0 / 8192.0  # Haswell FIVR telemetry granularity

    def __init__(
        self,
        cfg: PlatformConfig,
        *,
        load_bump_frac: float = 0.008,
        read_noise_v: float = 0.0015,
    ) -> None:
        self.cfg = cfg
        self.load_bump_frac = load_bump_frac
        self.read_noise_v = read_noise_v

    def true_voltage(self, op: OperatingPoint, active_cores: int) -> float:
        """Actual regulated core voltage under load.

        The FIVR raises the operating voltage slightly with load to
        maintain timing margin under current draw (adaptive voltage
        positioning) — a small, real source of voltage variation the
        paper's per-core readings capture.
        """
        if active_cores < 0 or active_cores > self.cfg.total_cores:
            raise ValueError(f"active_cores {active_cores} out of range")
        load = active_cores / self.cfg.total_cores
        return op.voltage_v * (1.0 + self.load_bump_frac * load)

    def read_average(
        self,
        op: OperatingPoint,
        active_cores: int,
        n_samples: int,
        rng: np.random.Generator,
    ) -> float:
        """Phase-averaged telemetry reading over ``n_samples`` samples."""
        if n_samples < 1:
            raise ValueError("need at least one sample")
        true = self.true_voltage(op, active_cores)
        readings = true + rng.normal(0.0, self.read_noise_v, size=n_samples)
        readings = np.round(readings / self.VID_STEP) * self.VID_STEP
        return float(readings.mean())
