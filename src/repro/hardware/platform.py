"""The simulated system under test: a dual-socket Haswell-EP node.

:class:`Platform` binds together the microarchitecture model, the
ground-truth power model, the sensor instrumentation, the voltage
telemetry and the PMU, and executes workloads at pinned operating
points — the simulated equivalent of launching an instrumented binary
on the paper's test system.

An execution (:class:`RunExecution`) carries *truth*: per-phase
microarchitectural state and ground-truth power.  Measurement —
sampling sensors, reading the PMU — is performed by the tracing layer
(:mod:`repro.tracing`), mirroring the paper's separation between the
system under test and the measurement infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.config import HASWELL_EP_CONFIG, PlatformConfig
from repro.hardware.counters import COUNTER_NAMES, counter_index
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.fastsim import PhaseStateMemo, fastsim_enabled, simulate_phases
from repro.hardware.microarch import MicroarchState, evaluate
from repro.hardware.pmu import PMU
from repro.hardware.power import (
    HASWELL_EP_POWER_PARAMS,
    PowerBreakdown,
    PowerModelParams,
    compute_power,
)
from repro.hardware.sensors import SensorArray
from repro.hardware.voltage import VoltageTelemetry
from repro.seeding import (
    DEFAULT_SEED,
    SeedHasher,
    derive_rng,
    rng_from_state_words,
    seedseq_state_words,
)
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["PhaseExecution", "RunExecution", "Platform"]

#: Counters exempt from run-to-run execution jitter: cycle counts are
#: pinned by the fixed frequency and wall time.
_JITTER_EXEMPT = ("TOT_CYC", "REF_CYC")


def _jitter_mask() -> np.ndarray:
    """Boolean mask selecting the jitter-affected counters (cached)."""
    mask = np.ones(len(COUNTER_NAMES), dtype=bool)
    for name in _JITTER_EXEMPT:
        mask[counter_index(name)] = False
    mask.setflags(write=False)
    return mask


_JITTER_MASK = _jitter_mask()

#: Integer column indices of the exempt counters (batch applicator).
_EXEMPT_IDX = np.array(
    [counter_index(name) for name in _JITTER_EXEMPT], dtype=np.intp
)


@dataclass(frozen=True)
class _RunSkeleton:
    """Everything about a run that does not depend on ``run_index``.

    The pre-jitter phase stack of one (workload, frequency, threads)
    experiment: specs, operating point, stacked pre-jitter counter
    rates, hidden activities, base power breakdowns, true voltages and
    phase timings.  A campaign re-executes each experiment once per
    event set; only the three run-level jitter draws differ, so the
    skeleton is computed once and replayed (fast path only).
    """

    specs: Tuple[PhaseSpec, ...]
    op: OperatingPoint
    rates: np.ndarray
    hidden: Tuple
    breakdowns: Tuple[PowerBreakdown, ...]
    voltages: Tuple[float, ...]
    bounds: Tuple[Tuple[float, float], ...]
    derived: bool
    """True when ``specs`` came from ``workload.phases(threads)`` (the
    memo may then serve ``phases=None`` callers)."""


@dataclass(frozen=True)
class PhaseExecution:
    """Ground truth for one executed phase."""

    phase: PhaseSpec
    start_s: float
    end_s: float
    state: MicroarchState
    power_breakdown: PowerBreakdown
    true_voltage_v: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class RunExecution:
    """Ground truth for one complete run of a workload."""

    workload_name: str
    suite: str
    op: OperatingPoint
    threads: int
    run_index: int
    phases: Tuple[PhaseExecution, ...]
    seed: int

    @property
    def total_duration_s(self) -> float:
        return self.phases[-1].end_s if self.phases else 0.0


class Platform:
    """Simulated dual-socket x86 node with instrumentation attached."""

    def __init__(
        self,
        cfg: PlatformConfig = HASWELL_EP_CONFIG,
        power_params: PowerModelParams = HASWELL_EP_POWER_PARAMS,
        *,
        seed: int = DEFAULT_SEED,
        run_jitter_sigma: float = 0.004,
        power_jitter_sigma: float = 0.003,
        power_offset_sigma_w: float = 1.2,
    ) -> None:
        self.cfg = cfg
        self.power_params = power_params
        self.seed = seed
        self.run_jitter_sigma = run_jitter_sigma
        self.power_jitter_sigma = power_jitter_sigma
        self.power_offset_sigma_w = power_offset_sigma_w
        # Instrument calibration is a property of the physical setup:
        # drawn once per platform instance, stable across campaigns.
        self.sensors = SensorArray.build(
            cfg.sockets, derive_rng(seed, "sensor-calibration")
        )
        self.voltage = VoltageTelemetry(cfg)
        self.pmu = PMU(cfg)
        # Pre-jitter phase states, shared across the event-set runs of a
        # campaign (see repro.hardware.fastsim).  Never pickled: worker
        # processes rebuild their own memo on first use.
        self._phase_memo = PhaseStateMemo()
        # Whole-run skeletons keyed (workload, frequency, threads) — the
        # run_index-independent part of execute().  Same lifecycle as
        # the phase memo.
        self._run_memo: dict = {}
        # Pre-hashed head of the per-run jitter RNG key (fast path
        # only; holds a hash object, so it is rebuilt after pickling).
        self._run_hasher = SeedHasher(seed, "run")
        # Pre-expanded RNG state words, filled by campaigns via
        # prime_rng_words and keyed (workload, frequency, threads,
        # run_index) -> {stream name -> words}.  A pure derivation
        # cache: a hit yields the same generator stream a cold
        # default_rng construction would.  Same lifecycle as the memos.
        self._rng_words: dict = {}

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_phase_memo"] = None
        state["_run_memo"] = None
        state["_run_hasher"] = None
        state["_rng_words"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("_phase_memo") is None:
            self._phase_memo = PhaseStateMemo()
        if self.__dict__.get("_run_memo") is None:
            self._run_memo = {}
        if self.__dict__.get("_run_hasher") is None:
            self._run_hasher = SeedHasher(self.seed, "run")
        if self.__dict__.get("_rng_words") is None:
            self._rng_words = {}

    # ------------------------------------------------------------------
    def execute(
        self,
        workload: Workload,
        frequency_mhz: int,
        threads: int,
        *,
        run_index: int = 0,
        fast: Optional[bool] = None,
        phases: Optional[Sequence[PhaseSpec]] = None,
    ) -> RunExecution:
        """Execute a workload at a pinned frequency and thread count.

        The operating frequency is "always fixed to one particular
        value during one particular execution" (Section III-A).
        Run-to-run variation is modelled as a coherent multiplicative
        jitter on activity rates with a correlated power jitter.

        ``fast`` selects the batched+memoized kernel (default: the
        ``REPRO_FASTSIM`` resolution of
        :func:`~repro.hardware.fastsim.fastsim_enabled`); both paths
        are bit-identical.  ``phases`` lets callers that re-execute the
        same cell (retry loops) pass a pre-derived phase list instead
        of re-deriving it from the workload every attempt.
        """
        use_fast = fastsim_enabled(fast)
        if use_fast:
            skeleton = self._run_skeleton(workload, frequency_mhz, threads, phases)
            specs = skeleton.specs
            op = skeleton.op
        else:
            workload.validate_threads(threads, self.cfg.total_cores)
            op = self.cfg.curve.operating_point(frequency_mhz)
            specs = (
                tuple(phases)
                if phases is not None
                else tuple(workload.phases(threads))
            )
        if use_fast:
            # Same key path as the scalar derive_rng below, with the
            # constant ("run",) head pre-hashed (SeedHasher contract)
            # and, under a primed campaign, the seed's PCG64 state
            # words already expanded (rng_from_state_words contract).
            entry = self._rng_words.get(
                (workload.name, frequency_mhz, threads, run_index)
            )
            words = entry.get("run") if entry is not None else None
            if words is not None:
                rng = rng_from_state_words(words)
            else:
                rng = self._run_hasher.rng(
                    workload.name, frequency_mhz, threads, run_index
                )
        else:
            rng = derive_rng(
                self.seed, "run", workload.name, frequency_mhz, threads, run_index
            )
        if use_fast:
            # One block draw; scalar ``normal(0, s)`` is ``0.0 + s*z``
            # on the same ziggurat stream, so the values are identical.
            z = rng.standard_normal(3)
            jitter = 1.0 + float(0.0 + self.run_jitter_sigma * z[0])
            power_jitter = (
                1.0
                + 0.6 * (jitter - 1.0)
                + float(0.0 + self.power_jitter_sigma * z[1])
            )
            power_offset = float(0.0 + self.power_offset_sigma_w * z[2])
        else:
            jitter = 1.0 + float(rng.normal(0.0, self.run_jitter_sigma))
            power_jitter = (
                1.0
                + 0.6 * (jitter - 1.0)
                + float(rng.normal(0.0, self.power_jitter_sigma))
            )
            power_offset = float(rng.normal(0.0, self.power_offset_sigma_w))
        # Run-level absolute power offset: OS housekeeping, fan state,
        # VR operating-point differences.  Dominates *relative* error at
        # the low end of the power range.
        per_socket_offset = power_offset / self.cfg.sockets

        executions: List[PhaseExecution] = []
        if use_fast:
            # Replay the skeleton: one jitter multiply over the stacked
            # pre-jitter rates (exempt columns restored from the stack,
            # same values as the masked per-phase multiply), then only
            # the per-run breakdown scaling runs per phase.
            jittered = skeleton.rates * jitter
            if jittered.size:
                jittered[:, _EXEMPT_IDX] = skeleton.rates[:, _EXEMPT_IDX]
            hidden = skeleton.hidden
            voltages = skeleton.voltages
            bounds = skeleton.bounds
            append = executions.append
            for i, spec in enumerate(specs):
                base = skeleton.breakdowns[i]
                breakdown = PowerBreakdown(
                    per_socket_w=tuple(
                        [
                            max(p * power_jitter + per_socket_offset, 0.0)
                            for p in base.per_socket_w
                        ]
                    ),
                    dynamic_core_w=base.dynamic_core_w,
                    uncore_w=base.uncore_w,
                    static_w=base.static_w,
                    board_w=base.board_w,
                    temperature_c=base.temperature_c,
                )
                start_s, end_s = bounds[i]
                append(
                    PhaseExecution(
                        phase=spec,
                        start_s=start_s,
                        end_s=end_s,
                        state=MicroarchState(
                            counter_rates=jittered[i],
                            hidden=hidden[i],
                        ),
                        power_breakdown=breakdown,
                        true_voltage_v=voltages[i],
                    )
                )
        else:
            states = [
                self._apply_jitter(
                    evaluate(
                        spec.characterization, op, spec.active_threads, self.cfg
                    ),
                    jitter,
                )
                for spec in specs
            ]
            t = 0.0
            for spec, state in zip(specs, states):
                breakdown = compute_power(
                    state.hidden, op, self.cfg, self.power_params
                )
                breakdown = PowerBreakdown(
                    per_socket_w=tuple(
                        max(p * power_jitter + per_socket_offset, 0.0)
                        for p in breakdown.per_socket_w
                    ),
                    dynamic_core_w=breakdown.dynamic_core_w,
                    uncore_w=breakdown.uncore_w,
                    static_w=breakdown.static_w,
                    board_w=breakdown.board_w,
                    temperature_c=breakdown.temperature_c,
                )
                true_v = self.voltage.true_voltage(op, spec.active_threads)
                executions.append(
                    PhaseExecution(
                        phase=spec,
                        start_s=t,
                        end_s=t + spec.duration_s,
                        state=state,
                        power_breakdown=breakdown,
                        true_voltage_v=true_v,
                    )
                )
                t += spec.duration_s

        return RunExecution(
            workload_name=workload.name,
            suite=workload.suite,
            op=op,
            threads=threads,
            run_index=run_index,
            phases=tuple(executions),
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def _run_skeleton(
        self,
        workload: Workload,
        frequency_mhz: int,
        threads: int,
        phases: Optional[Sequence[PhaseSpec]],
    ) -> _RunSkeleton:
        """The run_index-independent phase stack, memoized.

        Keyed ``(workload, frequency, threads)``; a memo entry built
        from the workload's own phase list also serves ``phases=None``
        callers, while explicit phase lists must match the cached specs
        exactly (otherwise the skeleton is rebuilt uncached).
        """
        key = (workload.name, frequency_mhz, threads)
        cached = self._run_memo.get(key)
        if cached is not None:
            if phases is None:
                if cached.derived:
                    return cached
            elif tuple(phases) == cached.specs:
                return cached
        workload.validate_threads(threads, self.cfg.total_cores)
        op = self.cfg.curve.operating_point(frequency_mhz)
        derived = phases is None
        specs = tuple(workload.phases(threads)) if derived else tuple(phases)
        pairs = self._phase_states_fast(specs, op)
        if pairs:
            rates = np.stack([state.counter_rates for state, _ in pairs])
        else:
            rates = np.empty((0, len(COUNTER_NAMES)))
        rates.setflags(write=False)
        bounds = []
        t = 0.0
        for spec in specs:
            bounds.append((t, t + spec.duration_s))
            t += spec.duration_s
        skeleton = _RunSkeleton(
            specs=specs,
            op=op,
            rates=rates,
            hidden=tuple(state.hidden for state, _ in pairs),
            breakdowns=tuple(breakdown for _, breakdown in pairs),
            voltages=tuple(
                self.voltage.true_voltage(op, spec.active_threads)
                for spec in specs
            ),
            bounds=tuple(bounds),
            derived=derived,
        )
        if derived or cached is None:
            if len(self._run_memo) >= 4096:
                self._run_memo.pop(next(iter(self._run_memo)))
            self._run_memo[key] = skeleton
        return skeleton

    # ------------------------------------------------------------------
    def prime_run_skeletons(
        self, experiments: Iterable[Tuple[Workload, int, int]]
    ) -> None:
        """Warm the run/phase memos for a batch of experiments at once.

        A campaign visits every experiment's phases once per PMU event
        set; built one experiment at a time, each skeleton pays a
        separate :func:`~repro.hardware.fastsim.simulate_phases` call
        on a handful of phases — mostly fixed kernel-dispatch overhead.
        Priming groups every uncached phase state by operating point
        and evaluates each group through ONE batched call; elementwise
        float64 kernels are batch-size invariant, so the states equal
        the per-experiment builds bit for bit (the identity the fastsim
        test suite pins).  Purely a cache warm-up: :meth:`execute`
        output is unchanged whether or not this ran.
        """
        memo = self._phase_memo
        pending: List[Tuple[Workload, int, int]] = []
        by_op: Dict[int, Tuple[OperatingPoint, dict]] = {}
        for workload, frequency_mhz, threads in experiments:
            cached = self._run_memo.get((workload.name, frequency_mhz, threads))
            if cached is not None and cached.derived:
                continue
            workload.validate_threads(threads, self.cfg.total_cores)
            op = self.cfg.curve.operating_point(frequency_mhz)
            pending.append((workload, frequency_mhz, threads))
            group = by_op.setdefault(frequency_mhz, (op, {}))[1]
            for spec in workload.phases(threads):
                key = (spec.characterization, frequency_mhz, spec.active_threads)
                if memo.get(key) is None:
                    group[key] = None
        for op, group in by_op.values():
            if not group:
                continue
            uniq = list(group)
            results = simulate_phases(
                [key[0] for key in uniq],
                [key[2] for key in uniq],
                op,
                self.cfg,
                self.power_params,
            )
            for key, result in zip(uniq, results):
                memo.put(key, result)
        for workload, frequency_mhz, threads in pending:
            self._run_skeleton(workload, frequency_mhz, threads, None)

    # ------------------------------------------------------------------
    def prime_rng_words(
        self,
        runs: Iterable[Tuple[Workload, int, int, int]],
        plugin_names: Sequence[str],
    ) -> None:
        """Expand every run's RNG seeds to PCG64 state words, batched.

        A campaign constructs one generator per run-level jitter draw
        plus one per (plugin, phase) metric stream; built one at a
        time, each pays ``default_rng``'s ``SeedSequence`` expansion.
        The seeds are all known up front, so this derives them with the
        incremental hasher and runs one vectorized
        :func:`~repro.seeding.seedseq_state_words` pass over the lot.
        :meth:`execute` and the tracer then construct each generator
        from its precomputed words — the same stream a cold
        ``default_rng(seed)`` construction yields, so primed and
        unprimed acquisition are bit-identical.

        ``runs`` holds (workload, frequency_mhz, threads, run_index);
        ``plugin_names`` the plugin *type* names of the tracer (their
        RNG key heads).  Phase names come from the memoized run
        skeleton — prime skeletons first to keep that build batched.
        """
        cache = self._rng_words
        if len(cache) >= 8192:
            cache.clear()
        bases = {
            name: SeedHasher(self.seed, "plugin", name)
            for name in plugin_names
        }
        name_blobs: Dict[str, bytes] = {}
        experiment_names: Dict[Tuple[str, int, int], Tuple[str, ...]] = {}
        seeds: List[int] = []
        layout: List[Tuple[Tuple[str, int, int, int], int, Tuple[str, ...]]] = []
        for workload, frequency_mhz, threads, run_index in runs:
            run_key = (workload.name, frequency_mhz, threads, run_index)
            if run_key in cache:
                continue
            phase_names = experiment_names.get(run_key[:3])
            if phase_names is None:
                skeleton = self._run_skeleton(
                    workload, frequency_mhz, threads, None
                )
                phase_names = tuple(spec.name for spec in skeleton.specs)
                experiment_names[run_key[:3]] = phase_names
            run_blob = SeedHasher.encode(
                workload.name, frequency_mhz, threads, run_index
            )
            layout.append((run_key, len(seeds), phase_names))
            seeds.append(self._run_hasher.seed_encoded(run_blob))
            for base in bases.values():
                child = base.child_encoded(run_blob)
                for phase_name in phase_names:
                    blob = name_blobs.get(phase_name)
                    if blob is None:
                        name_blobs[phase_name] = blob = SeedHasher.encode(
                            phase_name
                        )
                    seeds.append(child.seed_encoded(blob))
        if not seeds:
            return
        words = seedseq_state_words(seeds)
        for run_key, start, phase_names in layout:
            entry: Dict[str, object] = {
                # Guards consumers against phase-list drift: words are
                # replayed positionally, so the names must match.
                "phases": phase_names,
                "run": words[start],
            }
            pos = start + 1
            n_phases = len(phase_names)
            for name in bases:
                entry[name] = words[pos : pos + n_phases]
                pos += n_phases
            cache[run_key] = entry

    # ------------------------------------------------------------------
    def _phase_states_fast(
        self, specs: Sequence[PhaseSpec], op: OperatingPoint
    ) -> List[Tuple[MicroarchState, PowerBreakdown]]:
        """Pre-jitter (state, base power) per phase via the memo.

        Misses are batched through one :func:`simulate_phases` call;
        hits replay the campaign's earlier event-set runs for free.
        """
        memo = self._phase_memo
        keys = [
            (spec.characterization, op.frequency_mhz, spec.active_threads)
            for spec in specs
        ]
        out: List[Optional[Tuple[MicroarchState, PowerBreakdown]]] = [
            memo.get(key) for key in keys
        ]
        if any(entry is None for entry in out):
            missing: dict = {}
            for i, entry in enumerate(out):
                if entry is None:
                    missing.setdefault(keys[i], []).append(i)
            uniq = list(missing)
            results = simulate_phases(
                [key[0] for key in uniq],
                [key[2] for key in uniq],
                op,
                self.cfg,
                self.power_params,
            )
            for key, result in zip(uniq, results):
                memo.put(key, result)
                for i in missing[key]:
                    out[i] = result
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _apply_jitter(self, state: MicroarchState, jitter: float) -> MicroarchState:
        """Coherent run-to-run activity jitter (cycle counters exempt)."""
        rates = state.counter_rates.copy()
        rates[_JITTER_MASK] *= jitter
        return MicroarchState(counter_rates=rates, hidden=state.hidden)

    # ------------------------------------------------------------------
    def supported_frequencies(self) -> Tuple[int, int]:
        """Min/max pinnable core frequency in MHz."""
        return (
            self.cfg.curve.min_frequency_mhz,
            self.cfg.curve.max_frequency_mhz,
        )

    def describe(self) -> str:
        """Human-readable platform summary (README material)."""
        c = self.cfg
        return (
            f"{c.name}: {c.sockets} sockets x {c.cores_per_socket} cores, "
            f"{c.curve.min_frequency_mhz}-{c.curve.max_frequency_mhz} MHz, "
            f"{len(COUNTER_NAMES)} PAPI presets, "
            f"{c.programmable_slots} programmable PMU slots"
        )
