"""The simulated system under test: a dual-socket Haswell-EP node.

:class:`Platform` binds together the microarchitecture model, the
ground-truth power model, the sensor instrumentation, the voltage
telemetry and the PMU, and executes workloads at pinned operating
points — the simulated equivalent of launching an instrumented binary
on the paper's test system.

An execution (:class:`RunExecution`) carries *truth*: per-phase
microarchitectural state and ground-truth power.  Measurement —
sampling sensors, reading the PMU — is performed by the tracing layer
(:mod:`repro.tracing`), mirroring the paper's separation between the
system under test and the measurement infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.config import HASWELL_EP_CONFIG, PlatformConfig
from repro.hardware.counters import COUNTER_NAMES, counter_index
from repro.hardware.dvfs import OperatingPoint
from repro.hardware.microarch import MicroarchState, evaluate
from repro.hardware.pmu import PMU
from repro.hardware.power import (
    HASWELL_EP_POWER_PARAMS,
    PowerBreakdown,
    PowerModelParams,
    compute_power,
)
from repro.hardware.sensors import SensorArray
from repro.hardware.voltage import VoltageTelemetry
from repro.seeding import DEFAULT_SEED, derive_rng
from repro.workloads.base import PhaseSpec, Workload

__all__ = ["PhaseExecution", "RunExecution", "Platform"]

#: Counters exempt from run-to-run execution jitter: cycle counts are
#: pinned by the fixed frequency and wall time.
_JITTER_EXEMPT = ("TOT_CYC", "REF_CYC")


@dataclass(frozen=True)
class PhaseExecution:
    """Ground truth for one executed phase."""

    phase: PhaseSpec
    start_s: float
    end_s: float
    state: MicroarchState
    power_breakdown: PowerBreakdown
    true_voltage_v: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class RunExecution:
    """Ground truth for one complete run of a workload."""

    workload_name: str
    suite: str
    op: OperatingPoint
    threads: int
    run_index: int
    phases: Tuple[PhaseExecution, ...]
    seed: int

    @property
    def total_duration_s(self) -> float:
        return self.phases[-1].end_s if self.phases else 0.0


class Platform:
    """Simulated dual-socket x86 node with instrumentation attached."""

    def __init__(
        self,
        cfg: PlatformConfig = HASWELL_EP_CONFIG,
        power_params: PowerModelParams = HASWELL_EP_POWER_PARAMS,
        *,
        seed: int = DEFAULT_SEED,
        run_jitter_sigma: float = 0.004,
        power_jitter_sigma: float = 0.003,
        power_offset_sigma_w: float = 1.2,
    ) -> None:
        self.cfg = cfg
        self.power_params = power_params
        self.seed = seed
        self.run_jitter_sigma = run_jitter_sigma
        self.power_jitter_sigma = power_jitter_sigma
        self.power_offset_sigma_w = power_offset_sigma_w
        # Instrument calibration is a property of the physical setup:
        # drawn once per platform instance, stable across campaigns.
        self.sensors = SensorArray.build(
            cfg.sockets, derive_rng(seed, "sensor-calibration")
        )
        self.voltage = VoltageTelemetry(cfg)
        self.pmu = PMU(cfg)

    # ------------------------------------------------------------------
    def execute(
        self,
        workload: Workload,
        frequency_mhz: int,
        threads: int,
        *,
        run_index: int = 0,
    ) -> RunExecution:
        """Execute a workload at a pinned frequency and thread count.

        The operating frequency is "always fixed to one particular
        value during one particular execution" (Section III-A).
        Run-to-run variation is modelled as a coherent multiplicative
        jitter on activity rates with a correlated power jitter.
        """
        workload.validate_threads(threads, self.cfg.total_cores)
        op = self.cfg.curve.operating_point(frequency_mhz)
        rng = derive_rng(
            self.seed, "run", workload.name, frequency_mhz, threads, run_index
        )
        jitter = 1.0 + float(rng.normal(0.0, self.run_jitter_sigma))
        power_jitter = (
            1.0
            + 0.6 * (jitter - 1.0)
            + float(rng.normal(0.0, self.power_jitter_sigma))
        )
        # Run-level absolute power offset: OS housekeeping, fan state,
        # VR operating-point differences.  Dominates *relative* error at
        # the low end of the power range.
        power_offset = float(rng.normal(0.0, self.power_offset_sigma_w))

        executions: List[PhaseExecution] = []
        t = 0.0
        for phase in workload.phases(threads):
            state = evaluate(
                phase.characterization, op, phase.active_threads, self.cfg
            )
            state = self._apply_jitter(state, jitter)
            breakdown = compute_power(state.hidden, op, self.cfg, self.power_params)
            per_socket_offset = power_offset / self.cfg.sockets
            breakdown = PowerBreakdown(
                per_socket_w=tuple(
                    max(p * power_jitter + per_socket_offset, 0.0)
                    for p in breakdown.per_socket_w
                ),
                dynamic_core_w=breakdown.dynamic_core_w,
                uncore_w=breakdown.uncore_w,
                static_w=breakdown.static_w,
                board_w=breakdown.board_w,
                temperature_c=breakdown.temperature_c,
            )
            true_v = self.voltage.true_voltage(op, phase.active_threads)
            executions.append(
                PhaseExecution(
                    phase=phase,
                    start_s=t,
                    end_s=t + phase.duration_s,
                    state=state,
                    power_breakdown=breakdown,
                    true_voltage_v=true_v,
                )
            )
            t += phase.duration_s

        return RunExecution(
            workload_name=workload.name,
            suite=workload.suite,
            op=op,
            threads=threads,
            run_index=run_index,
            phases=tuple(executions),
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def _apply_jitter(self, state: MicroarchState, jitter: float) -> MicroarchState:
        """Coherent run-to-run activity jitter (cycle counters exempt)."""
        rates = state.counter_rates.copy()
        mask = np.ones_like(rates, dtype=bool)
        for name in _JITTER_EXEMPT:
            mask[counter_index(name)] = False
        rates[mask] *= jitter
        return MicroarchState(counter_rates=rates, hidden=state.hidden)

    # ------------------------------------------------------------------
    def supported_frequencies(self) -> Tuple[int, int]:
        """Min/max pinnable core frequency in MHz."""
        return (
            self.cfg.curve.min_frequency_mhz,
            self.cfg.curve.max_frequency_mhz,
        )

    def describe(self) -> str:
        """Human-readable platform summary (README material)."""
        c = self.cfg
        return (
            f"{c.name}: {c.sockets} sockets x {c.cores_per_socket} cores, "
            f"{c.curve.min_frequency_mhz}-{c.curve.max_frequency_mhz} MHz, "
            f"{len(COUNTER_NAMES)} PAPI presets, "
            f"{c.programmable_slots} programmable PMU slots"
        )
