"""Calibrated power measurement instrumentation.

Models the custom-built energy measurement system of the paper
(Ilsche et al. 2015): "The system under test is instrumented with
calibrated high resolution power sensors at the 12 V inputs to each
socket.  During the experimentation, the power measurements are
collected on a separate system, avoiding perturbation on the
measurement itself."

Each sensor has a per-instance gain and offset calibration residual
(drawn once at construction — a physical property of that shunt +
ADC chain), per-sample Gaussian noise, and quantization.  Sampling a
constant true power over a phase therefore yields an average whose
error is dominated by the calibration residual, exactly the error
structure a calibrated lab instrument exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "SensorCalibration",
    "SensorFaults",
    "apply_sensor_faults",
    "PowerSensor",
    "SensorArray",
]


@dataclass(frozen=True)
class SensorFaults:
    """Glitch state of one sensor channel during one sampling window.

    Models the failure modes of a real shunt + ADC chain: dropped
    readings (link loss → NaN), a stuck-at glitch (the ADC repeats its
    last conversion), and sporadic NaN readings.  Constructed by
    :meth:`repro.faults.injector.FaultInjector.sensor_faults`; the
    same glitches are applied to recorded traces by
    :meth:`~repro.faults.injector.FaultInjector.corrupt_trace`.
    """

    dropout: bool = False
    """Lose a contiguous block of samples (reported as NaN)."""
    stuck: bool = False
    """Flat-line: repeat one conversion for the rest of the window."""
    nan_rate: float = 0.0
    """Per-sample probability of an isolated NaN reading."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.nan_rate <= 1.0:
            raise ValueError(f"nan_rate must be in [0, 1], got {self.nan_rate}")

    @property
    def any_active(self) -> bool:
        return self.dropout or self.stuck or self.nan_rate > 0.0


def apply_sensor_faults(
    raw: np.ndarray, faults: SensorFaults, rng: np.random.Generator
) -> np.ndarray:
    """Apply :class:`SensorFaults` to a raw sample stream (in place).

    Deterministic given ``rng``; returns ``raw`` for chaining.  The
    application order (NaN readings, dropout window, stuck-at tail)
    matches the trace-level injector so both paths produce the same
    corruption classes.
    """
    n = raw.size
    if n == 0 or not faults.any_active:
        return raw
    if faults.nan_rate > 0.0:
        raw[rng.random(n) < faults.nan_rate] = np.nan
    if faults.dropout:
        width = max(int(n * float(rng.uniform(0.1, 0.4))), 1)
        start = int(rng.integers(0, max(n - width, 0) + 1))
        raw[start : start + width] = np.nan
    if faults.stuck:
        idx = int(rng.integers(0, max(n - 8, 0) + 1))
        raw[idx:] = raw[idx]
    return raw


@dataclass(frozen=True)
class SensorCalibration:
    """Residual calibration error of one sensor channel."""

    gain: float
    offset_w: float

    @staticmethod
    def draw(rng: np.random.Generator, gain_sigma: float, offset_sigma_w: float):
        return SensorCalibration(
            gain=1.0 + float(rng.normal(0.0, gain_sigma)),
            offset_w=float(rng.normal(0.0, offset_sigma_w)),
        )


class PowerSensor:
    """One calibrated 12 V power sensor channel.

    Parameters
    ----------
    calibration:
        Fixed gain/offset residual of this channel.
    sample_rate_hz:
        Samples per second delivered to the measurement host.
    noise_sigma_w:
        Per-sample Gaussian noise (shunt amplifier + ADC).
    resolution_w:
        Quantization step of the digitizer.
    """

    def __init__(
        self,
        calibration: SensorCalibration,
        *,
        sample_rate_hz: float = 1000.0,
        noise_sigma_w: float = 0.6,
        resolution_w: float = 0.01,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if noise_sigma_w < 0 or resolution_w < 0:
            raise ValueError("noise and resolution must be non-negative")
        self.calibration = calibration
        self.sample_rate_hz = sample_rate_hz
        self.noise_sigma_w = noise_sigma_w
        self.resolution_w = resolution_w

    def n_samples(self, duration_s: float) -> int:
        """Sample count for a phase; at least one sample per phase."""
        return max(int(round(duration_s * self.sample_rate_hz)), 1)

    def sample(
        self,
        true_power_w: float,
        duration_s: float,
        rng: np.random.Generator,
        *,
        faults: Optional[SensorFaults] = None,
    ) -> np.ndarray:
        """Raw sample stream for a constant true power over a phase.

        ``faults`` injects channel glitches (dropout → NaN blocks,
        stuck-at flat-lines, sporadic NaN readings) after quantization,
        exactly where a real ADC chain fails.
        """
        if true_power_w < 0:
            raise ValueError("true power cannot be negative")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        n = self.n_samples(duration_s)
        raw = (
            true_power_w * self.calibration.gain
            + self.calibration.offset_w
            + rng.normal(0.0, self.noise_sigma_w, size=n)
        )
        if self.resolution_w > 0:
            raw = np.round(raw / self.resolution_w) * self.resolution_w
        if faults is not None:
            raw = apply_sensor_faults(raw, faults, rng)
        return raw

    def measure_average(
        self, true_power_w: float, duration_s: float, rng: np.random.Generator
    ) -> float:
        """Phase-averaged measured power (what the phase profile holds).

        Drawn from the exact sampling distribution of the mean of
        ``n_samples`` raw readings — equivalent to averaging
        :meth:`sample` output but O(1) regardless of phase length,
        which keeps multi-minute SPEC phases cheap to simulate.
        """
        if true_power_w < 0:
            raise ValueError("true power cannot be negative")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        n = self.n_samples(duration_s)
        mean = true_power_w * self.calibration.gain + self.calibration.offset_w
        return float(mean + rng.normal(0.0, self.noise_sigma_w / np.sqrt(n)))


class SensorArray:
    """The per-socket sensor set of the measurement system."""

    def __init__(self, sensors: Tuple[PowerSensor, ...]) -> None:
        if not sensors:
            raise ValueError("need at least one sensor channel")
        self.sensors = sensors
        # Per-interval window-mean noise scales sigma_c / sqrt(n_c):
        # derived from fixed channel properties, so cached across the
        # thousands of identical-duration phases a campaign samples.
        self._scale_cache: dict = {}
        # Calibration vectors for the batched sampling entry points.
        self._gains = np.array([s.calibration.gain for s in sensors])
        self._offsets = np.array([s.calibration.offset_w for s in sensors])

    @staticmethod
    def build(
        n_channels: int,
        rng: np.random.Generator,
        *,
        gain_sigma: float = 0.003,
        offset_sigma_w: float = 0.15,
        sample_rate_hz: float = 1000.0,
        noise_sigma_w: float = 0.6,
    ) -> "SensorArray":
        """Construct a calibrated array; calibration residuals are drawn
        once from ``rng`` (a property of the physical instrument)."""
        sensors = tuple(
            PowerSensor(
                SensorCalibration.draw(rng, gain_sigma, offset_sigma_w),
                sample_rate_hz=sample_rate_hz,
                noise_sigma_w=noise_sigma_w,
            )
            for _ in range(n_channels)
        )
        return SensorArray(sensors)

    def _window_scales(self, duration_s: float) -> np.ndarray:
        """Noise sigma of the window mean, per channel (cached)."""
        scales = self._scale_cache.get(duration_s)
        if scales is None:
            if len(self._scale_cache) >= 4096:
                self._scale_cache.clear()
            scales = np.array(
                [
                    s.noise_sigma_w / np.sqrt(s.n_samples(duration_s))
                    for s in self.sensors
                ]
            )
            self._scale_cache[duration_s] = scales
        return scales

    def measure_node_average(
        self,
        per_socket_true_w: Tuple[float, ...],
        duration_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Average node power over a phase: sum of per-socket channels.

        One ``standard_normal`` draw covers all channels; each channel's
        reading is assembled exactly as
        :meth:`PowerSensor.measure_average` would (``normal(loc, scale)``
        is ``loc + scale * z`` per element), so the result is
        bit-identical to summing per-channel calls.
        """
        if len(per_socket_true_w) != len(self.sensors):
            raise ValueError(
                f"{len(per_socket_true_w)} socket powers for "
                f"{len(self.sensors)} sensor channels"
            )
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if any(p < 0 for p in per_socket_true_w):
            raise ValueError("true power cannot be negative")
        scales = self._window_scales(duration_s)
        z = rng.standard_normal(len(self.sensors))
        total = 0.0
        for c, (sensor, true_w) in enumerate(zip(self.sensors, per_socket_true_w)):
            mean = (
                true_w * sensor.calibration.gain + sensor.calibration.offset_w
            )
            total += mean + (0.0 + scales[c] * z[c])
        return float(total)

    def sample_node_total(
        self,
        per_socket_true_w: Tuple[float, ...],
        n: int,
        interval_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Summed node-power plugin samples for one phase.

        Each of the ``n`` plugin samples is the mean of one raw-sensor
        interval; all channels' noise comes from a single
        ``standard_normal((channels, n))`` block whose C-order fill
        matches the per-channel ``normal(0, scale, size=n)`` draws of
        the one-channel-at-a-time path bit for bit.
        """
        if len(per_socket_true_w) != len(self.sensors):
            raise ValueError(
                f"{len(per_socket_true_w)} socket powers for "
                f"{len(self.sensors)} sensor channels"
            )
        scales = self._window_scales(interval_s)
        z = rng.standard_normal((len(self.sensors), n))
        # One block of elementwise ufunc calls replaces the per-channel
        # temporaries; every element sees the exact operation sequence
        # of the channel loop (``mean + (0.0 + scale * z)``), and the
        # channel accumulation below keeps its sequential order, so the
        # result is bit-identical.
        readings = scales[:, None] * z
        np.add(0.0, readings, out=readings)
        means = np.multiply(per_socket_true_w, self._gains) + self._offsets
        np.add(means[:, None], readings, out=readings)
        total = np.zeros(n)
        for row in readings:
            np.add(total, row, out=total)
        return total
