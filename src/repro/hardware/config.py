"""Static configuration of the simulated platform.

Models the paper's system under test: a dual-socket Intel Xeon
E5-2690v3 (Haswell-EP), 2 × 12 cores, Hyper-Threading and Turbo Boost
disabled, instrumented with calibrated power sensors at the 12 V inputs
of each socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.dvfs import HASWELL_EP_CURVE, VoltageFrequencyCurve

__all__ = ["PlatformConfig", "HASWELL_EP_CONFIG"]


@dataclass(frozen=True)
class PlatformConfig:
    """Physical parameters of a simulated dual-socket x86 node."""

    name: str = "haswell-ep"
    sockets: int = 2
    cores_per_socket: int = 12
    curve: VoltageFrequencyCurve = field(default=HASWELL_EP_CURVE)

    # --- memory subsystem ------------------------------------------------
    dram_latency_ns: float = 82.0
    """Local-socket DRAM load-to-use latency."""
    remote_latency_penalty: float = 0.55
    """Fractional latency increase for remote-NUMA accesses."""
    peak_dram_bw_gbs: float = 59.0
    """Per-socket peak sustainable DRAM bandwidth (GB/s)."""
    cache_line_bytes: int = 64

    # --- pipeline ---------------------------------------------------------
    issue_width: int = 4
    mispredict_penalty_cycles: float = 15.0
    l2_hit_cycles: float = 12.0
    l3_hit_cycles: float = 34.0
    tlb_walk_cycles: float = 30.0

    # --- PMU --------------------------------------------------------------
    programmable_slots: int = 4
    """Simultaneously programmable counters per run (the hardware
    limitation that forces multiple runs per workload, Section III-A)."""

    # --- reference clock -----------------------------------------------------
    reference_clock_mhz: int = 2600
    """TSC / reference-cycle base clock (nominal frequency)."""

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")
        if self.programmable_slots < 1:
            raise ValueError("PMU needs at least one programmable slot")
        if self.peak_dram_bw_gbs <= 0 or self.dram_latency_ns <= 0:
            raise ValueError("memory parameters must be positive")


#: The paper's system under test.
HASWELL_EP_CONFIG = PlatformConfig()
