"""Statistics substrate for the power-modeling reproduction.

This subpackage replaces the external dependencies the paper relied on
(``statsmodels`` for OLS with heteroscedasticity-consistent standard
errors, ``scipy.stats.pearsonr`` usage patterns, and scikit-learn style
cross validation) with self-contained, numpy-based implementations.

The public surface is intentionally small and mirrors the statistical
vocabulary of the paper:

* :func:`~repro.stats.ols.fit_ols` / :class:`~repro.stats.ols.OLSResult`
  — ordinary least squares with :math:`R^2`, adjusted :math:`R^2`, and
  HC0–HC3 covariance estimators (the paper uses HC3).
* :func:`~repro.stats.vif.variance_inflation_factor` /
  :func:`~repro.stats.vif.mean_vif` — multicollinearity quantification.
* :func:`~repro.stats.correlation.pearson` — the PCC of Section V.
* :class:`~repro.stats.crossval.KFold` and
  :func:`~repro.stats.crossval.cross_validate` — the 10-fold CV of
  Section IV-B.
* :mod:`~repro.stats.metrics` — MAPE and friends.
* :mod:`~repro.stats.diagnostics` — Breusch–Pagan / White tests used to
  justify the HCSE estimator.
"""

from repro.stats.correlation import (
    correlation_matrix,
    pearson,
    pearson_with_target,
    spearman,
)
from repro.stats.crossval import (
    KFold,
    LeaveOneGroupOut,
    CrossValidationResult,
    cross_validate,
)
from repro.stats.diagnostics import (
    HeteroscedasticityTest,
    NormalityTest,
    breusch_pagan,
    condition_number,
    dagostino_k2,
    jarque_bera,
    leverage_scores,
    max_leverage,
    residual_normality,
    white_test,
)
from repro.stats.fastfit import (
    FASTFIT_ENV,
    FoldGramSolver,
    GramCache,
    fastfit_enabled,
)
from repro.stats.errors import (
    DegenerateDesignError,
    DegenerateResidualsError,
    EstimationError,
    NonFiniteInputError,
    RobustFitError,
    UnderdeterminedFitError,
)
from repro.stats.linalg import (
    CONDITION_FALLBACK_THRESHOLD,
    FitDiagnostics,
    GuardedSolution,
    add_constant,
    guarded_lstsq,
    lstsq_via_qr,
    safe_pinv,
    safe_solve,
)
from repro.stats.metrics import (
    bias,
    mae,
    mape,
    max_ape,
    r2_score,
    rmse,
)
from repro.stats.ols import OLSResult, fit_ols
from repro.stats.regularized import RegularizedFit, lasso, lasso_path, ridge
from repro.stats.robust import HUBER_C, fit_robust, huber_weights
from repro.stats.selection_criteria import (
    CRITERIA,
    aic,
    bic,
    criterion_value,
)
from repro.stats.vif import (
    collinear_columns,
    mean_vif,
    variance_inflation_factor,
    vif_table,
    vifs_from_correlation,
)

__all__ = [
    "OLSResult",
    "fit_ols",
    "fit_robust",
    "huber_weights",
    "HUBER_C",
    "FitDiagnostics",
    "GuardedSolution",
    "guarded_lstsq",
    "safe_solve",
    "CONDITION_FALLBACK_THRESHOLD",
    "EstimationError",
    "NonFiniteInputError",
    "UnderdeterminedFitError",
    "DegenerateDesignError",
    "DegenerateResidualsError",
    "RobustFitError",
    "variance_inflation_factor",
    "mean_vif",
    "vif_table",
    "vifs_from_correlation",
    "collinear_columns",
    "GramCache",
    "FoldGramSolver",
    "fastfit_enabled",
    "FASTFIT_ENV",
    "pearson",
    "pearson_with_target",
    "spearman",
    "correlation_matrix",
    "KFold",
    "LeaveOneGroupOut",
    "CrossValidationResult",
    "cross_validate",
    "mape",
    "mae",
    "rmse",
    "r2_score",
    "max_ape",
    "bias",
    "breusch_pagan",
    "white_test",
    "condition_number",
    "HeteroscedasticityTest",
    "NormalityTest",
    "jarque_bera",
    "dagostino_k2",
    "residual_normality",
    "leverage_scores",
    "max_leverage",
    "add_constant",
    "lstsq_via_qr",
    "safe_pinv",
    "aic",
    "bic",
    "criterion_value",
    "CRITERIA",
    "RegularizedFit",
    "ridge",
    "lasso",
    "lasso_path",
]
