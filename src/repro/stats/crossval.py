"""Cross-validation machinery (Section IV-B).

The paper trains and validates Equation 1 "using 10-fold cross
validation with random indexing" and reports min/max/mean of
:math:`R^2`, adjusted :math:`R^2` and MAPE over the folds (Table II).
Scenario analysis additionally needs group-wise splits (hold out whole
workloads), provided by :class:`LeaveOneGroupOut`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel import (
    ProcessExecutor,
    SharedArena,
    arena_enabled,
    resolve_executor,
    split_batches,
)
from repro.parallel.arena import ArrayHandle
from repro.stats.fastfit import FoldGramSolver, fastfit_enabled
from repro.stats.linalg import add_constant
from repro.stats.metrics import mape, r2_score
from repro.stats.ols import OLSResult, fit_ols
from repro.stats.robust import fit_robust

__all__ = [
    "KFold",
    "LeaveOneGroupOut",
    "FoldScore",
    "CrossValidationResult",
    "cross_validate",
]

Split = Tuple[np.ndarray, np.ndarray]


class KFold:
    """k-fold splitter with optional shuffling ("random indexing")."""

    def __init__(
        self,
        n_splits: int = 10,
        *,
        shuffle: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        if shuffle and seed is None:
            # default_rng(None) would draw OS entropy — silently
            # irreproducible folds in a repository whose whole point is
            # bit-reproducible pipelines.  Demand an explicit seed.
            raise ValueError(
                "KFold(shuffle=True) requires an explicit seed: "
                "seed=None would produce irreproducible folds"
            )
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Split]:
        """Yield ``(train_idx, test_idx)`` pairs over ``n_samples``."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


class LeaveOneGroupOut:
    """Hold out all samples of one group (e.g. one workload) per fold."""

    def split(
        self, groups: Sequence
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, object]]:
        """Yield ``(train_idx, test_idx, group)`` per distinct group."""
        arr = np.asarray(groups)
        uniques = list(dict.fromkeys(arr.tolist()))  # stable order
        if len(uniques) < 2:
            raise ValueError("need at least two groups to hold one out")
        all_idx = np.arange(arr.shape[0])
        for g in uniques:
            mask = arr == g
            yield all_idx[~mask], all_idx[mask], g


@dataclass(frozen=True)
class FoldScore:
    """Per-fold training fit quality and held-out predictive error."""

    rsquared: float
    rsquared_adj: float
    mape: float
    r2_oos: float
    n_train: int
    n_test: int


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate over folds; renders the Table II summary."""

    folds: Tuple[FoldScore, ...]

    def _stat(self, attr: str) -> Dict[str, float]:
        vals = np.array([getattr(f, attr) for f in self.folds])
        return {
            "min": float(vals.min()),
            "max": float(vals.max()),
            "mean": float(vals.mean()),
        }

    @property
    def rsquared(self) -> Dict[str, float]:
        return self._stat("rsquared")

    @property
    def rsquared_adj(self) -> Dict[str, float]:
        return self._stat("rsquared_adj")

    @property
    def mape(self) -> Dict[str, float]:
        return self._stat("mape")

    def summary_rows(self) -> List[Tuple[str, float, float, float]]:
        """Rows of Table II: (metric, min, max, mean)."""
        rows = []
        for label, stat in (
            ("R2", self.rsquared),
            ("Adj.R2", self.rsquared_adj),
            ("MAPE", self.mape),
        ):
            rows.append((label, stat["min"], stat["max"], stat["mean"]))
        return rows


FitFn = Callable[[np.ndarray, np.ndarray], OLSResult]


def _default_fit(y: np.ndarray, x: np.ndarray) -> OLSResult:
    return fit_ols(y, x, cov_type="HC3")


def _robust_fit(y: np.ndarray, x: np.ndarray) -> OLSResult:
    return fit_robust(y, x, cov_type="HC3")


def _score_fold(
    args: Tuple[FitFn, np.ndarray, np.ndarray, np.ndarray, np.ndarray, str],
) -> FoldScore:
    """Fit and score one fold (module-level, picklable worker)."""
    fit_fn, y_train, x_train, y_test, x_test, on_zero = args
    res = fit_fn(y_train, x_train)
    pred = res.predict(x_test)
    return FoldScore(
        rsquared=res.rsquared,
        rsquared_adj=res.rsquared_adj,
        mape=mape(y_test, pred, on_zero=on_zero),
        r2_oos=r2_score(y_test, pred),
        n_train=y_train.size,
        n_test=y_test.size,
    )


def _score_fold_batch(
    args: Tuple[
        FitFn,
        ArrayHandle,
        ArrayHandle,
        Tuple[Tuple[np.ndarray, np.ndarray], ...],
        str,
    ],
) -> List[FoldScore]:
    """Fit and score one batch of folds against shared ``y``/``x``.

    The zero-copy variant of :func:`_score_fold`: the work item carries
    arena handles for the full ``y``/``x`` plus this worker's fold
    index slices; each fold slices the shared arrays exactly as the
    parent would (fancy indexing copies the same values), so the
    flattened batch scores are bitwise-identical to per-fold dispatch.
    """
    fit_fn, y_handle, x_handle, folds, on_zero = args
    y = y_handle.resolve()
    x = x_handle.resolve()
    return [
        _score_fold((fit_fn, y[train], x[train], y[test], x[test], on_zero))
        for train, test in folds
    ]


def _fast_fold_scores(
    y: np.ndarray,
    x: np.ndarray,
    splits: Sequence[Split],
    on_zero: str,
) -> List[FoldScore]:
    """Score every fold through the shared Gram downdate solver.

    Folds the solver declines (non-finite rows, underdetermined or
    degenerate train designs) re-run through the exact per-fold fit so
    degraded data keeps raising the historical typed errors.
    """
    solver = FoldGramSolver(y, add_constant(x))
    scores: List[FoldScore] = []
    for train, test in splits:
        fit = solver.solve_fold(train, test)
        if fit is None:
            scores.append(
                _score_fold(
                    (_default_fit, y[train], x[train], y[test], x[test],
                     on_zero)
                )
            )
            continue
        pred = solver.predict(fit, test)
        scores.append(
            FoldScore(
                rsquared=fit.rsquared,
                rsquared_adj=fit.rsquared_adj,
                mape=mape(y[test], pred, on_zero=on_zero),
                r2_oos=r2_score(y[test], pred),
                n_train=int(train.size),
                n_test=int(test.size),
            )
        )
    return scores


def cross_validate(
    endog: np.ndarray,
    exog: np.ndarray,
    *,
    n_splits: int = 10,
    seed: Optional[int] = 0,
    fit_fn: Optional[FitFn] = None,
    robust: bool = False,
    on_zero: str = "raise",
    parallel: Optional[str] = None,
    max_workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> CrossValidationResult:
    """k-fold cross validation of an OLS power model.

    For each fold the model is fit on the training rows; the fold score
    records the training :math:`R^2`/adjusted :math:`R^2` (as the paper
    reports model fit per fold) and the held-out MAPE and out-of-sample
    :math:`R^2`.

    ``robust=True`` swaps the default per-fold fit for the Huber IRLS
    estimator; an explicit ``fit_fn`` takes precedence over the flag.
    ``on_zero`` is forwarded to the fold MAPE (``"skip"`` for degraded
    pipelines).  ``parallel`` / ``max_workers`` select the fold-fitting
    backend (see :mod:`repro.parallel`); splits are materialised first
    and scores assembled in fold order, so every backend is
    bit-identical to serial.  The process backend publishes ``y``/``x``
    into a zero-copy shared-memory arena and dispatches fold batches as
    handles (``REPRO_ARENA=0`` restores pickled slices).  A custom
    ``fit_fn`` must be picklable for ``parallel="process"``.

    ``fast`` routes the default OLS folds through the Gram downdate
    solver of :mod:`repro.stats.fastfit` (each fold's train Gram is the
    full-design Gram minus the fold's — no per-fold refit).  Default
    (``None``) resolves ``REPRO_FASTFIT`` and falls back to on; a
    custom ``fit_fn`` or ``robust=True`` always takes the exact
    per-fold path.  Fold scores agree with the slow path within 1e-9
    relative tolerance.
    """
    use_fast = fit_fn is None and not robust and fastfit_enabled(fast)
    if fit_fn is None:
        fit_fn = _robust_fit if robust else _default_fit
    y = np.asarray(endog, dtype=np.float64).ravel()
    x = np.asarray(exog, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, np.newaxis]
    if y.shape[0] != x.shape[0]:
        raise ValueError("endog/exog row mismatch")

    splits = list(KFold(n_splits, shuffle=True, seed=seed).split(y.shape[0]))
    if use_fast:
        return CrossValidationResult(
            folds=tuple(_fast_fold_scores(y, x, splits, on_zero))
        )
    # Fold fits are sub-millisecond: the small-task guard keeps pool
    # backends away unless there are enough folds to amortize dispatch.
    executor = resolve_executor(
        parallel, max_workers, n_items=len(splits), min_items_per_worker=8
    )
    if isinstance(executor, ProcessExecutor) and arena_enabled():
        # Zero-copy dispatch: publish y/x once, ship handles plus each
        # worker's contiguous fold batch; flatten in batch order = fold
        # order.  REPRO_ARENA=0 restores the pickled-slice dispatch.
        with SharedArena() as arena:
            y_handle = arena.publish(y)
            x_handle = arena.publish(x)
            batches = split_batches(splits, executor.max_workers)
            nested = executor.map(
                _score_fold_batch,
                [
                    (fit_fn, y_handle, x_handle, tuple(batch), on_zero)
                    for batch in batches
                ],
            )
        scores: List[FoldScore] = [s for sub in nested for s in sub]
    else:
        scores = executor.map(
            _score_fold,
            [
                (fit_fn, y[train], x[train], y[test], x[test], on_zero)
                for train, test in splits
            ],
        )
    return CrossValidationResult(folds=tuple(scores))
