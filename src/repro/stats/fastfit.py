"""Gram-cache fast-fit kernels (DESIGN.md §12).

Algorithm 1 re-fits Equation 1 from scratch for every candidate at
every greedy step, and the 10-fold CV re-fits it per fold — hundreds of
tiny OLS solves over overlapping column sets of one design matrix.  The
sufficient statistics ``XᵀX``, ``Xᵀy`` and ``yᵀy`` of the *full*
candidate design determine every one of those fits, so this module
computes them once and answers each fit by slicing and rank-updating
the cached Gram matrix:

* :class:`GramCache` — one cache per ``(dataset, candidate pool)``.
  :meth:`GramCache.score_candidates` evaluates "selected ∪ {candidate}"
  for *all* remaining candidates of a greedy step in a handful of
  batched BLAS/LAPACK calls: one Cholesky factorization of the
  selected-set Gram, batched triangular solves for the bordered
  updates, and one residual pass.  :meth:`GramCache.mean_vif` answers
  the per-step VIF from memoized pairwise correlations and the shared
  correlation-matrix inversion of :mod:`repro.stats.vif`.
* :class:`FoldGramSolver` — k-fold CV from sufficient statistics: each
  fold's train Gram is ``total − fold`` (one small rank-``|fold|``
  downdate instead of an O(n·k²) refit), and only the final residual /
  prediction passes touch raw rows.

Numerical contract (the escape hatch ``REPRO_FASTFIT=0`` exists to
verify it): the selected counter sequence and every step warning are
identical to the slow path, and R²/VIF/MAPE agree within 1e-9 relative
tolerance.  Solving through a Gram matrix squares the design's
condition number, so that contract is *not* taken on faith — it is
engineered and then certified per fit:

1. **Column-equilibrated Cholesky + one refinement step.**  The solve
   runs on the norm-scaled Gram ``Ĝ = D⁻¹GD⁻¹`` (``D`` = column
   norms), whose conditioning is as good as diagonal scaling can make
   it, followed by one step of iterative refinement through the same
   factorization — contracting the coefficient error by another
   ``O(eps·κ(Ĝ))`` factor.
2. **Residual-pass sums of squares.**  ``ss_res`` is *never* read off
   the sufficient statistics (``yᵀy − ‖u‖²`` loses ``eps·κ`` digits to
   cancellation); one O(n·k) pass computes ``‖y − Xβ‖²`` from raw
   rows, which is *second-order* accurate: the exact minimizer ``β*``
   zeroes the gradient, so ``ss(β) − ss(β*) = ‖X(β−β*)‖²``.
3. **A-posteriori certificate.**  That excess is then measured, not
   bounded: with the normal-equation residual ``g = Xᵀy − Gβ``, the
   excess equals ``gᵀG⁻¹g``, evaluated through the cached factor.
   A fit is only answered fast when the certified excess is below
   ``1e-10·ss_res`` — an order of magnitude inside the contract.
4. **Conservative eligibility.**  Everything else — non-finite
   columns, zero norms, underdetermined trials, Cholesky breakdown,
   tiny bordered pivots, an unverifiable scaled condition, or a
   certified design condition near the slow path's ridge threshold
   (:data:`DESIGN_CONDITION_MAX`, one decade under
   :data:`~repro.stats.linalg.CONDITION_FALLBACK_THRESHOLD`) — is
   answered ``None`` and the caller re-runs it through the exact slow
   path (``guarded_lstsq`` and its SVD → ridge → pinv chain),
   preserving the robust-estimation guarantees unchanged.  The
   condition bounds use ``λmax(G) ≤ trace(G)`` and
   ``λmin(G) ≥ 1/trace(G⁻¹)`` with ``diag(G⁻¹)`` read off the bordered
   factorization — tight to a factor ``k``, so real designs are not
   spuriously rejected.

Determinism: the kernels are pure serial numpy — no executor fan-out —
and every batched operation is column-separable, so bitwise-identical
input columns (duplicate counters) produce bitwise-identical scores and
the exact-tie warnings of the selection reduce are preserved verbatim.
Column-separability is also what makes the cache *shareable*: a
:class:`GramCache` published into a shared-memory arena
(:meth:`GramCache.share` / :meth:`GramCache.from_handle`) can have its
``score_candidates`` step chunked across worker processes — each chunk
reads the same buffer bytes, runs the same column-separable kernels,
and the concatenation of chunk results is bitwise-identical to the
single batched call (asserted by the tier-1 suite).  The fan-out
itself lives in the caller (:func:`repro.core.selection.select_events`);
this module stays executor-free.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.arena import ArrayHandle, SharedArena
from repro.stats.correlation import pearson
from repro.stats.linalg import as_2d, triangular_solve, try_cholesky
from repro.stats.ols import _design_has_constant
from repro.stats.selection_criteria import CRITERIA
from repro.stats.vif import (
    nonfinite_exog_error,
    vifs_from_correlation,
)

__all__ = [
    "FASTFIT_ENV",
    "DESIGN_CONDITION_MAX",
    "SCALED_CONDITION_MAX",
    "CandidateScore",
    "FastFoldFit",
    "FoldGramSolver",
    "GramCache",
    "GramCacheHandle",
    "fastfit_enabled",
]

#: Environment escape hatch: ``REPRO_FASTFIT=0`` keeps every fit on the
#: historical ``guarded_lstsq`` route for A/B verification.
FASTFIT_ENV = "REPRO_FASTFIT"

#: Certified upper bound on the *design* condition number above which
#: the fast path declines a fit.  The slow path switches to its ridge
#: fallback at ``cond > 1e10``
#: (:data:`repro.stats.linalg.CONDITION_FALLBACK_THRESHOLD`) and a
#: ridge-regularized score is not ours to reproduce — one decade of
#: margin guarantees a fast-scored fit is one the slow path solves
#: directly.
DESIGN_CONDITION_MAX = 1e9

#: Upper bound on the condition number of the *scaled* Gram ``Ĝ``
#: (via ``trace(Ĝ)·trace(Ĝ⁻¹)``) above which the Cholesky factor is
#: too degraded to trust: refinement still has to contract
#: (``eps·κ(Ĝ) ≪ 1``) and the excess certificate is evaluated through
#: that same factor.
SCALED_CONDITION_MAX = 1e14

#: Tighter scaled-condition ceiling for the CV fold solver, whose
#: contract covers element-wise *predictions* (MAPE), not just the
#: second-order-accurate sums of squares.
_FOLD_SCALED_CONDITION_MAX = 1e10

#: Smallest acceptable bordered-Cholesky pivot (on the scaled Gram,
#: where pivots live in ``(0, 1]``).  A pivot this small means the
#: candidate column is numerically inside the span of the selected
#: set; the exact path owns that case.
_PIVOT_MIN = 1e-10

#: Accept a fast fit only when the certified excess sum of squares
#: ``gᵀG⁻¹g`` is below this fraction of ``ss_res`` — an order of
#: magnitude inside the 1e-9 contract.
_EXCESS_RTOL = 1e-10


def fastfit_enabled(fast: Optional[bool] = None) -> bool:
    """Resolve the fast-path switch for one call.

    Resolution order: explicit ``fast=`` argument → ``REPRO_FASTFIT``
    environment variable → default **on**.  ``0``/``false``/``no``/
    ``off`` (any case) disable; anything else enables.
    """
    if fast is not None:
        return bool(fast)
    env = os.environ.get(FASTFIT_ENV)
    if env is None:
        return True
    return env.strip().lower() not in ("0", "false", "no", "off")


#: ``(criterion score, R², adjusted R²)`` of one fast-scored candidate.
CandidateScore = Tuple[float, float, float]


@dataclass(frozen=True)
class GramCacheHandle:
    """Picklable shared-memory reference to a published :class:`GramCache`.

    Carries one :class:`~repro.parallel.arena.ArrayHandle` per cache
    buffer plus the scalar statistics — ~500 bytes on the wire where
    pickling the cache itself would ship the full design matrix.  The
    handle is hashable, so worker processes memoize the reconstructed
    cache across work items.
    """

    y: ArrayHandle
    design: ArrayHandle
    rates: ArrayHandle
    gram: ArrayHandle
    xty: ArrayHandle
    col_finite: ArrayHandle
    rate_bad: ArrayHandle
    yty: float
    ss_tot: float
    y_finite: bool


#: Worker-side reconstruction memo: one :class:`GramCache` per handle
#: per process, bounded so long-lived workers serving many selections
#: cannot accumulate stale caches.
_SHARED_CACHE_MEMO: Dict[GramCacheHandle, "GramCache"] = {}
_SHARED_CACHE_MEMO_CAP = 4


def _criterion_from_ssr(
    criterion: str, ss_res: float, ss_tot: float, n: int, k_params: int
) -> CandidateScore:
    """Selection-criterion value from residual/total sums of squares.

    Replicates :mod:`repro.stats.selection_criteria` (and the R² edge
    cases of :func:`repro.stats.ols.fit_ols`) exactly, term for term,
    so fast and slow scores differ only through ``ss_res`` rounding.
    """
    rsquared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    df_resid = n - k_params
    if df_resid > 0 and ss_tot > 0:
        rsquared_adj = 1.0 - (1.0 - rsquared) * (n - 1) / df_resid
    else:
        rsquared_adj = rsquared
    if criterion == "r2":
        score = rsquared
    elif criterion == "adj_r2":
        score = rsquared_adj
    elif criterion in ("aic", "bic"):
        sigma2 = max(ss_res / n, 1e-300)
        log_l = -0.5 * n * (math.log(2.0 * math.pi * sigma2) + 1.0)
        if criterion == "aic":
            score = -(2.0 * k_params - 2.0 * log_l)
        else:
            score = -(k_params * math.log(n) - 2.0 * log_l)
    else:
        raise ValueError(
            f"unknown criterion {criterion!r}; available: {sorted(CRITERIA)}"
        )
    return score, rsquared, rsquared_adj


def _bordered_solve(
    factor: np.ndarray,
    w: np.ndarray,
    pivot: np.ndarray,
    rhs_base: np.ndarray,
    rhs_cand: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve every candidate's bordered scaled system for its own RHS.

    The trial Gram of candidate ``j`` is the shared base block (whose
    Cholesky ``factor`` is given) bordered by the candidate's scaled
    column ``b̂_j``; with ``w_j = L⁻¹b̂_j`` and pivot
    ``d_j = 1 − w_jᵀw_j`` already computed, each solve is two batched
    triangular sweeps.  ``rhs_base`` is ``(k_base, m)`` (one RHS column
    per candidate), ``rhs_cand`` is ``(m,)``; returns the base-block
    solution ``(k_base, m)`` and the candidate coordinates ``(m,)``.
    Every operation is column-separable: identical candidates yield
    bitwise-identical solutions.
    """
    u = triangular_solve(factor, rhs_base)
    theta = (rhs_cand - np.einsum("ij,ij->j", w, u)) / pivot
    base = triangular_solve(factor, u - w * theta[None, :], trans=True)
    return base, theta


class GramCache:
    """Sufficient statistics of the full-candidate Equation 1 design.

    Parameters
    ----------
    endog:
        Dependent variable (power), shape ``(n,)``.
    design:
        Full-candidate design matrix: one column per candidate counter
        (in pool order) followed by the structural ``V²f``/``V``/``Z``
        columns — exactly :func:`repro.core.features.design_matrix`
        over the whole pool.
    rates:
        Raw counter-rate matrix ``(n, n_candidates)`` in the same pool
        order (the columns VIFs are computed over).

    The cache addresses candidates by **pool position**; callers keep
    the name↔position mapping.
    """

    def __init__(
        self,
        endog: np.ndarray,
        design: np.ndarray,
        rates: np.ndarray,
    ) -> None:
        self.y = np.asarray(endog, dtype=np.float64).ravel()
        self.design = as_2d(design)
        self.rates = as_2d(rates)
        self.n = self.design.shape[0]
        self.n_candidates = self.rates.shape[1]
        if self.y.shape[0] != self.n or self.rates.shape[0] != self.n:
            raise ValueError("endog/design/rates row mismatch")
        if self.design.shape[1] < self.n_candidates:
            raise ValueError(
                "design must carry one column per candidate plus the "
                "structural terms"
            )
        #: Design-column indices of the structural (non-counter) terms.
        self.struct = tuple(
            range(self.n_candidates, self.design.shape[1])
        )

        self.y_finite = bool(np.all(np.isfinite(self.y)))
        self.col_finite = np.all(np.isfinite(self.design), axis=0)
        # Non-finite rows/columns are tracked, not rejected: their Gram
        # entries are never read (the scoring kernel declines them), so
        # the IEEE propagation below is deliberately silenced.
        with np.errstate(invalid="ignore", over="ignore"):
            self.gram = self.design.T @ self.design
            self.xty = self.design.T @ self.y
            self.yty = float(self.y @ self.y)
            mean = self.y.mean() if self.n else 0.0
            centered = self.y - mean
        #: Centered total sum of squares — Equation 1 always carries its
        #: constant as the δZ column, so R² is centered exactly as
        #: ``fit_ols`` computes it.
        self.ss_tot = float(centered @ centered)
        diag = np.diagonal(self.gram).copy()
        self.col_norm_sq = diag
        with np.errstate(invalid="ignore"):
            self.col_norm = np.sqrt(np.maximum(diag, 0.0))

        # VIF bookkeeping over the raw rate columns: per-column
        # non-finite counts up front (cheap), pairwise correlations and
        # constancy flags memoized on demand — a selection touches only
        # O(selected²) of the O(pool²) pairs.
        self._rate_bad = np.count_nonzero(
            ~np.isfinite(self.rates), axis=0
        ).astype(np.int64)
        self._constant_memo: Dict[int, bool] = {}
        self._corr_memo: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # VIF kernel
    # ------------------------------------------------------------------
    def _rate_constant(self, column: int) -> bool:
        flag = self._constant_memo.get(column)
        if flag is None:
            col = self.rates[:, column]
            flag = bool(np.allclose(col, col[0]))
            self._constant_memo[column] = flag
        return flag

    def _rate_corr(self, i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        value = self._corr_memo.get(key)
        if value is None:
            value = pearson(self.rates[:, key[0]], self.rates[:, key[1]])
            self._corr_memo[key] = value
        return value

    def mean_vif(self, columns: Sequence[int]) -> float:
        """Mean VIF over a set of candidate rate columns.

        Bitwise-identical to
        ``repro.stats.vif.mean_vif(dataset.counter_matrix(trial))``:
        the same per-pair :func:`~repro.stats.correlation.pearson`
        values feed the same
        :func:`~repro.stats.vif.vifs_from_correlation`, only memoized
        across steps instead of recomputed.
        """
        k = len(columns)
        if k < 2:
            return float("nan")
        n_bad = int(sum(int(self._rate_bad[j]) for j in columns))
        if n_bad:
            raise nonfinite_exog_error(n_bad)
        constant = np.array([self._rate_constant(j) for j in columns])
        vifs = np.ones(k)
        active = np.flatnonzero(~constant)
        if active.size >= 2:
            cols = [columns[a] for a in active]
            corr = np.eye(len(cols))
            for a in range(len(cols)):
                for b in range(a + 1, len(cols)):
                    corr[a, b] = corr[b, a] = self._rate_corr(
                        cols[a], cols[b]
                    )
            vifs[active] = vifs_from_correlation(corr)
        return float(np.mean(vifs))

    # ------------------------------------------------------------------
    # shared-memory publication
    # ------------------------------------------------------------------
    def share(self, arena: "SharedArena") -> GramCacheHandle:
        """Publish every cache buffer into ``arena``; return the handle.

        The sufficient statistics (``gram``/``xty``) are published
        alongside the raw buffers so workers reconstruct the cache
        without recomputing a single Gram product — the resolved cache
        reads the *same bytes* the parent computed, which is what makes
        chunked worker-side :meth:`score_candidates` calls bitwise
        equal to the parent's batched call.
        """
        return GramCacheHandle(
            y=arena.publish(self.y),
            design=arena.publish(self.design),
            rates=arena.publish(self.rates),
            gram=arena.publish(self.gram),
            xty=arena.publish(self.xty),
            col_finite=arena.publish(self.col_finite),
            rate_bad=arena.publish(self._rate_bad),
            yty=self.yty,
            ss_tot=self.ss_tot,
            y_finite=self.y_finite,
        )

    @classmethod
    def from_handle(cls, handle: GramCacheHandle) -> "GramCache":
        """Reconstruct a cache from shared buffers (worker side).

        No Gram recomputation: every heavy field is a read-only view of
        the published segment; the cheap derived fields (column norms)
        are recomputed with the exact expressions of ``__init__`` on
        the identical ``gram`` bytes, so they are bitwise identical
        too.  Reconstruction is memoized per process and handle.
        """
        cached = _SHARED_CACHE_MEMO.get(handle)
        if cached is not None:
            return cached
        cache = cls.__new__(cls)
        cache.y = handle.y.resolve()
        cache.design = handle.design.resolve()
        cache.rates = handle.rates.resolve()
        cache.n = cache.design.shape[0]
        cache.n_candidates = cache.rates.shape[1]
        cache.struct = tuple(
            range(cache.n_candidates, cache.design.shape[1])
        )
        cache.y_finite = handle.y_finite
        cache.col_finite = handle.col_finite.resolve()
        cache.gram = handle.gram.resolve()
        cache.xty = handle.xty.resolve()
        cache.yty = handle.yty
        cache.ss_tot = handle.ss_tot
        diag = np.diagonal(cache.gram).copy()
        cache.col_norm_sq = diag
        with np.errstate(invalid="ignore"):
            cache.col_norm = np.sqrt(np.maximum(diag, 0.0))
        cache._rate_bad = handle.rate_bad.resolve()
        cache._constant_memo = {}
        cache._corr_memo = {}
        while len(_SHARED_CACHE_MEMO) >= _SHARED_CACHE_MEMO_CAP:
            _SHARED_CACHE_MEMO.pop(next(iter(_SHARED_CACHE_MEMO)))
        _SHARED_CACHE_MEMO[handle] = cache
        return cache

    # ------------------------------------------------------------------
    # candidate-scoring kernel
    # ------------------------------------------------------------------
    def score_candidates(
        self,
        selected: Sequence[int],
        remaining: Sequence[int],
        criterion: str,
    ) -> List[Optional[CandidateScore]]:
        """Score "selected ∪ {candidate}" for every remaining candidate.

        One greedy step in a handful of batched array operations (see
        the module docstring for the numerical scheme).  Returns a list
        parallel to ``remaining``; an entry is ``None`` when that
        candidate is not fast-certifiable and must be evaluated through
        the exact slow path.
        """
        scores: List[Optional[CandidateScore]] = [None] * len(remaining)
        if not remaining:
            return scores
        base = [int(j) for j in selected] + list(self.struct)
        k_base = len(base)
        k_trial = k_base + 1
        # Anything wrong with the shared base (non-finite y or base
        # columns, underdetermined trials, non-PD base Gram) sends the
        # whole step to the slow path.
        if (
            not self.y_finite
            or self.n < k_trial
            or not all(self.col_finite[j] for j in base)
        ):
            return scores
        norms_b = self.col_norm[base]
        nsq_b = self.col_norm_sq[base]
        if not np.all(norms_b > 0.0):
            return scores
        gram_bb = self.gram[np.ix_(base, base)]
        factor = try_cholesky(gram_bb / np.outer(norms_b, norms_b))
        if factor is None:
            return scores
        # diag(Ĝ_BB⁻¹) — feeds the per-candidate trace(G⁻¹) bounds.
        inv_factor = triangular_solve(factor, np.eye(k_base))
        inv_diag_b = np.einsum("ij,ij->j", inv_factor, inv_factor)
        z_b = self.xty[base] / norms_b

        cand = np.array([int(j) for j in remaining], dtype=np.intp)
        ok = self.col_finite[cand] & (self.col_norm_sq[cand] > 0.0)
        usable = cand[ok]
        if usable.size == 0:
            return scores
        norms_c = self.col_norm[usable]
        nsq_c = self.col_norm_sq[usable]
        border = self.gram[np.ix_(base, usable)]
        w = triangular_solve(
            factor, border / (norms_b[:, None] * norms_c[None, :])
        )
        # Bordered pivot on the scaled Gram: the squared distance of the
        # (normalized) candidate column to the span of the base.
        pivot = 1.0 - np.einsum("ij,ij->j", w, w)
        viable = np.isfinite(pivot) & (pivot > _PIVOT_MIN)
        safe_pivot = np.where(viable, pivot, 1.0)

        # Condition guards from the bordered inverse diagonal:
        # (Ĝ_trial⁻¹)_BB diag = diag(Ĝ_BB⁻¹) + v²/pivot with
        # v = L⁻ᵀw, and the candidate entry is 1/pivot.  trace bounds
        # give λmax ≤ trace(G), λmin ≥ 1/trace(G⁻¹) — tight to ~k.
        v = triangular_solve(factor, w, trans=True)
        v_sq_scaled = np.einsum("ij,ij->j", v, v)
        trace_inv_scaled = (
            float(inv_diag_b.sum()) + (v_sq_scaled + 1.0) / safe_pivot
        )
        scaled_cond = k_trial * trace_inv_scaled
        v_sq_raw = np.einsum("ij,ij->j", v, v / nsq_b[:, None])
        trace_inv_raw = (
            float((inv_diag_b / nsq_b).sum())
            + (v_sq_raw + 1.0 / nsq_c) / safe_pivot
        )
        trace_raw = float(nsq_b.sum()) + nsq_c
        eligible = (
            viable
            & (scaled_cond < SCALED_CONDITION_MAX)
            & (trace_raw * trace_inv_raw < DESIGN_CONDITION_MAX**2)
        )
        keep = np.flatnonzero(eligible)
        if keep.size == 0:
            return scores

        w_k = w[:, keep]
        d_k = pivot[keep]
        usable_k = usable[keep]
        norms_ck = norms_c[keep]
        nsq_ck = nsq_c[keep]
        border_k = border[:, keep]
        m_k = keep.size

        # Initial bordered solve, one RHS column per candidate (the
        # base RHS is shared, the candidate coordinate differs).
        beta_b, theta = _bordered_solve(
            factor,
            w_k,
            d_k,
            np.tile(z_b[:, None], (1, m_k)),
            self.xty[usable_k] / norms_ck,
        )
        beta_base = beta_b / norms_b[:, None]
        beta_cand = theta / norms_ck

        # One refinement sweep through the same factorization: solve
        # Ĝδ̂ = ĝ with g the normal-equation residual, contract the
        # coefficient error by another O(eps·κ(Ĝ)).
        g_base = (
            self.xty[base][:, None]
            - gram_bb @ beta_base
            - border_k * beta_cand[None, :]
        )
        g_cand = (
            self.xty[usable_k]
            - np.einsum("ij,ij->j", border_k, beta_base)
            - nsq_ck * beta_cand
        )
        delta_b, delta_theta = _bordered_solve(
            factor,
            w_k,
            d_k,
            g_base / norms_b[:, None],
            g_cand / norms_ck,
        )
        beta_base = beta_base + delta_b / norms_b[:, None]
        beta_cand = beta_cand + delta_theta / norms_ck

        # Residual pass on raw rows: second-order accurate ss_res (see
        # module docstring), one gemm for every candidate at once.
        fitted = (
            self.design[:, base] @ beta_base
            + self.design[:, usable_k] * beta_cand[None, :]
        )
        resid = self.y[:, None] - fitted
        ss_res = np.einsum("ij,ij->j", resid, resid)

        # Certificate: the certified excess over the true minimum is
        # gᵀG⁻¹g = ĝᵀĜ⁻¹ĝ, evaluated through the factor.
        g_base = (
            self.xty[base][:, None]
            - gram_bb @ beta_base
            - border_k * beta_cand[None, :]
        )
        g_cand = (
            self.xty[usable_k]
            - np.einsum("ij,ij->j", border_k, beta_base)
            - nsq_ck * beta_cand
        )
        gh_base = g_base / norms_b[:, None]
        gh_cand = g_cand / norms_ck
        sol_b, sol_theta = _bordered_solve(
            factor, w_k, d_k, gh_base, gh_cand
        )
        excess = (
            np.einsum("ij,ij->j", gh_base, sol_b) + gh_cand * sol_theta
        )
        certified = excess <= _EXCESS_RTOL * ss_res

        positions = np.flatnonzero(ok)
        for out_col, kept in enumerate(keep):
            if not certified[out_col]:
                continue
            scores[int(positions[kept])] = _criterion_from_ssr(
                criterion,
                float(ss_res[out_col]),
                self.ss_tot,
                self.n,
                k_trial,
            )
        return scores


@dataclass(frozen=True)
class FastFoldFit:
    """Coefficients and training fit of one fast-solved CV fold."""

    beta: np.ndarray
    rsquared: float
    rsquared_adj: float
    n_train: int


class FoldGramSolver:
    """k-fold CV from sufficient statistics of one fixed design.

    The full-design Gram and moment vector are computed once; each
    fold's training statistics are the cheap downdate
    ``G − XₜᵉˢᵗᵀXₜᵉˢᵗ`` (``O(|fold|·k²)`` instead of ``O(n·k²)`` per
    fold).  Coefficients come from a scaled Cholesky solve with *two*
    refinement sweeps — the fold contract covers element-wise
    predictions (MAPE), not just second-order sums of squares — under
    the same trace-based condition guards and excess certificate as
    the selection kernel.

    :meth:`solve_fold` returns ``None`` whenever the fold is not
    fast-certifiable (non-finite data, underdetermined, degenerate or
    ill-conditioned train Gram, certificate failure) — the caller must
    then run the exact per-fold fit, which also reproduces the
    historical exceptions on degraded data.
    """

    def __init__(self, endog: np.ndarray, design: np.ndarray) -> None:
        self.y = np.asarray(endog, dtype=np.float64).ravel()
        self.design = as_2d(design)
        self.n, self.k = self.design.shape
        if self.y.shape[0] != self.n:
            raise ValueError("endog/design row mismatch")
        self.finite = bool(
            np.all(np.isfinite(self.y)) and np.all(np.isfinite(self.design))
        )
        if self.finite:
            self.gram = self.design.T @ self.design
            self.xty = self.design.T @ self.y

    def solve_fold(
        self, train: np.ndarray, test: np.ndarray
    ) -> Optional[FastFoldFit]:
        """Fit the fold's training rows from downdated statistics."""
        if not self.finite or train.size < self.k:
            return None
        x_test = self.design[test]
        g_train = self.gram - x_test.T @ x_test
        d_train = self.xty - x_test.T @ self.y[test]
        nsq = np.diagonal(g_train)
        if not np.all(nsq > 0.0):
            return None
        norms = np.sqrt(nsq)
        factor = try_cholesky(g_train / np.outer(norms, norms))
        if factor is None:
            return None
        inv_factor = triangular_solve(factor, np.eye(self.k))
        inv_diag = np.einsum("ij,ij->j", inv_factor, inv_factor)
        if self.k * float(inv_diag.sum()) >= _FOLD_SCALED_CONDITION_MAX:
            return None
        if float(nsq.sum()) * float((inv_diag / nsq).sum()) >= (
            DESIGN_CONDITION_MAX**2
        ):
            return None
        # Applying the explicit Ĝ⁻¹ is one gemv per solve instead of
        # two LAPACK triangular sweeps — the refinement steps and the
        # excess certificate below recover/verify whatever accuracy the
        # explicit inverse costs.
        inv_gram = inv_factor.T @ inv_factor

        beta = (inv_gram @ (d_train / norms)) / norms
        # Two refinement sweeps (element-wise prediction accuracy).
        for _ in range(2):
            g = d_train - g_train @ beta
            beta = beta + (inv_gram @ (g / norms)) / norms

        y_train = self.y[train]
        x_train = self.design[train]
        resid = y_train - x_train @ beta
        ss_res = float(resid @ resid)
        g = d_train - g_train @ beta
        gh = g / norms
        excess = float(gh @ (inv_gram @ gh))
        if excess > _EXCESS_RTOL * ss_res:
            return None

        has_constant = _design_has_constant(x_train, False)
        if has_constant:
            centered = y_train - y_train.mean()
            ss_tot = float(centered @ centered)
        else:
            ss_tot = float(y_train @ y_train)
        n_train = int(y_train.shape[0])
        rsquared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        df_resid = n_train - self.k
        if df_resid > 0 and ss_tot > 0:
            rsquared_adj = (
                1.0
                - (1.0 - rsquared)
                * (n_train - (1 if has_constant else 0))
                / df_resid
            )
        else:
            rsquared_adj = rsquared
        return FastFoldFit(
            beta=beta,
            rsquared=rsquared,
            rsquared_adj=rsquared_adj,
            n_train=n_train,
        )

    def predict(self, fit: FastFoldFit, rows: np.ndarray) -> np.ndarray:
        """Held-out predictions for the given row indices."""
        return self.design[rows] @ fit.beta
