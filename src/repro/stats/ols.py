"""Ordinary least squares with heteroscedasticity-consistent errors.

This module stands in for ``statsmodels.api.OLS`` which the paper used
for model formulation (Section III-C).  It provides:

* coefficient estimates via a rank-revealing least-squares solve,
* :math:`R^2` and adjusted :math:`R^2` (Table I / Fig. 2),
* the HC0–HC3 family of heteroscedasticity-consistent covariance
  estimators — the paper selects **HC3** following Long & Ervin (2000),
* t statistics, two-sided p values and confidence intervals derived
  from the chosen covariance.

Only dense numpy arrays are supported; that is all the pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.stats.errors import (
    NonFiniteInputError,
    UnderdeterminedFitError,
)
from repro.stats.linalg import (
    FitDiagnostics,
    add_constant,
    as_2d,
    guarded_lstsq,
    safe_pinv,
)

__all__ = ["OLSResult", "fit_ols"]

_HC_KINDS = ("HC0", "HC1", "HC2", "HC3", "nonrobust")


@dataclass(frozen=True)
class OLSResult:
    """Immutable result of an OLS fit.

    Attributes mirror the ``statsmodels`` result object closely enough
    that the modeling code reads like the paper's description.
    """

    params: np.ndarray
    """Coefficient vector, intercept first when ``intercept=True``."""

    bse: np.ndarray
    """Standard errors of the coefficients under ``cov_type``."""

    cov_params: np.ndarray
    """Coefficient covariance matrix under ``cov_type``."""

    rsquared: float
    rsquared_adj: float
    nobs: int
    df_model: int
    df_resid: int
    cov_type: str
    fitted_values: np.ndarray = field(repr=False)
    residuals: np.ndarray = field(repr=False)
    exog_names: Tuple[str, ...] = ()
    has_intercept: bool = True
    diagnostics: Optional[FitDiagnostics] = field(default=None, repr=False)
    """Numerical provenance of the fit (conditioning, rank, fallback);
    always populated by :func:`fit_ols` / ``fit_robust``."""

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    @property
    def tvalues(self) -> np.ndarray:
        """t statistics of the coefficients (coef / robust SE)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.bse > 0, self.params / self.bse, np.inf)

    @property
    def pvalues(self) -> np.ndarray:
        """Two-sided p values from a Student-t with ``df_resid`` dof."""
        dof = max(self.df_resid, 1)
        return 2.0 * _scipy_stats.t.sf(np.abs(self.tvalues), dof)

    def conf_int(self, alpha: float = 0.05) -> np.ndarray:
        """Confidence intervals ``(k, 2)`` at level ``1 - alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        dof = max(self.df_resid, 1)
        q = _scipy_stats.t.ppf(1.0 - alpha / 2.0, dof)
        half = q * self.bse
        return np.column_stack([self.params - half, self.params + half])

    def predict(self, exog: np.ndarray) -> np.ndarray:
        """Predict the dependent variable for new regressors.

        ``exog`` must have the same columns used at fit time,
        *excluding* the intercept column — it is re-added automatically
        when the model was fit with one.
        """
        x = as_2d(exog)
        if self.has_intercept:
            x = add_constant(x)
        if x.shape[1] != self.params.shape[0]:
            raise ValueError(
                f"exog has {x.shape[1]} columns (incl. intercept) but the "
                f"model was fit with {self.params.shape[0]}"
            )
        return x @ self.params

    def summary(self) -> str:
        """Plain-text coefficient table in the spirit of statsmodels."""
        names = self.exog_names or tuple(
            f"x{i}" for i in range(self.params.shape[0])
        )
        ci = self.conf_int()
        lines = [
            f"OLS ({self.cov_type})  nobs={self.nobs}  "
            f"R2={self.rsquared:.4f}  Adj.R2={self.rsquared_adj:.4f}",
            f"{'term':<18}{'coef':>14}{'std err':>12}{'t':>10}"
            f"{'P>|t|':>10}{'[0.025':>12}{'0.975]':>12}",
        ]
        for i, name in enumerate(names):
            lines.append(
                f"{name:<18}{self.params[i]:>14.6g}{self.bse[i]:>12.4g}"
                f"{self.tvalues[i]:>10.3f}{self.pvalues[i]:>10.3g}"
                f"{ci[i, 0]:>12.4g}{ci[i, 1]:>12.4g}"
            )
        return "\n".join(lines)


def _hc_covariance(
    design: np.ndarray,
    residuals: np.ndarray,
    xtx_inv: np.ndarray,
    kind: str,
) -> np.ndarray:
    """Sandwich covariance ``(X'X)^+ X' diag(w) X (X'X)^+``.

    The weights ``w`` distinguish the HC variants; HC3 divides the
    squared residuals by ``(1 - h_ii)^2`` which Long & Ervin recommend
    for small samples and which the paper adopts.
    """
    n, k = design.shape
    u2 = residuals**2
    if kind == "HC0":
        w = u2
    elif kind == "HC1":
        dof = max(n - k, 1)
        w = u2 * (n / dof)
    else:
        # Leverage h_ii = diag(X (X'X)^+ X'), computed without forming
        # the full hat matrix: h_ii = sum_j (X @ (X'X)^+)_ij * X_ij.
        h = np.einsum("ij,ij->i", design @ xtx_inv, design)
        h = np.clip(h, 0.0, 1.0 - 1e-10)
        if kind == "HC2":
            w = u2 / (1.0 - h)
        elif kind == "HC3":
            w = u2 / (1.0 - h) ** 2
        else:  # pragma: no cover - guarded by caller
            raise ValueError(f"unknown HC kind {kind!r}")
    meat = (design * w[:, np.newaxis]).T @ design
    return xtx_inv @ meat @ xtx_inv


def _validate_fit_inputs(
    endog: np.ndarray, exog: np.ndarray, cov_type: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared input validation for ``fit_ols`` / ``fit_robust``.

    Raises the typed errors of :mod:`repro.stats.errors` — degraded
    datasets must fail actionably, never with a downstream
    ``LinAlgError``.
    """
    if cov_type not in _HC_KINDS:
        raise ValueError(f"cov_type must be one of {_HC_KINDS}, got {cov_type!r}")
    y = np.asarray(endog, dtype=np.float64).ravel()
    x_raw = as_2d(exog)
    if y.shape[0] != x_raw.shape[0]:
        raise ValueError(
            f"endog has {y.shape[0]} rows but exog has {x_raw.shape[0]}"
        )
    if y.shape[0] == 0:
        raise ValueError("cannot fit OLS on an empty sample")
    if not (np.all(np.isfinite(y)) and np.all(np.isfinite(x_raw))):
        bad_y = int(np.count_nonzero(~np.isfinite(y)))
        bad_x = int(np.count_nonzero(~np.isfinite(x_raw)))
        raise NonFiniteInputError(
            "endog/exog contain non-finite values "
            f"({bad_y} in endog, {bad_x} in exog); drop or impute the "
            "degraded rows before fitting"
        )
    return y, x_raw


def _resolve_names(
    exog_names: Optional[Sequence[str]], n_regressors: int, intercept: bool
) -> Tuple[str, ...]:
    """Reporting names for the coefficient vector, intercept first."""
    if exog_names is not None:
        base = tuple(str(n_) for n_ in exog_names)
        if len(base) != n_regressors:
            raise ValueError(
                f"{len(base)} names supplied for {n_regressors} regressors"
            )
    else:
        base = tuple(f"x{i}" for i in range(n_regressors))
    return (("const",) + base) if intercept else base


def _design_has_constant(design: np.ndarray, intercept: bool) -> bool:
    """statsmodels' k_constant detection (Equation 1 carries its
    constant as the delta*Z term)."""
    return intercept or any(
        np.ptp(design[:, j]) == 0.0 and design[0, j] != 0.0  # replint: ignore[RL004] -- k_constant detection needs exact zeros
        for j in range(design.shape[1])
    )


def fit_ols(
    endog: np.ndarray,
    exog: np.ndarray,
    *,
    intercept: bool = True,
    cov_type: str = "HC3",
    exog_names: Optional[Sequence[str]] = None,
) -> OLSResult:
    """Fit ordinary least squares of ``endog`` on ``exog``.

    Parameters
    ----------
    endog:
        Dependent variable, shape ``(n,)`` — total power in the paper.
    exog:
        Regressor matrix ``(n, k)`` *without* the intercept column.
    intercept:
        Whether to prepend an intercept (default true, as statsmodels'
        ``add_constant`` idiom).
    cov_type:
        One of ``HC0``–``HC3`` or ``nonrobust``.  The paper uses HC3.
    exog_names:
        Optional names for reporting; the intercept is named ``const``.

    Returns
    -------
    OLSResult
        Including a :class:`~repro.stats.linalg.FitDiagnostics` record:
        rank-deficient or severely ill-conditioned designs do not raise
        — they take the guarded solver's deterministic ridge/pinv
        fallback chain, and the diagnostics say so.

    Raises
    ------
    NonFiniteInputError
        If endog/exog carry NaN or Inf.
    UnderdeterminedFitError
        If there are fewer observations than parameters.
    """
    y, x_raw = _validate_fit_inputs(endog, exog, cov_type)

    design = add_constant(x_raw) if intercept else x_raw
    n, k = design.shape
    if n < k:
        raise UnderdeterminedFitError(
            f"underdetermined fit: {n} observations for {k} parameters; "
            "shrink the model or gather more rows"
        )

    solution = guarded_lstsq(design, y)
    beta = solution.beta
    diagnostics = FitDiagnostics(
        method="ols",
        condition_number=solution.condition_number,
        rank=solution.rank,
        n_params=solution.n_params,
        fallback=solution.fallback,
        warnings=solution.warnings,
    )
    fitted = design @ beta
    resid = y - fitted

    # R^2 is centered when the model contains a constant — either the
    # prepended intercept or an explicit constant column in the design.
    has_constant = _design_has_constant(design, intercept)
    ss_res = float(resid @ resid)
    if has_constant:
        centered = y - y.mean()
        ss_tot = float(centered @ centered)
    else:
        ss_tot = float(y @ y)
    rsquared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    df_model = k - (1 if has_constant else 0)
    df_resid = n - k
    if df_resid > 0 and ss_tot > 0:
        rsquared_adj = (
            1.0 - (1.0 - rsquared) * (n - (1 if has_constant else 0)) / df_resid
        )
    else:
        rsquared_adj = rsquared

    xtx_inv = safe_pinv(design.T @ design)
    if cov_type == "nonrobust":
        sigma2 = ss_res / max(df_resid, 1)
        cov = xtx_inv * sigma2
    else:
        cov = _hc_covariance(design, resid, xtx_inv, cov_type)
    bse = np.sqrt(np.clip(np.diag(cov), 0.0, None))

    names = _resolve_names(exog_names, x_raw.shape[1], intercept)

    return OLSResult(
        params=beta,
        bse=bse,
        cov_params=cov,
        rsquared=rsquared,
        rsquared_adj=rsquared_adj,
        nobs=n,
        df_model=df_model,
        df_resid=df_resid,
        cov_type=cov_type,
        fitted_values=fitted,
        residuals=resid,
        exog_names=names,
        has_intercept=intercept,
        diagnostics=diagnostics,
    )
