"""Variance Inflation Factor (VIF) — the paper's stability metric.

Section III-B: "The VIF for a particular PMC event is calculated using
an ordinary least squares based linear regression model, which predicts
this variable using the other variables.  A lower mean VIF for a chosen
set of PMC events ensures the stability of the coefficients […] A VIF
of 1 indicates no correlation […] while a VIF value greater than 10
generally indicates multicollinearity problems."

``VIF_j = 1 / (1 - R²_j)`` where ``R²_j`` is from regressing column
``j`` on the remaining columns (with intercept).

Infinity convention
-------------------
A *perfectly* collinear column (``R²_j == 1`` to within float64) has an
infinite VIF, and these functions report it as exactly ``float("inf")``
— not a large finite sentinel, not a ``ZeroDivisionError``, and never a
runtime warning.  ``inf`` propagates correctly through comparisons
(``inf > 10`` is true, so threshold checks flag it), ``mean_vif`` of a
set containing one degenerate column is ``inf`` (the set *is* unusable),
and :func:`collinear_columns` lists the offenders by name.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stats.linalg import as_2d
from repro.stats.ols import fit_ols

__all__ = [
    "variance_inflation_factor",
    "mean_vif",
    "vif_table",
    "collinear_columns",
    "VIF_PROBLEM_THRESHOLD",
]

#: Conventional threshold above which multicollinearity is considered a
#: problem (Kutner 2004; Hair 2010), cited as such in the paper.
VIF_PROBLEM_THRESHOLD = 10.0

#: R² this close to 1 means the column is an exact linear combination of
#: the others at float64 resolution; the VIF is reported as ``inf``.
_PERFECT_R2 = 1.0 - 1e-14


def variance_inflation_factor(exog: np.ndarray, column: int) -> float:
    """VIF of ``exog[:, column]`` given the other columns.

    With only one column there is nothing to regress on and the VIF is
    1 by convention (no correlation possible).  A perfectly collinear
    column returns ``float("inf")`` (see module docstring).
    """
    x = as_2d(exog)
    n_cols = x.shape[1]
    if not 0 <= column < n_cols:
        raise IndexError(f"column {column} out of range for {n_cols} columns")
    if n_cols == 1:
        return 1.0
    target = x[:, column]
    others = np.delete(x, column, axis=1)
    if np.allclose(target, target[0]):
        # A constant column carries no variance to inflate.
        return 1.0
    res = fit_ols(target, others, cov_type="nonrobust")
    r2 = min(res.rsquared, 1.0)
    if r2 >= _PERFECT_R2:
        return float("inf")
    return float(1.0 / (1.0 - r2))


def mean_vif(exog: np.ndarray) -> float:
    """Mean VIF over all columns — the stability score of Table I/IV.

    For a single column (first selection step) the paper reports "n/a";
    we return ``nan`` so callers can render it that way.  If any column
    is perfectly collinear the mean is ``inf`` — the set as a whole has
    unidentifiable coefficients, which is exactly what an infinite
    stability score should say.
    """
    x = as_2d(exog)
    if x.shape[1] < 2:
        return float("nan")
    vifs = [variance_inflation_factor(x, j) for j in range(x.shape[1])]
    return float(np.mean(vifs))


def vif_table(
    exog: np.ndarray, names: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Per-column VIFs keyed by regressor name.

    Perfectly collinear columns appear with value ``float("inf")`` so a
    rendered table makes the degeneracy impossible to miss; use
    :func:`collinear_columns` to get just the offending names.
    """
    x = as_2d(exog)
    if names is None:
        names = [f"x{j}" for j in range(x.shape[1])]
    if len(names) != x.shape[1]:
        raise ValueError(
            f"{len(names)} names supplied for {x.shape[1]} columns"
        )
    return {
        str(name): variance_inflation_factor(x, j)
        for j, name in enumerate(names)
    }


def collinear_columns(
    exog: np.ndarray, names: Optional[Sequence[str]] = None
) -> Tuple[str, ...]:
    """Names of the columns whose VIF is infinite (perfect collinearity).

    Convenience for degraded-data reporting: a campaign whose fault
    injection zeroed two counters into identical columns can name them
    in its report instead of surfacing a bare ``inf`` mean VIF.
    """
    table = vif_table(exog, names)
    return tuple(
        name for name, value in table.items() if np.isinf(value)
    )
