"""Variance Inflation Factor (VIF) — the paper's stability metric.

Section III-B: "The VIF for a particular PMC event is calculated using
an ordinary least squares based linear regression model, which predicts
this variable using the other variables.  A lower mean VIF for a chosen
set of PMC events ensures the stability of the coefficients […] A VIF
of 1 indicates no correlation […] while a VIF value greater than 10
generally indicates multicollinearity problems."

``VIF_j = 1 / (1 - R²_j)`` where ``R²_j`` is from regressing column
``j`` on the remaining columns (with intercept).  Since every such
regression runs on standardized data, all ``k`` VIFs are the diagonal
of the *inverse of the pairwise correlation matrix* — so instead of one
OLS fit per column (the pre-fastfit implementation), this module builds
the correlation matrix once and reads every VIF off a single Cholesky
factorization (DESIGN.md §12).  A correlation matrix that is not
numerically positive definite (perfect collinearity) degrades
per-column to the minimum-norm pseudo-inverse quadratic form
``R²_j = r_jᵀ S⁺ r_j``, which reproduces the OLS ``R²`` exactly because
``r_j`` lies in the range of the sub-correlation ``S``.

Infinity convention
-------------------
A *perfectly* collinear column (``R²_j == 1`` to within float64) has an
infinite VIF, and these functions report it as exactly ``float("inf")``
— not a large finite sentinel, not a ``ZeroDivisionError``, and never a
runtime warning.  ``inf`` propagates correctly through comparisons
(``inf > 10`` is true, so threshold checks flag it), ``mean_vif`` of a
set containing one degenerate column is ``inf`` (the set *is* unusable),
and :func:`collinear_columns` lists the offenders by name.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stats.correlation import correlation_matrix
from repro.stats.errors import NonFiniteInputError
from repro.stats.linalg import as_2d, safe_pinv, triangular_solve, try_cholesky

__all__ = [
    "variance_inflation_factor",
    "mean_vif",
    "vif_table",
    "vifs_from_correlation",
    "collinear_columns",
    "VIF_PROBLEM_THRESHOLD",
]

#: Conventional threshold above which multicollinearity is considered a
#: problem (Kutner 2004; Hair 2010), cited as such in the paper.
VIF_PROBLEM_THRESHOLD = 10.0

#: R² this close to 1 means the column is an exact linear combination of
#: the others at float64 resolution; the VIF is reported as ``inf``.
_PERFECT_R2 = 1.0 - 1e-14

#: ``1/(1-R²)`` at the perfect-collinearity cutoff: a diagonal entry of
#: the inverse correlation matrix at or above this reads as ``inf``.
_VIF_INF = 1.0 / (1.0 - _PERFECT_R2)


def nonfinite_exog_error(n_bad: int) -> NonFiniteInputError:
    """The typed error raised for NaN/Inf regressor matrices.

    Shared with the fast-fit Gram cache so both paths raise the same
    message for the same degraded input.
    """
    return NonFiniteInputError(
        f"exog contains {n_bad} non-finite value(s); drop or impute the "
        "degraded rows before computing VIFs"
    )


def constant_column_mask(x: np.ndarray) -> np.ndarray:
    """Boolean mask of columns with (numerically) no variance.

    A constant column carries no variance to inflate — its VIF is 1.0
    by convention, and it is excluded from everyone else's regressors
    (it is indistinguishable from the intercept).
    """
    arr = as_2d(x)
    return np.array(
        [bool(np.allclose(arr[:, j], arr[0, j])) for j in range(arr.shape[1])]
    )


def vifs_from_correlation(corr: np.ndarray) -> np.ndarray:
    """Per-column VIFs from a pairwise correlation matrix.

    ``VIF_j = [R⁻¹]_jj``: one Cholesky factorization answers every
    column at once.  When ``R`` is not numerically positive definite
    (perfectly collinear columns), each column degrades to the
    pseudo-inverse quadratic form ``R²_j = r_jᵀ S⁺ r_j`` over the other
    columns' sub-correlation ``S`` — the minimum-norm solution whose
    ``R²`` equals the OLS value because ``r_j ∈ range(S)``.
    """
    r = np.asarray(corr, dtype=np.float64)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ValueError(f"expected a square correlation matrix, got {r.shape}")
    k = r.shape[0]
    if k < 2:
        return np.ones(k)
    factor = try_cholesky(r)
    if factor is not None:
        inv_factor = triangular_solve(factor, np.eye(k))
        diag = np.einsum("ij,ij->j", inv_factor, inv_factor)
        if np.all(np.isfinite(diag)):
            return np.where(diag >= _VIF_INF, np.inf, diag)
    vifs = np.empty(k)
    idx = np.arange(k)
    for j in range(k):
        others = idx[idx != j]
        sub = r[np.ix_(others, others)]
        r_j = r[others, j]
        r2 = min(float(r_j @ (safe_pinv(sub) @ r_j)), 1.0)
        vifs[j] = np.inf if r2 >= _PERFECT_R2 else 1.0 / (1.0 - r2)
    return vifs


def _vif_values(x: np.ndarray) -> np.ndarray:
    """All per-column VIFs of a regressor matrix.

    The single computational entry point behind every public function
    here: validate, shortcut constant columns to 1.0, and read the rest
    off one shared correlation-matrix factorization.
    """
    k = x.shape[1]
    vifs = np.ones(k)
    if k < 2:
        return vifs
    n_bad = int(np.count_nonzero(~np.isfinite(x)))
    if n_bad:
        raise nonfinite_exog_error(n_bad)
    active = np.flatnonzero(~constant_column_mask(x))
    if active.size >= 2:
        vifs[active] = vifs_from_correlation(correlation_matrix(x[:, active]))
    return vifs


def variance_inflation_factor(exog: np.ndarray, column: int) -> float:
    """VIF of ``exog[:, column]`` given the other columns.

    With only one column there is nothing to regress on and the VIF is
    1 by convention (no correlation possible).  A perfectly collinear
    column returns ``float("inf")`` (see module docstring).
    """
    x = as_2d(exog)
    n_cols = x.shape[1]
    if not 0 <= column < n_cols:
        raise IndexError(f"column {column} out of range for {n_cols} columns")
    if n_cols == 1:
        return 1.0
    if np.allclose(x[:, column], x[0, column]):
        # A constant column carries no variance to inflate.
        return 1.0
    return float(_vif_values(x)[column])


def mean_vif(exog: np.ndarray) -> float:
    """Mean VIF over all columns — the stability score of Table I/IV.

    For a single column (first selection step) the paper reports "n/a";
    we return ``nan`` so callers can render it that way.  If any column
    is perfectly collinear the mean is ``inf`` — the set as a whole has
    unidentifiable coefficients, which is exactly what an infinite
    stability score should say.
    """
    x = as_2d(exog)
    if x.shape[1] < 2:
        return float("nan")
    return float(np.mean(_vif_values(x)))


def vif_table(
    exog: np.ndarray, names: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Per-column VIFs keyed by regressor name.

    Perfectly collinear columns appear with value ``float("inf")`` so a
    rendered table makes the degeneracy impossible to miss; use
    :func:`collinear_columns` to get just the offending names.
    """
    x = as_2d(exog)
    if names is None:
        names = [f"x{j}" for j in range(x.shape[1])]
    if len(names) != x.shape[1]:
        raise ValueError(
            f"{len(names)} names supplied for {x.shape[1]} columns"
        )
    values = _vif_values(x)
    return {str(name): float(values[j]) for j, name in enumerate(names)}


def collinear_columns(
    exog: np.ndarray, names: Optional[Sequence[str]] = None
) -> Tuple[str, ...]:
    """Names of the columns whose VIF is infinite (perfect collinearity).

    Convenience for degraded-data reporting: a campaign whose fault
    injection zeroed two counters into identical columns can name them
    in its report instead of surfacing a bare ``inf`` mean VIF.
    """
    table = vif_table(exog, names)
    return tuple(
        name for name, value in table.items() if np.isinf(value)
    )
