"""Robust regression: Huber M-estimation via IRLS.

Watchdog-surviving outlier phases — a stuck power sensor that
flat-lined *within* plausibility bounds, a partially truncated trace
whose averaged phase power is subtly wrong — skew an OLS fit because
squared loss lets a handful of bad rows drag every coefficient.  The
Huber loss is quadratic near zero and linear in the tails, so such rows
keep a vote but lose their leverage.  :func:`fit_robust` is a drop-in
alternative to :func:`repro.stats.ols.fit_ols`: it returns the same
:class:`~repro.stats.ols.OLSResult` shape (selection, cross-validation
and the workflow accept either), with the IRLS provenance recorded in
the result's :class:`~repro.stats.linalg.FitDiagnostics`.

Implementation: iteratively reweighted least squares.  Residual scale
is re-estimated each iteration by the normalized MAD (median absolute
deviation × 1.4826, consistent for the Gaussian core); weights are
``min(1, c·σ̂ / |r|)`` with the conventional ``c = 1.345`` giving 95 %
efficiency under normality.  Every inner solve goes through the
guarded solver, so rank-deficient degraded datasets follow the same
deterministic ridge/pinv fallback chain as plain OLS.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stats.errors import RobustFitError, UnderdeterminedFitError
from repro.stats.linalg import (
    FitDiagnostics,
    add_constant,
    guarded_lstsq,
)
from repro.stats.ols import (
    OLSResult,
    _design_has_constant,
    _resolve_names,
    _validate_fit_inputs,
    fit_ols,
)

__all__ = ["fit_robust", "huber_weights", "HUBER_C"]

#: Huber tuning constant: 95 % asymptotic efficiency on clean Gaussian
#: data while bounding the influence of outliers.
HUBER_C = 1.345

#: MAD → σ consistency factor for the Gaussian distribution.
_MAD_TO_SIGMA = 1.4826


def huber_weights(
    residuals: np.ndarray, scale: float, c: float = HUBER_C
) -> np.ndarray:
    """IRLS weights of the Huber ψ: 1 in the quadratic core,
    ``c·σ/|r|`` in the linear tails."""
    if scale <= 0.0:
        return np.ones_like(np.asarray(residuals, dtype=np.float64))
    r = np.abs(np.asarray(residuals, dtype=np.float64))
    with np.errstate(divide="ignore"):
        w = np.where(r > c * scale, (c * scale) / r, 1.0)
    return w


def _mad_scale(residuals: np.ndarray) -> float:
    """Normalized median absolute deviation of the residuals."""
    r = np.asarray(residuals, dtype=np.float64)
    return float(np.median(np.abs(r - np.median(r))) * _MAD_TO_SIGMA)


def fit_robust(
    endog: np.ndarray,
    exog: np.ndarray,
    *,
    intercept: bool = True,
    cov_type: str = "HC3",
    exog_names: Optional[Sequence[str]] = None,
    c: float = HUBER_C,
    max_iter: int = 50,
    tol: float = 1e-8,
) -> OLSResult:
    """Huber-loss robust fit of ``endog`` on ``exog`` (drop-in for
    :func:`~repro.stats.ols.fit_ols`).

    The returned :class:`~repro.stats.ols.OLSResult` reports fitted
    values, residuals and (pseudo-)R² on the **original, unweighted**
    data — directly comparable to an OLS fit of the same design — while
    the coefficient covariance comes from the final weighted solve.
    ``result.diagnostics.method`` is ``"huber-irls"`` and carries the
    iteration count, convergence flag and any guarded-solver fallback
    taken along the way.

    Raises the same typed errors as ``fit_ols`` plus
    :class:`~repro.stats.errors.RobustFitError` when the reweighting
    degenerates (all observations down-weighted to zero).
    """
    if c <= 0.0:
        raise ValueError(f"Huber constant c must be positive, got {c}")
    if max_iter < 1:
        raise ValueError("max_iter must be at least 1")
    y, x_raw = _validate_fit_inputs(endog, exog, cov_type)

    design = add_constant(x_raw) if intercept else x_raw
    n, k = design.shape
    if n < k:
        raise UnderdeterminedFitError(
            f"underdetermined fit: {n} observations for {k} parameters; "
            "shrink the model or gather more rows"
        )

    warnings: list = []
    solution = guarded_lstsq(design, y)
    beta = solution.beta
    fallback = solution.fallback
    warnings.extend(solution.warnings)

    weights = np.ones(n)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        resid = y - design @ beta
        scale = _mad_scale(resid)
        if scale <= 0.0:
            # More than half the residuals are exactly zero: the fit
            # already interpolates the data core; nothing to reweight.
            converged = True
            break
        weights = huber_weights(resid, scale, c)
        total_weight = float(weights.sum())
        if total_weight <= 0.0 or not np.isfinite(total_weight):
            raise RobustFitError(
                "IRLS degenerated: all observations received zero weight"
            )
        sw = np.sqrt(weights)
        step = guarded_lstsq(design * sw[:, np.newaxis], y * sw)
        if step.fallback != "none" and fallback == "none":
            fallback = step.fallback
            warnings.extend(step.warnings)
        delta = float(np.max(np.abs(step.beta - beta)))
        beta = step.beta
        if delta <= tol * (1.0 + float(np.max(np.abs(beta)))):
            converged = True
            break
    if not converged:
        warnings.append(
            f"IRLS did not converge within {max_iter} iterations"
        )

    # Final weighted OLS for the inference machinery (covariance, SEs):
    # weighted least squares == OLS on the sqrt(w)-scaled system.
    sw = np.sqrt(weights)
    names = _resolve_names(exog_names, x_raw.shape[1], intercept)
    weighted = fit_ols(
        y * sw,
        design * sw[:, np.newaxis],
        intercept=False,
        cov_type=cov_type,
        exog_names=names,
    )

    # Report fit quality on the original scale with the robust beta.
    fitted = design @ weighted.params
    resid = y - fitted
    has_constant = _design_has_constant(design, intercept)
    ss_res = float(resid @ resid)
    if has_constant:
        centered = y - y.mean()
        ss_tot = float(centered @ centered)
    else:
        ss_tot = float(y @ y)
    rsquared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    df_resid = n - k
    if df_resid > 0 and ss_tot > 0:
        rsquared_adj = (
            1.0 - (1.0 - rsquared) * (n - (1 if has_constant else 0)) / df_resid
        )
    else:
        rsquared_adj = rsquared

    inner = weighted.diagnostics
    diagnostics = FitDiagnostics(
        method="huber-irls",
        condition_number=(
            inner.condition_number if inner is not None else float("nan")
        ),
        rank=inner.rank if inner is not None else k,
        n_params=k,
        fallback=fallback,
        warnings=tuple(warnings),
        n_iter=n_iter,
        converged=converged,
    )
    return replace(
        weighted,
        fitted_values=fitted,
        residuals=resid,
        rsquared=rsquared,
        rsquared_adj=rsquared_adj,
        df_model=k - (1 if has_constant else 0),
        has_intercept=intercept,
        diagnostics=diagnostics,
    )
