"""Small, numerically careful linear-algebra helpers.

The OLS fits in this package run inside the greedy counter-selection
loop (Algorithm 1), which performs ``O(#counters * #selected)`` fits per
selection — so the solver must be cheap, but it must also be robust to
the near-collinear design matrices that the multicollinearity analysis
(Section IV-A) deliberately provokes.  We therefore solve least squares
through a rank-revealing QR/pinv path instead of forming and inverting
the normal equations.

This module is the **only** place allowed to call the raw
``numpy.linalg`` solvers (enforced by lint rule RL008): every other
module goes through the guarded entry points here —
:func:`guarded_lstsq` for least squares with a deterministic
ridge/pinv fallback chain and a :class:`GuardedSolution` record of what
happened, and :func:`safe_solve` for square systems that degrade to a
pseudo-inverse instead of raising ``LinAlgError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import solve_triangular as _scipy_solve_triangular

__all__ = [
    "add_constant",
    "lstsq_via_qr",
    "safe_pinv",
    "safe_solve",
    "as_2d",
    "guarded_lstsq",
    "try_cholesky",
    "triangular_solve",
    "GuardedSolution",
    "FitDiagnostics",
    "CONDITION_FALLBACK_THRESHOLD",
]

#: Column-scaled condition number above which the direct least-squares
#: solution is considered numerically untrustworthy and the guarded
#: solver switches to its ridge fallback.  Belsley's "serious
#: collinearity" starts around 30; 1e10 flags only designs where ~10 of
#: the 15–16 float64 digits are lost — genuine numerical degeneracy,
#: not the mild collinearity the VIF analysis studies.
CONDITION_FALLBACK_THRESHOLD = 1e10


@dataclass(frozen=True)
class GuardedSolution:
    """Outcome of :func:`guarded_lstsq`: coefficients plus provenance."""

    beta: np.ndarray
    rank: int
    n_params: int
    condition_number: float
    fallback: str
    """``"none"`` (direct SVD solve), ``"ridge"`` (deterministic Tikhonov
    refit) or ``"pinv"`` (pseudo-inverse last resort)."""
    warnings: Tuple[str, ...] = ()

    @property
    def rank_deficient(self) -> bool:
        return self.rank < self.n_params


@dataclass(frozen=True)
class FitDiagnostics:
    """Structured numerical diagnosis of a regression fit.

    Every fit produced by :func:`repro.stats.ols.fit_ols` or
    :func:`repro.stats.robust.fit_robust` carries one of these, so a
    caller (or a campaign report) can always answer "was this fit
    numerically clean, and if not, what did the solver do about it?".
    """

    method: str
    """``"ols"`` or ``"huber-irls"``."""
    condition_number: float
    """2-norm condition number of the design matrix."""
    rank: int
    n_params: int
    fallback: str = "none"
    """Which guarded-solver fallback produced the coefficients."""
    warnings: Tuple[str, ...] = ()
    n_iter: int = 0
    """IRLS iterations (0 for plain OLS)."""
    converged: bool = True

    @property
    def rank_deficient(self) -> bool:
        return self.rank < self.n_params

    @property
    def clean(self) -> bool:
        """No fallback, full rank, converged, nothing to warn about."""
        return (
            self.fallback == "none"
            and not self.rank_deficient
            and self.converged
            and not self.warnings
        )

    def summary(self) -> str:
        parts = [
            f"method={self.method}",
            f"cond={self.condition_number:.3g}",
            f"rank={self.rank}/{self.n_params}",
            f"fallback={self.fallback}",
        ]
        if self.n_iter:
            parts.append(
                f"iter={self.n_iter}"
                + ("" if self.converged else " (not converged)")
            )
        for w in self.warnings:
            parts.append(f"warning: {w}")
        return "; ".join(parts)


def as_2d(x: np.ndarray) -> np.ndarray:
    """Return ``x`` as a 2-D float array (columns are regressors).

    1-D input is promoted to a single-column matrix.  The data is
    converted to ``float64`` but not copied when already conforming,
    following the "views, not copies" guidance for numerical code.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D design data, got ndim={arr.ndim}")
    return arr


def add_constant(x: np.ndarray, prepend: bool = True) -> np.ndarray:
    """Append (or prepend) an intercept column of ones to ``x``.

    Mirrors ``statsmodels.api.add_constant`` which the paper's
    implementation used before every OLS fit.
    """
    arr = as_2d(x)
    const = np.ones((arr.shape[0], 1), dtype=np.float64)
    parts = (const, arr) if prepend else (arr, const)
    return np.hstack(parts)


def lstsq_via_qr(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Solve ``min ||design @ beta - target||_2`` robustly.

    Uses :func:`numpy.linalg.lstsq` (LAPACK gelsd — SVD based, rank
    revealing) so that rank-deficient designs produced by perfectly
    collinear counters return the minimum-norm solution instead of
    raising.  Returns the coefficient vector ``beta``.
    """
    design = as_2d(design)
    target = np.asarray(target, dtype=np.float64).ravel()
    if design.shape[0] != target.shape[0]:
        raise ValueError(
            f"design has {design.shape[0]} rows but target has {target.shape[0]}"
        )
    beta, _residuals, _rank, _sv = np.linalg.lstsq(design, target, rcond=None)
    return beta


def safe_pinv(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose pseudo-inverse with a conservative cutoff.

    Used for the coefficient covariance ``(X'X)^+`` in the HC estimators
    where near-singular ``X'X`` matrices occur by construction in the
    VIF stress experiments.
    """
    return np.linalg.pinv(np.asarray(matrix, dtype=np.float64), rcond=rcond)


def safe_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the square system ``matrix @ x = rhs`` without ever raising
    ``LinAlgError``.

    The direct LAPACK solve is attempted first; a singular (or otherwise
    un-factorable) matrix degrades to the minimum-norm pseudo-inverse
    solution.  Non-finite solutions (overflow through a nearly singular
    factor) take the same fallback, so the caller always receives finite
    coefficients for finite inputs.
    """
    a = np.asarray(matrix, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    try:
        x = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return safe_pinv(a) @ b
    if not np.all(np.isfinite(x)):
        return safe_pinv(a) @ b
    return x


def try_cholesky(matrix: np.ndarray) -> Optional[np.ndarray]:
    """Lower Cholesky factor of a symmetric matrix, or ``None``.

    The fast-fit kernels (DESIGN.md §12) use Cholesky factorizations of
    Gram matrices as their cheap O(k³) workhorse; a factorization
    failure (the matrix is not numerically positive definite — e.g. a
    Gram of perfectly collinear columns) is an *expected* outcome that
    routes the caller onto the exact slow path, so it is reported as
    ``None`` rather than an exception.  Non-finite input is likewise
    answered with ``None`` — LAPACK's behaviour on NaN is undefined.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if not np.all(np.isfinite(a)):
        return None
    try:
        return np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        return None


def triangular_solve(
    factor: np.ndarray, rhs: np.ndarray, *, trans: bool = False
) -> np.ndarray:
    """Solve ``L x = rhs`` (or ``Lᵀ x = rhs`` with ``trans=True``) for a
    lower-triangular ``factor``.

    Thin wrapper over the LAPACK triangular solver so the fast-fit
    kernels stay inside the guarded linear-algebra layer (lint rule
    RL008).  ``rhs`` may be a vector or a matrix of stacked right-hand
    sides; the solve is exact per column, so identical columns produce
    bitwise-identical solutions (the tie-preservation contract of the
    selection fast path).
    """
    return _scipy_solve_triangular(
        factor, rhs, lower=True, trans=1 if trans else 0, check_finite=False
    )


def guarded_lstsq(
    design: np.ndarray,
    target: np.ndarray,
    *,
    condition_threshold: float = CONDITION_FALLBACK_THRESHOLD,
    ridge_scale: float = 1e-10,
) -> GuardedSolution:
    """Least squares with rank/conditioning detection and a
    deterministic fallback chain.

    1. **Direct SVD solve** (:func:`lstsq_via_qr` path) — used verbatim
       when the design has full rank and its column-scaled condition
       number stays below ``condition_threshold``.
    2. **Ridge fallback** — rank-deficient or severely ill-conditioned
       designs are re-solved as ``(X'X + λI)⁺ X'y`` with the
       deterministic ``λ = ridge_scale · trace(X'X)/k``, shrinking the
       unidentifiable directions to a unique, stable solution.
    3. **Pinv fallback** — if the SVD itself fails to converge (rare
       LAPACK pathology) or the ridge refit produces non-finite values,
       the Moore–Penrose pseudo-inverse of the design is the last
       resort.

    Every fallback is recorded in the returned :class:`GuardedSolution`
    so the caller can surface it instead of silently shipping a
    regularized fit.
    """
    x = as_2d(design)
    y = np.asarray(target, dtype=np.float64).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"design has {x.shape[0]} rows but target has {y.shape[0]}"
        )
    k = x.shape[1]
    warnings: list = []

    try:
        beta, _res, rank, sv = np.linalg.lstsq(x, y, rcond=None)
        rank = int(rank)
        if sv.size and sv[-1] > 0.0:
            cond = float(sv[0] / sv[-1])
        else:
            cond = float("inf")
    except np.linalg.LinAlgError as exc:
        warnings.append(f"svd failed to converge ({exc}); pinv fallback")
        beta = safe_pinv(x) @ y
        return GuardedSolution(
            beta=beta,
            rank=0,
            n_params=k,
            condition_number=float("inf"),
            fallback="pinv",
            warnings=tuple(warnings),
        )

    if rank == k and cond <= condition_threshold:
        return GuardedSolution(
            beta=beta,
            rank=rank,
            n_params=k,
            condition_number=cond,
            fallback="none",
            warnings=(),
        )

    if rank < k:
        warnings.append(
            f"rank-deficient design (rank {rank} of {k}); ridge fallback"
        )
    else:
        warnings.append(
            f"ill-conditioned design (cond {cond:.3g} > "
            f"{condition_threshold:.3g}); ridge fallback"
        )
    gram = x.T @ x
    lam = ridge_scale * float(np.trace(gram)) / max(k, 1)
    if lam <= 0.0:
        lam = ridge_scale
    ridge_beta = safe_pinv(gram + lam * np.eye(k)) @ (x.T @ y)
    if np.all(np.isfinite(ridge_beta)):
        return GuardedSolution(
            beta=ridge_beta,
            rank=rank,
            n_params=k,
            condition_number=cond,
            fallback="ridge",
            warnings=tuple(warnings),
        )
    warnings.append("ridge fallback non-finite; pinv fallback")
    return GuardedSolution(
        beta=safe_pinv(x) @ y,
        rank=rank,
        n_params=k,
        condition_number=cond,
        fallback="pinv",
        warnings=tuple(warnings),
    )
