"""Small, numerically careful linear-algebra helpers.

The OLS fits in this package run inside the greedy counter-selection
loop (Algorithm 1), which performs ``O(#counters * #selected)`` fits per
selection — so the solver must be cheap, but it must also be robust to
the near-collinear design matrices that the multicollinearity analysis
(Section IV-A) deliberately provokes.  We therefore solve least squares
through a rank-revealing QR/pinv path instead of forming and inverting
the normal equations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["add_constant", "lstsq_via_qr", "safe_pinv", "as_2d"]


def as_2d(x: np.ndarray) -> np.ndarray:
    """Return ``x`` as a 2-D float array (columns are regressors).

    1-D input is promoted to a single-column matrix.  The data is
    converted to ``float64`` but not copied when already conforming,
    following the "views, not copies" guidance for numerical code.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D design data, got ndim={arr.ndim}")
    return arr


def add_constant(x: np.ndarray, prepend: bool = True) -> np.ndarray:
    """Append (or prepend) an intercept column of ones to ``x``.

    Mirrors ``statsmodels.api.add_constant`` which the paper's
    implementation used before every OLS fit.
    """
    arr = as_2d(x)
    const = np.ones((arr.shape[0], 1), dtype=np.float64)
    parts = (const, arr) if prepend else (arr, const)
    return np.hstack(parts)


def lstsq_via_qr(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Solve ``min ||design @ beta - target||_2`` robustly.

    Uses :func:`numpy.linalg.lstsq` (LAPACK gelsd — SVD based, rank
    revealing) so that rank-deficient designs produced by perfectly
    collinear counters return the minimum-norm solution instead of
    raising.  Returns the coefficient vector ``beta``.
    """
    design = as_2d(design)
    target = np.asarray(target, dtype=np.float64).ravel()
    if design.shape[0] != target.shape[0]:
        raise ValueError(
            f"design has {design.shape[0]} rows but target has {target.shape[0]}"
        )
    beta, _residuals, _rank, _sv = np.linalg.lstsq(design, target, rcond=None)
    return beta


def safe_pinv(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose pseudo-inverse with a conservative cutoff.

    Used for the coefficient covariance ``(X'X)^+`` in the HC estimators
    where near-singular ``X'X`` matrices occur by construction in the
    VIF stress experiments.
    """
    return np.linalg.pinv(np.asarray(matrix, dtype=np.float64), rcond=rcond)
