"""Error metrics used throughout the evaluation.

The paper's single-number accuracy metric is the Mean Absolute
Percentage Error (MAPE, Table II / Fig. 3 / Fig. 4); :math:`R^2` is used
for model fit quality.  The remaining metrics support the extended
analysis (bias detection of Fig. 5a, residual studies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mape", "mae", "rmse", "r2_score", "max_ape", "bias"]


def _pair(actual: np.ndarray, predicted: np.ndarray):
    a = np.asarray(actual, dtype=np.float64).ravel()
    p = np.asarray(predicted, dtype=np.float64).ravel()
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("empty inputs")
    return a, p


def _ape_rows(
    actual: np.ndarray,
    predicted: np.ndarray,
    on_zero: str,
    metric: str,
):
    """Shared zero-actual handling for the percentage-error metrics.

    ``on_zero="raise"`` keeps the strict historical contract: power
    measurements are strictly positive, so a zero actual indicates a
    pipeline bug.  ``on_zero="skip"`` drops the offending rows instead —
    the right mode for degraded/chaos pipelines where one corrupt sample
    must not abort a whole evaluation (callers record a warning).
    """
    if on_zero not in ("raise", "skip"):
        raise ValueError(
            f"on_zero must be 'raise' or 'skip', got {on_zero!r}"
        )
    a, p = _pair(actual, predicted)
    zero = a == 0.0  # replint: ignore[RL004] -- exact-zero guard: APE division sentinel
    if not np.any(zero):
        return a, p
    if on_zero == "raise":
        raise ValueError(f"{metric} undefined: actual contains zeros")
    keep = ~zero
    if not np.any(keep):
        raise ValueError(
            f"{metric} undefined: every actual value is zero"
        )
    return a[keep], p[keep]


def mape(
    actual: np.ndarray, predicted: np.ndarray, *, on_zero: str = "raise"
) -> float:
    """Mean Absolute Percentage Error, in percent.

    ``mean(|actual - predicted| / |actual|) * 100``.  By default raises
    if any actual value is zero — power measurements are strictly
    positive, so a zero here indicates a pipeline bug rather than a
    valid sample; ``on_zero="skip"`` drops zero-actual rows (all-zero
    input still raises).
    """
    a, p = _ape_rows(actual, predicted, on_zero, "MAPE")
    return float(np.mean(np.abs((a - p) / a)) * 100.0)


def max_ape(
    actual: np.ndarray, predicted: np.ndarray, *, on_zero: str = "raise"
) -> float:
    """Worst-case absolute percentage error, in percent.

    Same zero-actual contract as :func:`mape`.
    """
    a, p = _ape_rows(actual, predicted, on_zero, "APE")
    return float(np.max(np.abs((a - p) / a)) * 100.0)


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error (same unit as the inputs — watts here)."""
    a, p = _pair(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    a, p = _pair(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def bias(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean signed error ``mean(predicted - actual)``.

    Positive values mean systematic over-estimation — the failure mode
    Fig. 5a exhibits for the md/nab benchmarks under scenario 2.
    """
    a, p = _pair(actual, predicted)
    return float(np.mean(p - a))


def r2_score(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Out-of-sample coefficient of determination.

    ``1 - SS_res / SS_tot`` with ``SS_tot`` centered on the *actual*
    mean; can be negative for predictions worse than the mean.
    """
    a, p = _pair(actual, predicted)
    resid = a - p
    centered = a - a.mean()
    ss_tot = float(centered @ centered)
    if ss_tot == 0.0:  # replint: ignore[RL004] -- exact-zero guard: constant target
        return 0.0
    return float(1.0 - (resid @ resid) / ss_tot)
