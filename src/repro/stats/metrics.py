"""Error metrics used throughout the evaluation.

The paper's single-number accuracy metric is the Mean Absolute
Percentage Error (MAPE, Table II / Fig. 3 / Fig. 4); :math:`R^2` is used
for model fit quality.  The remaining metrics support the extended
analysis (bias detection of Fig. 5a, residual studies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mape", "mae", "rmse", "r2_score", "max_ape", "bias"]


def _pair(actual: np.ndarray, predicted: np.ndarray):
    a = np.asarray(actual, dtype=np.float64).ravel()
    p = np.asarray(predicted, dtype=np.float64).ravel()
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("empty inputs")
    return a, p


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean Absolute Percentage Error, in percent.

    ``mean(|actual - predicted| / |actual|) * 100``.  Raises if any
    actual value is zero — power measurements are strictly positive, so
    a zero here indicates a pipeline bug rather than a valid sample.
    """
    a, p = _pair(actual, predicted)
    if np.any(a == 0.0):  # replint: ignore[RL004] -- exact-zero guard: MAPE division sentinel
        raise ValueError("MAPE undefined: actual contains zeros")
    return float(np.mean(np.abs((a - p) / a)) * 100.0)


def max_ape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Worst-case absolute percentage error, in percent."""
    a, p = _pair(actual, predicted)
    if np.any(a == 0.0):  # replint: ignore[RL004] -- exact-zero guard: MAPE division sentinel
        raise ValueError("APE undefined: actual contains zeros")
    return float(np.max(np.abs((a - p) / a)) * 100.0)


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error (same unit as the inputs — watts here)."""
    a, p = _pair(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    a, p = _pair(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def bias(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean signed error ``mean(predicted - actual)``.

    Positive values mean systematic over-estimation — the failure mode
    Fig. 5a exhibits for the md/nab benchmarks under scenario 2.
    """
    a, p = _pair(actual, predicted)
    return float(np.mean(p - a))


def r2_score(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Out-of-sample coefficient of determination.

    ``1 - SS_res / SS_tot`` with ``SS_tot`` centered on the *actual*
    mean; can be negative for predictions worse than the mean.
    """
    a, p = _pair(actual, predicted)
    resid = a - p
    centered = a - a.mean()
    ss_tot = float(centered @ centered)
    if ss_tot == 0.0:  # replint: ignore[RL004] -- exact-zero guard: constant target
        return 0.0
    return float(1.0 - (resid @ resid) / ss_tot)
