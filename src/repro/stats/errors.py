"""Typed errors of the estimation layer.

The robustness contract of the model stack (DESIGN.md §10) is that a
degraded dataset either fits with a structured
:class:`~repro.stats.linalg.FitDiagnostics` diagnosis or fails with one
of these typed, actionable errors — never a bare
``numpy.linalg.LinAlgError`` or a silent garbage fit.

All errors subclass :class:`ValueError` so existing callers that guard
estimation with ``except ValueError`` keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "EstimationError",
    "NonFiniteInputError",
    "UnderdeterminedFitError",
    "DegenerateDesignError",
    "DegenerateResidualsError",
    "RobustFitError",
]


class EstimationError(ValueError):
    """Base class: a regression fit could not be performed as asked."""


class NonFiniteInputError(EstimationError):
    """Endog/exog contain NaN or Inf.

    The acquisition layer marks holes with NaN (PR 2's degraded
    merges); those rows must be dropped or imputed *before* fitting —
    a NaN reaching the solver is a pipeline bug, not a valid sample.
    """


class UnderdeterminedFitError(EstimationError):
    """Fewer observations than parameters (n < p).

    No fallback can conjure the missing information; the caller must
    either shrink the model (fewer counters) or gather more rows.
    """


class DegenerateDesignError(EstimationError):
    """The design matrix defeated the entire fallback chain.

    Raised only when direct solve, ridge and pseudo-inverse all fail to
    produce finite coefficients — in practice an all-zero or otherwise
    pathological design.
    """


class DegenerateResidualsError(EstimationError):
    """A residual vector carries no distributional information.

    Constant residuals (a numerically perfect or collapsed fit) have
    zero variance: normality and heteroscedasticity statistics on them
    are 0/0 forms.  The diagnostics refuse with this error instead of
    silently propagating NaN into an audit verdict.
    """


class RobustFitError(EstimationError):
    """The IRLS robust fit could not be completed (e.g. every
    observation down-weighted to zero)."""
