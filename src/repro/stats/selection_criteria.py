"""Model-selection criteria beyond plain :math:`R^2`.

The paper's outlook (Section VI) calls for "analyzing different
statistical algorithms and heuristic criterions for selecting PMC
events".  This module supplies the criteria; the greedy driver in
:mod:`repro.core.selection` can run with any of them, and the ablation
benchmark compares the resulting counter sets.

All criteria are expressed so that **larger is better**, letting the
greedy loop maximize uniformly (AIC/BIC are negated).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from repro.stats.ols import OLSResult

__all__ = ["aic", "bic", "criterion_value", "CRITERIA"]


def _log_likelihood(result: OLSResult) -> float:
    """Gaussian log-likelihood of an OLS fit at the MLE variance."""
    n = result.nobs
    ss_res = float(result.residuals @ result.residuals)
    sigma2 = max(ss_res / n, 1e-300)
    return -0.5 * n * (math.log(2.0 * math.pi * sigma2) + 1.0)


def aic(result: OLSResult) -> float:
    """Akaike information criterion: ``2k - 2 logL`` (lower better)."""
    k = result.params.shape[0]
    return 2.0 * k - 2.0 * _log_likelihood(result)


def bic(result: OLSResult) -> float:
    """Bayesian information criterion: ``k ln n - 2 logL``."""
    k = result.params.shape[0]
    return k * math.log(result.nobs) - 2.0 * _log_likelihood(result)


def _score_r2(result: OLSResult) -> float:
    return result.rsquared


def _score_adj_r2(result: OLSResult) -> float:
    return result.rsquared_adj


def _score_aic(result: OLSResult) -> float:
    return -aic(result)


def _score_bic(result: OLSResult) -> float:
    return -bic(result)


#: Registry of greedy-selection scoring functions (larger is better).
#: ``"r2"`` is the paper's Algorithm 1 criterion.
CRITERIA: Dict[str, Callable[[OLSResult], float]] = {
    "r2": _score_r2,
    "adj_r2": _score_adj_r2,
    "aic": _score_aic,
    "bic": _score_bic,
}


def criterion_value(name: str, result: OLSResult) -> float:
    """Evaluate a registered criterion on an OLS result."""
    try:
        fn = CRITERIA[name]
    except KeyError:
        raise ValueError(
            f"unknown criterion {name!r}; available: {sorted(CRITERIA)}"
        ) from None
    return fn(result)
