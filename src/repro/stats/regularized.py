"""Regularized linear regression from scratch: ridge and lasso.

The paper's future work asks for "different statistical algorithms …
for selecting PMC events".  The natural modern candidate is the lasso:
its L1 path performs embedded feature selection and handles the
multicollinearity that breaks the greedy/VIF combination.  Since
scikit-learn is not a dependency, both estimators are implemented
here — ridge in closed form, lasso by cyclical coordinate descent with
soft thresholding — on standardized features with the intercept left
unpenalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.linalg import as_2d, safe_solve

__all__ = ["RegularizedFit", "ridge", "lasso", "lasso_path"]


@dataclass(frozen=True)
class RegularizedFit:
    """Result of a ridge/lasso fit (coefficients in original units)."""

    intercept: float
    coef: np.ndarray
    alpha: float
    method: str
    n_iter: int = 0

    def predict(self, exog: np.ndarray) -> np.ndarray:
        x = as_2d(exog)
        if x.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"exog has {x.shape[1]} columns, model has {self.coef.shape[0]}"
            )
        return self.intercept + x @ self.coef

    def selected_features(self, tol: float = 1e-10) -> List[int]:
        """Indices of features with non-zero coefficients."""
        return [int(i) for i in np.flatnonzero(np.abs(self.coef) > tol)]


def _standardize(x: np.ndarray, y: np.ndarray):
    x_mean = x.mean(axis=0)
    x_std = x.std(axis=0)
    x_std[x_std == 0.0] = 1.0  # replint: ignore[RL004] -- exact-zero guard: constant column
    y_mean = y.mean()
    return (x - x_mean) / x_std, y - y_mean, x_mean, x_std, y_mean


def _destandardize(coef_std, x_mean, x_std, y_mean):
    coef = coef_std / x_std
    intercept = y_mean - float(x_mean @ coef)
    return intercept, coef


def ridge(endog: np.ndarray, exog: np.ndarray, alpha: float) -> RegularizedFit:
    """Ridge regression: closed-form ``(X'X + αI)⁻¹X'y`` on
    standardized features, intercept unpenalized."""
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    x = as_2d(exog)
    y = np.asarray(endog, dtype=np.float64).ravel()
    if y.shape[0] != x.shape[0]:
        raise ValueError("row mismatch")
    xs, yc, x_mean, x_std, y_mean = _standardize(x, y)
    k = xs.shape[1]
    gram = xs.T @ xs + alpha * np.eye(k)
    coef_std = safe_solve(gram, xs.T @ yc)
    intercept, coef = _destandardize(coef_std, x_mean, x_std, y_mean)
    return RegularizedFit(intercept=intercept, coef=coef, alpha=alpha, method="ridge")


def _soft_threshold(z: float, gamma: float) -> float:
    if z > gamma:
        return z - gamma
    if z < -gamma:
        return z + gamma
    return 0.0


def lasso(
    endog: np.ndarray,
    exog: np.ndarray,
    alpha: float,
    *,
    max_iter: int = 2000,
    tol: float = 1e-8,
) -> RegularizedFit:
    """Lasso via cyclical coordinate descent.

    Minimizes ``(1/2n)·||y - Xβ||² + α·||β||₁`` on standardized
    features.  Converges when the largest coefficient update falls
    below ``tol``.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    x = as_2d(exog)
    y = np.asarray(endog, dtype=np.float64).ravel()
    if y.shape[0] != x.shape[0]:
        raise ValueError("row mismatch")
    xs, yc, x_mean, x_std, y_mean = _standardize(x, y)
    n, k = xs.shape
    coef = np.zeros(k)
    residual = yc.copy()
    col_sq = (xs**2).sum(axis=0) / n
    col_sq[col_sq == 0.0] = 1.0  # replint: ignore[RL004] -- exact-zero guard: constant column
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        max_delta = 0.0
        for j in range(k):
            old = coef[j]
            # Partial residual correlation for coordinate j.
            rho = float(xs[:, j] @ residual) / n + col_sq[j] * old
            new = _soft_threshold(rho, alpha) / col_sq[j]
            if new != old:
                residual -= xs[:, j] * (new - old)
                coef[j] = new
                max_delta = max(max_delta, abs(new - old))
        if max_delta < tol:
            break
    intercept, coef_orig = _destandardize(coef, x_mean, x_std, y_mean)
    return RegularizedFit(
        intercept=intercept,
        coef=coef_orig,
        alpha=alpha,
        method="lasso",
        n_iter=n_iter,
    )


def lasso_path(
    endog: np.ndarray,
    exog: np.ndarray,
    *,
    n_alphas: int = 30,
    alpha_min_ratio: float = 1e-3,
) -> List[RegularizedFit]:
    """Lasso regularization path from α_max (all-zero) downwards.

    α_max is the smallest penalty that zeroes every coefficient
    (``max |x_j'y| / n`` on standardized data); the path is
    log-spaced.  Useful for selection: the order in which features
    enter the path ranks their importance.
    """
    x = as_2d(exog)
    y = np.asarray(endog, dtype=np.float64).ravel()
    xs, yc, *_ = _standardize(x, y)
    n = xs.shape[0]
    alpha_max = float(np.max(np.abs(xs.T @ yc)) / n)
    if alpha_max == 0.0:  # replint: ignore[RL004] -- exact-zero guard: constant target
        raise ValueError("target is constant; lasso path undefined")
    alphas = np.geomspace(alpha_max, alpha_max * alpha_min_ratio, n_alphas)
    return [lasso(y, x, float(a)) for a in alphas]
