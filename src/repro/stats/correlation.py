"""Correlation coefficients (Section V of the paper).

The Pearson Correlation Coefficient (Equation 2 of the paper) is used
to quantify the significance of the selected performance counters with
respect to power (Table III, Fig. 6).  Spearman's rank correlation is
provided as a robustness companion for the analysis extensions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.stats.linalg import as_2d

__all__ = [
    "pearson",
    "spearman",
    "correlation_matrix",
    "pearson_with_target",
]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two 1-D samples.

    Implements Equation 2 of the paper directly.  Returns 0.0 when one
    of the samples is constant (the limit case the paper's tooling —
    ``scipy.stats.pearsonr`` — reports as ``nan``; 0 is the honest
    "no linear relation detectable" answer for counter columns that
    never fire).
    """
    a = np.asarray(x, dtype=np.float64).ravel()
    b = np.asarray(y, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two observations")
    da = a - a.mean()
    db = b - b.mean()
    denom = np.sqrt((da @ da) * (db @ db))
    if denom == 0.0:  # replint: ignore[RL004] -- exact-zero guard: constant series
        return 0.0
    return float(np.clip((da @ db) / denom, -1.0, 1.0))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty_like(arr)
    ranks[order] = np.arange(1, arr.size + 1, dtype=np.float64)
    # Average ranks within tie groups.
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation — Pearson on average ranks."""
    return pearson(_rankdata(np.asarray(x)), _rankdata(np.asarray(y)))


def correlation_matrix(data: np.ndarray) -> np.ndarray:
    """Symmetric Pearson correlation matrix over columns of ``data``."""
    x = as_2d(data)
    k = x.shape[1]
    out = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = pearson(x[:, i], x[:, j])
    return out


def pearson_with_target(
    data: np.ndarray,
    target: np.ndarray,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """PCC of each column of ``data`` against ``target``.

    This is the computation behind Fig. 6 (all PAPI counters vs power)
    and Table III (selected counters vs power).
    """
    x = as_2d(data)
    y = np.asarray(target, dtype=np.float64).ravel()
    if names is None:
        names = [f"x{j}" for j in range(x.shape[1])]
    if len(names) != x.shape[1]:
        raise ValueError(f"{len(names)} names for {x.shape[1]} columns")
    return {str(n): pearson(x[:, j], y) for j, n in enumerate(names)}
