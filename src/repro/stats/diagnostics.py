"""Regression diagnostics — distributional tests and conditioning.

The paper motivates HC3 standard errors with the observation that
power-model residuals are heteroscedastic ("the absolute error grows
with increasing power values", Section IV-B).  These tests let the
pipeline *demonstrate* that claim on the simulated data rather than
assert it, and they are the measurement substrate of the
:mod:`repro.audit` rule catalogue — every function here is pure and
artifact-free so the audit layer stays a thin rule pass.

Degenerate-input contract
-------------------------
Every diagnostic validates its inputs up front and fails with the
typed :mod:`repro.stats.errors` taxonomy — never by silently returning
NaN (the historical failure mode on constant residual vectors and
``n ≤ k+2`` samples) and never with a bare ``LinAlgError``:

* NaN/Inf anywhere → :class:`~repro.stats.errors.NonFiniteInputError`;
* constant residuals (a numerically perfect or collapsed fit) →
  :class:`~repro.stats.errors.DegenerateResidualsError`;
* too few observations for the statistic →
  :class:`~repro.stats.errors.UnderdeterminedFitError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.stats.errors import (
    DegenerateResidualsError,
    NonFiniteInputError,
    UnderdeterminedFitError,
)
from repro.stats.linalg import as_2d, safe_pinv
from repro.stats.ols import fit_ols

__all__ = [
    "HeteroscedasticityTest",
    "NormalityTest",
    "breusch_pagan",
    "white_test",
    "condition_number",
    "jarque_bera",
    "dagostino_k2",
    "residual_normality",
    "leverage_scores",
    "max_leverage",
]

#: Fewest observations D'Agostino's K² is defined for (the kurtosis
#: component needs n ≥ 8; scipy enforces the same bound).
DAGOSTINO_MIN_N = 8


def _validated_residuals(
    resid: np.ndarray, *, name: str, min_n: int = 3
) -> np.ndarray:
    """Shared degenerate-input screen for residual-based diagnostics."""
    r = np.asarray(resid, dtype=np.float64).ravel()
    if r.size < min_n:
        raise UnderdeterminedFitError(
            f"{name} needs at least {min_n} residuals, got {r.size}"
        )
    n_bad = int(np.count_nonzero(~np.isfinite(r)))
    if n_bad:
        raise NonFiniteInputError(
            f"{name}: residual vector contains {n_bad} non-finite "
            "value(s); drop or impute the degraded rows before testing"
        )
    if np.allclose(r, r[0]):
        raise DegenerateResidualsError(
            f"{name}: residuals are constant (zero variance) — a "
            "numerically perfect or collapsed fit carries no "
            "distributional information to test"
        )
    return r


def _validated_exog(exog: np.ndarray, *, name: str) -> np.ndarray:
    x = as_2d(exog)
    n_bad = int(np.count_nonzero(~np.isfinite(x)))
    if n_bad:
        raise NonFiniteInputError(
            f"{name}: exog contains {n_bad} non-finite value(s); drop "
            "or impute the degraded rows first"
        )
    return x


# --------------------------------------------------------------------------
# heteroscedasticity


@dataclass(frozen=True)
class HeteroscedasticityTest:
    """LM-statistic test result; ``pvalue < alpha`` rejects
    homoscedasticity."""

    statistic: float
    pvalue: float
    df: int
    name: str

    def rejects_homoscedasticity(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha


def _lm_test(resid: np.ndarray, aux_exog: np.ndarray, name: str) -> HeteroscedasticityTest:
    """Auxiliary-regression LM test: regress u² on ``aux_exog``.

    LM = n·R²_aux, asymptotically χ²(df) under the null.
    """
    aux = _validated_exog(aux_exog, name=name)
    df = aux.shape[1]
    # The auxiliary fit adds an intercept: u² needs n > df + 2 rows to
    # leave residual degrees of freedom for the R²_aux to mean anything
    # (n ≤ k+2 used to slip through and yield a vacuous LM = 0).
    u = _validated_residuals(resid, name=name, min_n=df + 3)
    if u.shape[0] != aux.shape[0]:
        raise ValueError(
            f"{name}: {u.shape[0]} residuals but {aux.shape[0]} exog rows"
        )
    u2 = u**2
    res = fit_ols(u2, aux, cov_type="nonrobust")
    n = u2.shape[0]
    lm = n * max(res.rsquared, 0.0)
    pvalue = float(_scipy_stats.chi2.sf(lm, df))
    return HeteroscedasticityTest(statistic=float(lm), pvalue=pvalue, df=df, name=name)


def breusch_pagan(resid: np.ndarray, exog: np.ndarray) -> HeteroscedasticityTest:
    """Breusch–Pagan LM test against variance linear in the regressors."""
    return _lm_test(resid, exog, "breusch-pagan")


def white_test(resid: np.ndarray, exog: np.ndarray) -> HeteroscedasticityTest:
    """White's test: auxiliary regression on levels, squares and
    pairwise cross products of the regressors (no intercept column —
    ``fit_ols`` adds one)."""
    x = _validated_exog(exog, name="white")
    n, k = x.shape
    cols = [x]
    cols.append(x**2)
    for i in range(k):
        for j in range(i + 1, k):
            cols.append((x[:, i] * x[:, j])[:, np.newaxis])
    aux = np.hstack(cols)
    # Drop duplicate/constant columns that would make the auxiliary
    # design singular (e.g. squaring a 0/1 dummy reproduces it).
    keep = []
    seen = []
    for c in range(aux.shape[1]):
        col = aux[:, c]
        if np.allclose(col, col[0]):
            continue
        if any(np.allclose(col, s) for s in seen):
            continue
        seen.append(col)
        keep.append(c)
    if not keep:
        raise DegenerateResidualsError(
            "white: every auxiliary regressor is constant or duplicated; "
            "the design carries no variance to explain u²"
        )
    aux = aux[:, keep]
    return _lm_test(resid, aux, "white")


# --------------------------------------------------------------------------
# residual normality


@dataclass(frozen=True)
class NormalityTest:
    """Normality test result; ``pvalue < alpha`` rejects normality."""

    statistic: float
    pvalue: float
    skewness: float
    excess_kurtosis: float
    n: int
    name: str

    def rejects_normality(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha


def _moments(r: np.ndarray) -> tuple:
    c = r - r.mean()
    m2 = float(np.mean(c**2))
    skew = float(np.mean(c**3) / m2**1.5)
    kurt = float(np.mean(c**4) / m2**2)
    return skew, kurt


def jarque_bera(resid: np.ndarray) -> NormalityTest:
    """Jarque–Bera normality test on a residual vector.

    ``JB = n/6 · (S² + (K−3)²/4)``, asymptotically χ²(2) under
    normality.  The audit layer runs it before trusting t/p statistics
    on small samples, where the CLT cannot yet rescue non-normal
    errors.
    """
    r = _validated_residuals(resid, name="jarque-bera", min_n=4)
    n = r.shape[0]
    skew, kurt = _moments(r)
    jb = n / 6.0 * (skew**2 + (kurt - 3.0) ** 2 / 4.0)
    pvalue = float(_scipy_stats.chi2.sf(jb, 2))
    return NormalityTest(
        statistic=float(jb),
        pvalue=pvalue,
        skewness=skew,
        excess_kurtosis=kurt - 3.0,
        n=n,
        name="jarque-bera",
    )


def dagostino_k2(resid: np.ndarray) -> NormalityTest:
    """D'Agostino–Pearson K² omnibus normality test.

    Combines z-transformed skewness and kurtosis; better calibrated
    than Jarque–Bera at moderate n, defined only for
    ``n >= DAGOSTINO_MIN_N`` (8).
    """
    r = _validated_residuals(resid, name="dagostino-k2", min_n=DAGOSTINO_MIN_N)
    stat, pvalue = _scipy_stats.normaltest(r)
    skew, kurt = _moments(r)
    return NormalityTest(
        statistic=float(stat),
        pvalue=float(pvalue),
        skewness=skew,
        excess_kurtosis=kurt - 3.0,
        n=r.shape[0],
        name="dagostino-k2",
    )


def residual_normality(resid: np.ndarray, method: str = "jarque-bera") -> NormalityTest:
    """Dispatch to a registered normality test by name."""
    tests = {"jarque-bera": jarque_bera, "dagostino-k2": dagostino_k2}
    if method not in tests:
        raise ValueError(
            f"method must be one of {sorted(tests)}, got {method!r}"
        )
    return tests[method](resid)


# --------------------------------------------------------------------------
# design conditioning and leverage


def condition_number(exog: np.ndarray) -> float:
    """2-norm condition number of the (column-scaled) design matrix.

    Columns are scaled to unit Euclidean norm first, the standard
    pre-treatment for collinearity diagnosis (Belsley).  Large values
    (≫ 30) signal the same instability the mean VIF flags.
    """
    x = _validated_exog(exog, name="condition-number")
    norms = np.linalg.norm(x, axis=0)
    norms[norms == 0.0] = 1.0  # replint: ignore[RL004] -- exact-zero guard: null column
    scaled = x / norms
    sv = np.linalg.svd(scaled, compute_uv=False)
    smallest = sv[-1]
    if smallest <= 0.0:
        return float("inf")
    return float(sv[0] / smallest)


def leverage_scores(exog: np.ndarray) -> np.ndarray:
    """Hat-matrix diagonal ``h_ii`` of a design matrix.

    ``h_ii = x_i' (X'X)⁺ x_i``, computed without materializing the hat
    matrix.  A row with ``h_ii`` near 1 pins the fit to itself — its
    residual is forced toward zero regardless of the data, so R² quoted
    on such a design overstates what the model learned.
    """
    x = _validated_exog(exog, name="leverage")
    if x.shape[0] < x.shape[1]:
        raise UnderdeterminedFitError(
            f"leverage needs n ≥ k, got {x.shape[0]} rows for "
            f"{x.shape[1]} columns"
        )
    xtx_inv = safe_pinv(x.T @ x)
    h = np.einsum("ij,jk,ik->i", x, xtx_inv, x)
    return np.clip(h, 0.0, 1.0)


def max_leverage(exog: np.ndarray) -> float:
    """Largest hat-matrix diagonal of the design."""
    return float(leverage_scores(exog).max())
