"""Regression diagnostics — heteroscedasticity tests and conditioning.

The paper motivates HC3 standard errors with the observation that
power-model residuals are heteroscedastic ("the absolute error grows
with increasing power values", Section IV-B).  These tests let the
pipeline *demonstrate* that claim on the simulated data rather than
assert it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.stats.linalg import as_2d
from repro.stats.ols import fit_ols

__all__ = ["HeteroscedasticityTest", "breusch_pagan", "white_test", "condition_number"]


@dataclass(frozen=True)
class HeteroscedasticityTest:
    """LM-statistic test result; ``pvalue < alpha`` rejects
    homoscedasticity."""

    statistic: float
    pvalue: float
    df: int
    name: str

    def rejects_homoscedasticity(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha


def _lm_test(resid: np.ndarray, aux_exog: np.ndarray, name: str) -> HeteroscedasticityTest:
    """Auxiliary-regression LM test: regress u² on ``aux_exog``.

    LM = n·R²_aux, asymptotically χ²(df) under the null.
    """
    u2 = np.asarray(resid, dtype=np.float64).ravel() ** 2
    aux = as_2d(aux_exog)
    res = fit_ols(u2, aux, cov_type="nonrobust")
    n = u2.shape[0]
    lm = n * max(res.rsquared, 0.0)
    df = aux.shape[1]
    pvalue = float(_scipy_stats.chi2.sf(lm, df))
    return HeteroscedasticityTest(statistic=float(lm), pvalue=pvalue, df=df, name=name)


def breusch_pagan(resid: np.ndarray, exog: np.ndarray) -> HeteroscedasticityTest:
    """Breusch–Pagan LM test against variance linear in the regressors."""
    return _lm_test(resid, exog, "breusch-pagan")


def white_test(resid: np.ndarray, exog: np.ndarray) -> HeteroscedasticityTest:
    """White's test: auxiliary regression on levels, squares and
    pairwise cross products of the regressors (no intercept column —
    ``fit_ols`` adds one)."""
    x = as_2d(exog)
    n, k = x.shape
    cols = [x]
    cols.append(x**2)
    for i in range(k):
        for j in range(i + 1, k):
            cols.append((x[:, i] * x[:, j])[:, np.newaxis])
    aux = np.hstack(cols)
    # Drop duplicate/constant columns that would make the auxiliary
    # design singular (e.g. squaring a 0/1 dummy reproduces it).
    keep = []
    seen = []
    for c in range(aux.shape[1]):
        col = aux[:, c]
        if np.allclose(col, col[0]):
            continue
        if any(np.allclose(col, s) for s in seen):
            continue
        seen.append(col)
        keep.append(c)
    aux = aux[:, keep]
    return _lm_test(resid, aux, "white")


def condition_number(exog: np.ndarray) -> float:
    """2-norm condition number of the (column-scaled) design matrix.

    Columns are scaled to unit Euclidean norm first, the standard
    pre-treatment for collinearity diagnosis (Belsley).  Large values
    (≫ 30) signal the same instability the mean VIF flags.
    """
    x = as_2d(exog)
    norms = np.linalg.norm(x, axis=0)
    norms[norms == 0.0] = 1.0  # replint: ignore[RL004] -- exact-zero guard: null column
    scaled = x / norms
    sv = np.linalg.svd(scaled, compute_uv=False)
    smallest = sv[-1]
    if smallest <= 0.0:
        return float("inf")
    return float(sv[0] / smallest)
