"""``repro-experiments`` — regenerate the paper's evaluation from the CLI.

Usage::

    repro-experiments                 # run everything
    repro-experiments table1 fig4    # run a subset
    repro-experiments --list         # show available experiments
    repro-experiments --seed 7       # different measurement campaign
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import data
from repro.seeding import DEFAULT_SEED

__all__ = ["main", "EXPERIMENTS"]


def _runner(module_name: str) -> Callable[[int], str]:
    def run(seed: int) -> str:
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.run(seed=seed).render()

    return run


#: Experiment id → callable(seed) -> rendered report.
EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": _runner("table1"),
    "fig2": _runner("fig2"),
    "table2": _runner("table2"),
    "fig3": _runner("fig3"),
    "fig4": _runner("fig4"),
    "fig5": _runner("fig5"),
    "table3": _runner("table3"),
    "fig6": _runner("fig6"),
    "table4": _runner("table4"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Statistical Approach "
            "to Power Estimation for x86 Processors' (IPDPSW 2017) on the "
            "simulated platform."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="campaign root seed"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the on-disk campaign cache",
    )
    parser.add_argument(
        "--export-dir",
        metavar="DIR",
        help="also write every artifact as CSV/JSON into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in chosen if e not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(available: {', '.join(EXPERIMENTS)})"
        )

    if args.no_cache:
        data.clear_memory_cache()
        # Force a rebuild by bypassing the disk cache once.
        data.full_dataset(seed=args.seed, use_disk_cache=False)

    if args.export_dir:
        from repro.experiments.export import export_all

        written = export_all(args.export_dir, seed=args.seed)
        print(f"exported {len(written)} files to {args.export_dir}")

    for name in chosen:
        t0 = time.time()
        report = EXPERIMENTS[name](args.seed)
        elapsed = time.time() - t0
        print("=" * 72)
        print(f"{name}  ({elapsed:.1f} s)")
        print("=" * 72)
        print(report)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
