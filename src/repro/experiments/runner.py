"""``repro-experiments`` — regenerate the paper's evaluation from the CLI.

Usage::

    repro-experiments                 # run everything
    repro-experiments table1 fig4    # run a subset
    repro-experiments --list         # show available experiments
    repro-experiments --seed 7       # different measurement campaign
    repro-experiments --parallel process --max-workers 4   # DVFS sweep
                                      # fanned out over worker processes
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import data
from repro.parallel import (
    MONOTONIC_CLOCK,
    PARALLEL_KINDS,
    StageTimer,
    resolve_executor,
)
from repro.seeding import DEFAULT_SEED

__all__ = ["main", "EXPERIMENTS"]


def _runner(module_name: str) -> Callable[[int], str]:
    def run(seed: int) -> str:
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.run(seed=seed).render()

    return run


#: Experiment id → callable(seed) -> rendered report.
EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": _runner("table1"),
    "fig2": _runner("fig2"),
    "table2": _runner("table2"),
    "fig3": _runner("fig3"),
    "fig4": _runner("fig4"),
    "fig5": _runner("fig5"),
    "table3": _runner("table3"),
    "fig6": _runner("fig6"),
    "table4": _runner("table4"),
    # Not a paper artifact: cluster-scheduler chaos demo asserting the
    # merged dataset survives node death bit-identical (see
    # repro.sched).
    "sched": _runner("sched_demo"),
    # Not a paper artifact: fleet-serving chaos soak asserting healthy
    # nodes stay bit-identical to the serial estimator while faults
    # are quarantined and audited (see repro.serve).
    "serve": _runner("serve_demo"),
}


def _run_experiment(item: Tuple[str, int]) -> Tuple[str, str, float]:
    """Run one experiment (module-level, picklable: the worker pickles
    only (name, seed) and resolves the callable in its own process).

    Elapsed time uses the repository's monotonic clock — wall-clock
    sources jump under NTP corrections and suspend/resume.
    """
    name, seed = item
    t0 = MONOTONIC_CLOCK()
    report = EXPERIMENTS[name](seed)
    return name, report, MONOTONIC_CLOCK() - t0


def _print_report(name: str, report: str, elapsed: float) -> None:
    print("=" * 72)
    print(f"{name}  ({elapsed:.1f} s)")
    print("=" * 72)
    print(report)
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'A Statistical Approach "
            "to Power Estimation for x86 Processors' (IPDPSW 2017) on the "
            "simulated platform."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="campaign root seed"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the on-disk campaign cache",
    )
    parser.add_argument(
        "--export-dir",
        metavar="DIR",
        help="also write every artifact as CSV/JSON into DIR",
    )
    parser.add_argument(
        "--parallel",
        choices=PARALLEL_KINDS,
        default=None,
        help=(
            "execution backend for the experiment sweep (default: the "
            "REPRO_PARALLEL environment variable, else serial)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --parallel thread/process",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    chosen = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in chosen if e not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(available: {', '.join(EXPERIMENTS)})"
        )

    if args.no_cache:
        data.clear_memory_cache()
        # Force a rebuild by bypassing the disk cache once.
        data.full_dataset(seed=args.seed, use_disk_cache=False)

    if args.export_dir:
        from repro.experiments.export import export_all

        written = export_all(args.export_dir, seed=args.seed)
        print(f"exported {len(written)} files to {args.export_dir}")

    executor = resolve_executor(args.parallel, args.max_workers)
    timer = StageTimer()
    work = [(name, args.seed) for name in chosen]
    with timer.stage("experiments", n_items=len(work), executor=executor):
        if executor.kind == "serial":
            # Stream each report as it finishes.
            for item in work:
                _print_report(*_run_experiment(item))
        else:
            # Reports print after the sweep, in request order — never in
            # completion order.
            for result in executor.map(_run_experiment, work):
                _print_report(*result)
    report = timer.report()
    print(
        f"ran {len(work)} experiment(s) in {report.total_s:.1f} s "
        f"({executor.describe()})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
