"""Fig. 5 — actual vs estimated average power per experiment.

Two scatters: (a) scenario 2, training with synthetic workloads and
verifying on SPEC; (b) scenario 3, 10-fold CV over everything.  Each
data point is one experiment (workload × frequency × thread count).

Reproduced claims:

* 5a shows *systematic* per-workload bias largely independent of
  frequency and thread count (md and nab consistently overestimated);
* 5b shows no gross over/under-estimation tendency and residuals whose
  absolute size grows with power (heteroscedasticity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_table
from repro.core.scenarios import (
    ScenarioResult,
    scenario_cv_all,
    scenario_synthetic_to_spec,
)
from repro.experiments.data import full_dataset, selected_counters
from repro.seeding import DEFAULT_SEED
from repro.stats.correlation import pearson

__all__ = ["Fig5Result", "run"]

ScatterRow = Tuple[str, str, int, int, float, float]


@dataclass(frozen=True)
class Fig5Result:
    """Both panels of Fig. 5."""

    scenario2: ScenarioResult
    scenario3: ScenarioResult

    @property
    def scatter_a(self) -> List[ScatterRow]:
        return self.scenario2.experiment_scatter()

    @property
    def scatter_b(self) -> List[ScatterRow]:
        return self.scenario3.experiment_scatter()

    # ------------------------------------------------------------------
    def systematic_bias_workloads(
        self, threshold_w: float = 5.0
    ) -> Dict[str, float]:
        """Workloads of panel (a) whose per-experiment signed errors all
        share one sign and exceed ``threshold_w`` on average — the
        'consistently over/underestimated' reading of Fig. 5a."""
        per_wl: Dict[str, List[float]] = {}
        for w, _s, _f, _t, actual, predicted in self.scatter_a:
            per_wl.setdefault(w, []).append(predicted - actual)
        out = {}
        for w, errs in per_wl.items():
            arr = np.asarray(errs)
            if abs(arr.mean()) >= threshold_w and (
                np.all(arr > 0) or np.all(arr < 0)
            ):
                out[w] = float(arr.mean())
        return out

    def heteroscedasticity_correlation(self) -> float:
        """corr(|residual|, power) over panel (b) — positive confirms
        the paper's residual reading."""
        actual = self.scenario3.validation.power_w
        resid = np.abs(actual - self.scenario3.predicted)
        return pearson(resid, actual)

    def overall_bias_b(self) -> float:
        """Mean signed error of panel (b), W (≈0 expected)."""
        return float(
            np.mean(self.scenario3.predicted - self.scenario3.validation.power_w)
        )

    def render(self) -> str:
        biased = self.systematic_bias_workloads()
        rows_a = [
            (w, f"{b:+.1f} W") for w, b in sorted(biased.items(), key=lambda kv: -abs(kv[1]))
        ]
        out = render_table(
            ["workload", "mean bias (pred-actual)"],
            rows_a,
            title=(
                "Fig. 5a (scenario 2): workloads with systematic bias "
                "(consistent sign, |bias| >= 5 W)"
            ),
        )
        out += (
            "\npaper: md and nab consistently overestimated when trained "
            "only on synthetic workloads.\n"
        )
        out += (
            f"\nFig. 5b (scenario 3): overall bias {self.overall_bias_b():+.2f} W "
            f"(no strong tendency), corr(|resid|, power) = "
            f"{self.heteroscedasticity_correlation():.3f} "
            "(positive => heteroscedastic, as the paper observes)"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
) -> Fig5Result:
    """Regenerate both Fig. 5 scatters."""
    ds = dataset if dataset is not None else full_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    return Fig5Result(
        scenario2=scenario_synthetic_to_spec(ds, cs),
        scenario3=scenario_cv_all(ds, cs, seed=seed),
    )
