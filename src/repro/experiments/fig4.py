"""Fig. 4 — MAPE of the four training scenarios.

The stability study of Section IV-B: scenario 2 (train on synthetic
only, validate on SPEC OMP2012) must show the largest error — the
paper reports 15.10 % — while cross-validation scenarios sit near the
Table II MAPE and scenario 4 (synthetic CV) is the most accurate but
least realistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_series
from repro.core.scenarios import SCENARIO_NAMES, ScenarioResult, run_all_scenarios
from repro.experiments.data import full_dataset, selected_counters
from repro.experiments.paper_values import PAPER_CV_MAPE, PAPER_FIG4_SCENARIO2_MAPE
from repro.seeding import DEFAULT_SEED

__all__ = ["Fig4Result", "run"]


@dataclass(frozen=True)
class Fig4Result:
    """The four scenario MAPEs plus the underlying results."""

    scenarios: Dict[str, ScenarioResult]

    @property
    def mapes(self) -> Dict[str, float]:
        return {name: r.mape for name, r in self.scenarios.items()}

    def scenario2_over_cv_ratio(self) -> float:
        """Degradation factor of synthetic-only training vs CV."""
        m = self.mapes
        return m[SCENARIO_NAMES[1]] / m[SCENARIO_NAMES[2]]

    def ordering_matches_paper(self) -> bool:
        """Scenario 2 worst; CV scenarios below scenario 1."""
        m = self.mapes
        s1, s2, s3, s4 = (m[n] for n in SCENARIO_NAMES)
        return s2 == max(m.values()) and s3 < s1 and s4 < s1

    def render(self) -> str:
        out = render_series(
            self.mapes,
            title="Fig. 4: MAPE per training scenario",
            unit="%",
        )
        out += (
            f"\npaper: scenario 2 = {PAPER_FIG4_SCENARIO2_MAPE} % (highest), "
            f"scenario 3 = {PAPER_CV_MAPE:.2f} % — "
            f"degradation ratio {PAPER_FIG4_SCENARIO2_MAPE / PAPER_CV_MAPE:.2f}x\n"
            f"ours:  degradation ratio {self.scenario2_over_cv_ratio():.2f}x, "
            f"ordering matches paper: {self.ordering_matches_paper()}"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
) -> Fig4Result:
    """Regenerate the Fig. 4 series."""
    ds = dataset if dataset is not None else full_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    return Fig4Result(scenarios=run_all_scenarios(ds, cs, seed=seed))
