"""Table IV — counters selected on the synthetic workloads only.

Reproduced claims: selecting on the roco2 subset yields a *different*
counter set than selecting on all workloads, and the multicollinearity
of the selected set is worse (the paper sees the mean VIF jump to ≈9
and ≈13.6 at the fifth and sixth counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_table
from repro.core.selection import SelectionResult, select_events
from repro.experiments.data import selection_dataset, selection_result
from repro.experiments.paper_values import PAPER_TABLE4
from repro.seeding import DEFAULT_SEED

__all__ = ["Table4Result", "run"]


@dataclass(frozen=True)
class Table4Result:
    """roco2-only selection next to the all-workload selection."""

    synthetic_selection: SelectionResult
    all_workload_selection: SelectionResult

    def differs_from_all_workloads(self) -> bool:
        return set(self.synthetic_selection.selected) != set(
            self.all_workload_selection.selected
        )

    def n_common(self) -> int:
        return len(
            set(self.synthetic_selection.selected)
            & set(self.all_workload_selection.selected)
        )

    def final_vif(self) -> float:
        return self.synthetic_selection.steps[-1].mean_vif

    def vif_ratio_vs_all(self) -> float:
        """Final mean VIF of the synthetic selection relative to the
        all-workload selection at the same step count."""
        n = len(self.synthetic_selection.steps)
        all_steps = self.all_workload_selection.steps[:n]
        return self.final_vif() / all_steps[-1].mean_vif

    def render(self) -> str:
        rows = []
        paper = list(PAPER_TABLE4) + [(None, None, None, None)] * 10
        for step, (p_name, p_r2, _p_adj, p_vif) in zip(
            self.synthetic_selection.steps, paper
        ):
            rows.append(
                (
                    step.counter,
                    step.rsquared,
                    step.rsquared_adj,
                    step.mean_vif,
                    p_name or "-",
                    p_r2 if p_r2 is not None else float("nan"),
                    p_vif if p_vif is not None else float("nan"),
                )
            )
        out = render_table(
            [
                "counter",
                "R2",
                "Adj.R2",
                "mean VIF",
                "paper counter",
                "paper R2",
                "paper VIF",
            ],
            rows,
            title="Table IV: counters selected on synthetic workloads only",
        )
        out += (
            f"\ndiffers from all-workload selection: "
            f"{self.differs_from_all_workloads()} "
            f"({self.n_common()} counters in common); "
            f"final mean VIF {self.final_vif():.2f} = "
            f"{self.vif_ratio_vs_all():.1f}x the all-workload selection's"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    n_events: int = 6,
    seed: int = DEFAULT_SEED,
) -> Table4Result:
    """Regenerate Table IV."""
    ds = dataset if dataset is not None else selection_dataset(seed=seed)
    synth = ds.filter(suite="roco2")
    return Table4Result(
        synthetic_selection=select_events(synth, n_events),
        all_workload_selection=selection_result(seed=seed, n_events=n_events)
        if dataset is None
        else select_events(ds, n_events),
    )
