"""Table II — 10-fold cross validation summary.

Per-fold training-fit :math:`R^2` / adjusted :math:`R^2` and held-out
MAPE over all workloads across the five DVFS states, reported as
min / max / mean as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_table
from repro.core.scenarios import cv_out_of_fold_predictions
from repro.experiments.data import full_dataset, selected_counters
from repro.experiments.paper_values import PAPER_TABLE2
from repro.seeding import DEFAULT_SEED

__all__ = ["Table2Result", "run"]


@dataclass(frozen=True)
class Table2Result:
    """min/max/mean of R², Adj.R² and MAPE over the folds."""

    counters: Tuple[str, ...]
    fold_r2: Tuple[float, ...]
    fold_adj_r2: Tuple[float, ...]
    fold_mape: Tuple[float, ...]

    def summary(self) -> Dict[str, Tuple[float, float, float]]:
        out = {}
        for name, vals in (
            ("R2", self.fold_r2),
            ("Adj.R2", self.fold_adj_r2),
            ("MAPE", self.fold_mape),
        ):
            arr = np.asarray(vals)
            out[name] = (float(arr.min()), float(arr.max()), float(arr.mean()))
        return out

    def r2_adj_gap(self) -> float:
        """Mean R² minus mean Adj.R² — the paper notes ≈0.0004."""
        s = self.summary()
        return s["R2"][2] - s["Adj.R2"][2]

    def render(self) -> str:
        rows = []
        for metric, (mn, mx, mean) in self.summary().items():
            p = PAPER_TABLE2[metric]
            rows.append((metric, mn, mx, mean, p[0], p[1], p[2]))
        out = render_table(
            ["metric", "min", "max", "mean", "paper min", "paper max", "paper mean"],
            rows,
            title=(
                "Table II: 10-fold cross validation "
                f"(counters: {', '.join(self.counters)})"
            ),
        )
        out += f"\nmean R2 - mean Adj.R2 = {self.r2_adj_gap():.4f} (paper: 0.0004)"
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    n_splits: int = 10,
    seed: int = DEFAULT_SEED,
) -> Table2Result:
    """Regenerate Table II."""
    ds = dataset if dataset is not None else full_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    _preds, fold_mapes, fold_fits = cv_out_of_fold_predictions(
        ds, cs, n_splits=n_splits, seed=seed
    )
    return Table2Result(
        counters=cs,
        fold_r2=tuple(f["r2"] for f in fold_fits),
        fold_adj_r2=tuple(f["adj_r2"] for f in fold_fits),
        fold_mape=fold_mapes,
    )
