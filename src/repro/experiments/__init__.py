"""Reproduction of every table and figure of the paper's evaluation.

One module per artifact; each exposes ``run(...)`` returning a result
object with a ``render()`` method that prints the regenerated rows next
to the paper's published values.  ``runner`` provides the
``repro-experiments`` command-line interface; :mod:`~repro.experiments.data`
builds and caches the measurement campaigns all experiments share.
"""

from repro.experiments.data import (
    full_dataset,
    selection_dataset,
    selected_counters,
)

__all__ = ["full_dataset", "selection_dataset", "selected_counters"]
