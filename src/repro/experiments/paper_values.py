"""The paper's published numbers, for side-by-side reporting.

Values are transcribed from Chadha et al., IPDPSW 2017.  Where a figure
only supports qualitative reading (no axis values printed in the text),
the entry records the qualitative claim instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE1_EXTENDED",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIG4_SCENARIO2_MAPE",
    "PAPER_CV_MAPE",
    "PAPER_FIG3_CLAIMS",
    "PAPER_ARM_MAPE",
]

#: Table I — counters selected on all workloads @ 2400 MHz:
#: (counter, R², Adj.R², mean VIF); VIF of the first step is "n/a".
PAPER_TABLE1: List[Tuple[str, float, float, Optional[float]]] = [
    ("PRF_DM", 0.735, 0.730, None),
    ("TOT_CYC", 0.897, 0.893, 1.062),
    ("TLB_IM", 0.933, 0.930, 1.405),
    ("FUL_CCY", 0.962, 0.959, 1.472),
    ("STL_ICY", 0.979, 0.976, 1.573),
    ("BR_MSP", 0.984, 0.982, 1.787),
]

#: Section IV-A: letting the algorithm select a 7th counter picks
#: CA_SNP, raising R² to 0.989 but the mean VIF to 26.42.
PAPER_TABLE1_EXTENDED: Tuple[str, float, float] = ("CA_SNP", 0.989, 26.42)

#: Table II — 10-fold cross validation summary: metric → (min, max, mean).
PAPER_TABLE2: Dict[str, Tuple[float, float, float]] = {
    "R2": (0.9904, 0.9913, 0.9910),
    "Adj.R2": (0.9900, 0.9910, 0.9906),
    "MAPE": (6.6114, 8.3198, 7.5452),
}

#: Table III — PCC of the selected counters with power.
PAPER_TABLE3: Dict[str, float] = {
    "PRF_DM": 0.85,
    "TOT_CYC": 0.59,
    "TLB_IM": 0.33,
    "FUL_CCY": 0.57,
    "STL_ICY": 0.38,
    "BR_MSP": -0.01,
}

#: Table IV — counters selected on the synthetic workloads only.
PAPER_TABLE4: List[Tuple[str, float, float, Optional[float]]] = [
    ("L1_LDM", 0.839, 0.836, None),
    ("REF_CYC", 0.941, 0.938, 1.084),
    ("BR_PRC", 0.973, 0.971, 1.340),
    ("L3_LDM", 0.990, 0.989, 1.341),
    ("FUL_CCY", 0.993, 0.993, 8.982),
    ("STL_ICY", 0.995, 0.994, 13.617),
]

#: Fig. 4 — "The highest error of 15.10 % occurs in scenario 2".
PAPER_FIG4_SCENARIO2_MAPE: float = 15.10
#: Scenario 3 equals the Table II CV: 7.5452 %.
PAPER_CV_MAPE: float = 7.5452

#: Fig. 3 — qualitative claims printed in the text.
PAPER_FIG3_CLAIMS: Dict[str, str] = {
    "max": "ilbdc",
    "min": "sqrt",
}

#: Section IV-B — the original ARM implementation's MAPE, for context.
PAPER_ARM_MAPE: Tuple[float, float] = (2.8, 3.8)
