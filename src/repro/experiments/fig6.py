"""Fig. 6 — PCC of all 54 PAPI counters with power.

Reproduced claims: counter families form blocks of similar correlation
(members of one family are mutually correlated), and the statistically
selected counters are *not* simply the top-correlated ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.dataset import PowerDataset
from repro.core.analysis import counter_power_pcc
from repro.core.report import render_series
from repro.experiments.data import selected_counters, selection_dataset
from repro.hardware.counters import PAPI_PRESETS
from repro.seeding import DEFAULT_SEED

__all__ = ["Fig6Result", "run"]


@dataclass(frozen=True)
class Fig6Result:
    """PCC of every counter, canonical order, plus the selected set."""

    pcc: Dict[str, float]
    selected: Tuple[str, ...]

    def family_spread(self) -> Dict[str, float]:
        """Std-dev of PCC within each counter group — small values mean
        family members carry near-identical information (the Fig. 6
        block structure)."""
        groups: Dict[str, List[float]] = {}
        for spec in PAPI_PRESETS:
            groups.setdefault(spec.group, []).append(self.pcc[spec.name])
        return {g: float(np.std(v)) for g, v in groups.items() if len(v) > 1}

    def selected_rank_by_pcc(self) -> Dict[str, int]:
        """|PCC| rank (1 = strongest) of each selected counter."""
        ranked = sorted(self.pcc.items(), key=lambda kv: -abs(kv[1]))
        ranks = {name: i + 1 for i, (name, _) in enumerate(ranked)}
        return {c: ranks[c] for c in self.selected}

    def render(self) -> str:
        out = render_series(
            self.pcc,
            title="Fig. 6: PCC of all PAPI counters with power",
        )
        ranks = self.selected_rank_by_pcc()
        out += "\nselected counters' |PCC| ranks: " + ", ".join(
            f"{c}#{r}" for c, r in ranks.items()
        )
        out += (
            "\n(the selection is not the top-|PCC| list — later counters "
            "carry unique rather than redundant information)"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
) -> Fig6Result:
    """Regenerate the Fig. 6 series."""
    ds = dataset if dataset is not None else selection_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    sig = counter_power_pcc(ds)
    ordered = {name: sig.pcc[name] for name in ds.counter_names}
    return Fig6Result(pcc=ordered, selected=cs)
