"""Table III — PCC of the selected counters with power (Section V).

Reproduced claims: the first selected counter correlates strongly with
power; the later ones individually correlate weakly (they contribute
*unique* information), including one with near-zero correlation that is
selected regardless (BR_MSP in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.analysis import counter_power_pcc
from repro.core.report import render_table
from repro.experiments.data import selected_counters, selection_dataset
from repro.experiments.paper_values import PAPER_TABLE3
from repro.seeding import DEFAULT_SEED

__all__ = ["Table3Result", "run"]


@dataclass(frozen=True)
class Table3Result:
    """PCC per selected counter."""

    pcc: Dict[str, float]

    def first_counter_pcc(self) -> float:
        return next(iter(self.pcc.values()))

    def weak_counters(self, threshold: float = 0.6) -> List[str]:
        """Selected counters with weak individual correlation."""
        items = list(self.pcc.items())
        return [name for name, v in items[1:] if abs(v) < threshold]

    def render(self) -> str:
        paper_items = list(PAPER_TABLE3.items())
        rows = []
        for i, (name, value) in enumerate(self.pcc.items()):
            p_name, p_v = paper_items[i] if i < len(paper_items) else ("-", float("nan"))
            rows.append((name, value, p_name, p_v))
        out = render_table(
            ["counter", "PCC", "paper counter", "paper PCC"],
            rows,
            title="Table III: PCC of selected counters with power",
        )
        out += (
            f"\nfirst counter PCC: {self.first_counter_pcc():.2f} "
            f"(paper: {PAPER_TABLE3['PRF_DM']}), "
            f"weak later counters: {', '.join(self.weak_counters()) or 'none'}"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
) -> Table3Result:
    """Regenerate Table III."""
    ds = dataset if dataset is not None else selection_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    sig = counter_power_pcc(ds)
    return Table3Result(pcc={c: sig.pcc[c] for c in cs})
