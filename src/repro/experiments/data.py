"""Shared measurement campaigns for the experiment suite.

The full campaign — all roco2 + SPEC workloads at the five DVFS states,
with full PMU multiplexing — is the expensive step every experiment
depends on.  It is built once per process and cached on disk
(``.repro-cache/`` under the repository or current directory), keyed by
the root seed and a data-version stamp that is bumped whenever the
simulated physics change, so stale caches can never leak across code
revisions.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.acquisition.campaign import run_campaign
from repro.acquisition.dataset import PowerDataset
from repro.core.selection import SelectionResult, select_events
from repro.hardware.dvfs import PAPER_FREQUENCIES_MHZ, SELECTION_FREQUENCY_MHZ
from repro.hardware.platform import Platform
from repro.seeding import DEFAULT_SEED

__all__ = [
    "DATA_VERSION",
    "full_dataset",
    "selection_dataset",
    "selected_counters",
    "selection_result",
    "clear_memory_cache",
]

#: Bump when the simulated platform or workload definitions change in a
#: way that alters campaign output.  Lint rule RL005 enforces the bump
#: whenever a diff touches the physics modules (hardware/, workloads/).
DATA_VERSION = 6

_MEMORY_CACHE: Dict[Tuple[int, Tuple[int, ...]], PowerDataset] = {}
_SELECTION_CACHE: Dict[Tuple[int, int, int], SelectionResult] = {}


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = Path(env)
    else:
        path = Path.cwd() / ".repro-cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_path(seed: int, frequencies: Tuple[int, ...]) -> Path:
    key = hashlib.blake2b(
        f"v{DATA_VERSION}|{seed}|{frequencies}".encode(), digest_size=8
    ).hexdigest()
    return _cache_dir() / f"campaign_{key}.npz"


def clear_memory_cache() -> None:
    """Drop the in-process caches (tests use this for isolation)."""
    _MEMORY_CACHE.clear()
    _SELECTION_CACHE.clear()


def full_dataset(
    *,
    seed: int = DEFAULT_SEED,
    frequencies_mhz: Tuple[int, ...] = PAPER_FREQUENCIES_MHZ,
    use_disk_cache: bool = True,
) -> PowerDataset:
    """The complete paper campaign: all workloads × all DVFS states."""
    key = (seed, tuple(frequencies_mhz))
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    path = _cache_path(seed, tuple(frequencies_mhz))
    ds: Optional[PowerDataset] = None
    if use_disk_cache and path.exists():
        try:
            ds = PowerDataset.load_npz(path)
        except (zipfile.BadZipFile, KeyError, OSError, EOFError, ValueError):
            # Truncated / partially written / otherwise corrupt cache
            # (e.g. a crash before save_npz went atomic).  Drop it and
            # fall through to regeneration — a stale artifact must
            # never be fatal, only slow.
            try:
                path.unlink()
            except OSError:
                pass
    if ds is None:
        from repro.workloads.registry import all_workloads

        platform = Platform(seed=seed)
        ds = run_campaign(platform, all_workloads(), frequencies_mhz)
        if use_disk_cache:
            ds.save_npz(path)
    _MEMORY_CACHE[key] = ds
    return ds


def selection_dataset(
    *,
    seed: int = DEFAULT_SEED,
    frequency_mhz: int = SELECTION_FREQUENCY_MHZ,
) -> PowerDataset:
    """All workloads at the fixed selection frequency (Section IV-A)."""
    return full_dataset(seed=seed).filter(frequency_mhz=frequency_mhz)


def selection_result(
    *,
    seed: int = DEFAULT_SEED,
    n_events: int = 6,
) -> SelectionResult:
    """Algorithm 1 run on the selection dataset (memoized)."""
    key = (seed, SELECTION_FREQUENCY_MHZ, n_events)
    if key not in _SELECTION_CACHE:
        _SELECTION_CACHE[key] = select_events(
            selection_dataset(seed=seed), n_events
        )
    return _SELECTION_CACHE[key]


def selected_counters(*, seed: int = DEFAULT_SEED) -> Tuple[str, ...]:
    """The six counters used throughout the evaluation."""
    return selection_result(seed=seed, n_events=6).selected
