"""``serve`` — fleet chaos soak: resilient estimation at fleet scale.

Not a paper figure: an evaluation of the serving layer's resilience
contract.  The paper-reference model (fit on the cached campaign) is
deployed as a :class:`~repro.serve.FleetService` over a simulated
fleet; at each CI fault seed a quarter of the nodes emit corrupted
telemetry (NaN/negative deltas, dead voltage rails, backwards
timestamps, duplicates, bursts) for the whole session.  The demo
verifies the blast radius: every *healthy* node's final estimator
state must be bit-identical to a serial :class:`OnlineEstimator` fed
the same stream, while the degradation the faults caused is graded by
the AU013 audit rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.audit import audit_fleet
from repro.core import PowerModel
from repro.core.online import OnlineEstimator, PowerEnvelope
from repro.core.report import render_table
from repro.experiments.data import full_dataset, selected_counters
from repro.faults import IngestFaultInjector, IngestFaultPlan
from repro.seeding import DEFAULT_SEED
from repro.serve import FleetService, NodeSample

__all__ = ["ServeDemoResult", "run"]

#: Fault seeds matching the CI chaos matrix.
FAULT_SEEDS = (0, 1, 20170529)

N_NODES = 48
N_TICKS = 40
FAULTY_FRACTION = 0.25


@dataclass(frozen=True)
class SeedOutcome:
    fault_seed: int
    faulty_nodes: int
    dropped_malformed: int
    stateless_served: int
    quarantined: int
    healthy: int
    verdict: str
    healthy_bit_identical: bool


@dataclass(frozen=True)
class ServeDemoResult:
    """Per-fault-seed outcomes of the fleet chaos soak."""

    outcomes: Tuple[SeedOutcome, ...]

    @property
    def all_bit_identical(self) -> bool:
        return all(o.healthy_bit_identical for o in self.outcomes)

    def render(self) -> str:
        rows = [
            (
                str(o.fault_seed),
                f"{o.faulty_nodes}/{N_NODES}",
                str(o.dropped_malformed),
                str(o.stateless_served),
                str(o.quarantined),
                str(o.healthy),
                o.verdict,
                "yes" if o.healthy_bit_identical else "NO",
            )
            for o in self.outcomes
        ]
        table = render_table(
            (
                "fault seed",
                "faulty",
                "dropped",
                "stateless",
                "quarantined",
                "healthy",
                "audit",
                "bit-identical",
            ),
            rows,
            title=(
                f"serve: {N_NODES}-node fleet, {N_TICKS} ticks of chaos "
                f"ingestion"
            ),
        )
        verdict = (
            "every healthy node bit-identical to its serial estimator"
            if self.all_bit_identical
            else "MISMATCH: a healthy node diverged from the serial path"
        )
        return f"{table}\n{verdict}\n"


def _node_stream(node_ids, tick, rng, counters):
    return [
        NodeSample(
            node_id=nid,
            counter_deltas={
                c: float(rng.uniform(0.0, 2e7)) for c in counters
            },
            interval_s=0.5,
            voltage_v=float(rng.uniform(0.9, 1.2)),
            frequency_mhz=float(rng.uniform(1200.0, 2600.0)),
            time_s=0.5 * (tick + 1),
        )
        for nid in node_ids
    ]


def run(seed: int = DEFAULT_SEED) -> ServeDemoResult:
    dataset = full_dataset(seed=seed)
    counters = selected_counters(seed=seed)
    model = PowerModel(counters).fit(dataset)
    envelope = PowerEnvelope.from_dataset(dataset)
    node_ids = [f"node-{i:03d}" for i in range(N_NODES)]
    estimator_kw = dict(
        smoothing=0.5,
        envelope=envelope,
        breaker_threshold=3,
        recovery_threshold=2,
        drift_window=20,
        drift_tolerance=0.5,
    )

    outcomes: List[SeedOutcome] = []
    for fault_seed in FAULT_SEEDS:
        plan = IngestFaultPlan.chaos(
            0.6, faulty_node_fraction=FAULTY_FRACTION, fault_seed=fault_seed
        )
        injector = IngestFaultInjector(plan, seed)
        faulty = {n for n in node_ids if injector.node_faulty(n)}
        service = FleetService(
            model,
            envelope=envelope,
            n_shards=8,
            queue_capacity=8 * N_NODES,
            seed=seed,
        )
        reference = {
            n: OnlineEstimator(model, **estimator_kw)
            for n in node_ids
            if n not in faulty
        }
        rng = np.random.default_rng(seed)
        for tick in range(N_TICKS):
            corrupted = injector.corrupt(
                _node_stream(node_ids, tick, rng, counters), tick
            )
            for sample in corrupted:
                if (
                    isinstance(sample, NodeSample)
                    and sample.node_id in reference
                ):
                    reference[sample.node_id].step(
                        sample.counter_deltas,
                        interval_s=sample.interval_s,
                        voltage_v=sample.voltage_v,
                        frequency_mhz=sample.frequency_mhz,
                        time_s=sample.time_s,
                    )
            service.submit(corrupted)
            service.process()

        identical = all(
            service.fleet.drift_report(n) == reference[n].drift_report()
            for n in reference
        )
        report = service.report()
        outcomes.append(
            SeedOutcome(
                fault_seed=fault_seed,
                faulty_nodes=len(faulty),
                dropped_malformed=report.dropped_malformed,
                stateless_served=report.stateless_served,
                quarantined=report.quarantined_nodes,
                healthy=report.healthy_nodes,
                verdict=audit_fleet(report).verdict,
                healthy_bit_identical=identical,
            )
        )
    return ServeDemoResult(outcomes=tuple(outcomes))
