"""Fig. 3 — per-workload MAPE across all DVFS states.

Out-of-fold CV predictions (the Table II model) grouped by workload.
The paper's claims: the maximum error occurs for the SPEC benchmark
ilbdc, the minimum for the roco2 kernel sqrt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_series
from repro.core.scenarios import scenario_cv_all
from repro.experiments.data import full_dataset, selected_counters
from repro.experiments.paper_values import PAPER_FIG3_CLAIMS
from repro.seeding import DEFAULT_SEED

__all__ = ["Fig3Result", "run"]


@dataclass(frozen=True)
class Fig3Result:
    """Per-workload MAPE series."""

    per_workload_mape: Dict[str, float]
    suites: Dict[str, str]

    def worst(self) -> Tuple[str, float]:
        return max(self.per_workload_mape.items(), key=lambda kv: kv[1])

    def best(self) -> Tuple[str, float]:
        return min(self.per_workload_mape.items(), key=lambda kv: kv[1])

    def worst_suite(self) -> str:
        return self.suites[self.worst()[0]]

    def render(self) -> str:
        out = render_series(
            self.per_workload_mape,
            title="Fig. 3: per-workload MAPE across all DVFS states",
            unit="%",
        )
        w, wv = self.worst()
        b, bv = self.best()
        out += (
            f"\nworst: {w} ({wv:.2f} %)   best: {b} ({bv:.2f} %)\n"
            f"paper: worst={PAPER_FIG3_CLAIMS['max']}, "
            f"best={PAPER_FIG3_CLAIMS['min']}"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    counters: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
) -> Fig3Result:
    """Regenerate the Fig. 3 series."""
    ds = dataset if dataset is not None else full_dataset(seed=seed)
    cs = tuple(counters) if counters is not None else selected_counters(seed=seed)
    scenario = scenario_cv_all(ds, cs, seed=seed)
    suites = {}
    for w, s in zip(ds.workloads, ds.suites):
        suites.setdefault(w, s)
    return Fig3Result(
        per_workload_mape=scenario.per_workload_mape(), suites=suites
    )
