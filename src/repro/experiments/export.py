"""Machine-readable export of the regenerated evaluation.

``repro-experiments --export-dir out/`` writes every table and figure
as a JSON document (plus CSV for the tabular artifacts), so the
reproduction's numbers can be plotted or diffed with external tooling
without re-running the pipeline.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, List, Union

from repro.experiments import fig2, fig3, fig4, fig5, fig6, table1, table2, table3, table4
from repro.io.atomic import atomic_open, atomic_write_text
from repro.seeding import DEFAULT_SEED

__all__ = ["export_all", "EXPORTERS"]


def _clean(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _write_json(path: Path, payload) -> None:
    atomic_write_text(path, json.dumps(payload, indent=2, default=_clean) + "\n")


def _write_csv(path: Path, headers: List[str], rows) -> None:
    with atomic_open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if _clean(v) is None else v for v in row])


def _export_table1(out: Path, seed: int) -> None:
    result = table1.run(seed=seed)
    rows = [
        (s.counter, s.rsquared, s.rsquared_adj, s.mean_vif)
        for s in result.extended.steps
    ]
    _write_csv(out / "table1.csv", ["counter", "r2", "adj_r2", "mean_vif"], rows)
    _write_json(
        out / "table1.json",
        {
            "selected": list(result.selection.selected),
            "first_unstable_step": result.extended.first_unstable_step(),
            "steps": [
                {
                    "counter": s.counter,
                    "r2": s.rsquared,
                    "adj_r2": s.rsquared_adj,
                    "mean_vif": None if math.isnan(s.mean_vif) else s.mean_vif,
                }
                for s in result.extended.steps
            ],
        },
    )


def _export_table2(out: Path, seed: int) -> None:
    result = table2.run(seed=seed)
    _write_json(
        out / "table2.json",
        {
            "counters": list(result.counters),
            "summary": {
                k: {"min": v[0], "max": v[1], "mean": v[2]}
                for k, v in result.summary().items()
            },
            "fold_mape": list(result.fold_mape),
            "fold_r2": list(result.fold_r2),
        },
    )


def _export_fig2(out: Path, seed: int) -> None:
    result = fig2.run(seed=seed)
    _write_csv(
        out / "fig2.csv",
        ["n_counters", "r2", "adj_r2"],
        [
            (i + 1, r, a)
            for i, (r, a) in enumerate(
                zip(result.r2_series, result.adj_r2_series)
            )
        ],
    )


def _export_fig3(out: Path, seed: int) -> None:
    result = fig3.run(seed=seed)
    _write_csv(
        out / "fig3.csv",
        ["workload", "suite", "mape_percent"],
        [
            (w, result.suites[w], m)
            for w, m in result.per_workload_mape.items()
        ],
    )


def _export_fig4(out: Path, seed: int) -> None:
    result = fig4.run(seed=seed)
    _write_json(
        out / "fig4.json",
        {
            "mape_percent": result.mapes,
            "scenario2_over_cv_ratio": result.scenario2_over_cv_ratio(),
        },
    )


def _export_fig5(out: Path, seed: int) -> None:
    result = fig5.run(seed=seed)
    for name, scatter in (("fig5a", result.scatter_a), ("fig5b", result.scatter_b)):
        _write_csv(
            out / f"{name}.csv",
            ["workload", "suite", "frequency_mhz", "threads", "actual_w", "predicted_w"],
            scatter,
        )


def _export_table3(out: Path, seed: int) -> None:
    result = table3.run(seed=seed)
    _write_csv(out / "table3.csv", ["counter", "pcc"], list(result.pcc.items()))


def _export_fig6(out: Path, seed: int) -> None:
    result = fig6.run(seed=seed)
    _write_csv(out / "fig6.csv", ["counter", "pcc"], list(result.pcc.items()))


def _export_table4(out: Path, seed: int) -> None:
    result = table4.run(seed=seed)
    _write_csv(
        out / "table4.csv",
        ["counter", "r2", "adj_r2", "mean_vif"],
        [
            (s.counter, s.rsquared, s.rsquared_adj, s.mean_vif)
            for s in result.synthetic_selection.steps
        ],
    )


EXPORTERS = {
    "table1": _export_table1,
    "table2": _export_table2,
    "fig2": _export_fig2,
    "fig3": _export_fig3,
    "fig4": _export_fig4,
    "fig5": _export_fig5,
    "table3": _export_table3,
    "fig6": _export_fig6,
    "table4": _export_table4,
}


def export_all(
    directory: Union[str, Path], *, seed: int = DEFAULT_SEED
) -> List[Path]:
    """Export every artifact; returns the files written."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    before = set(out.iterdir())
    for exporter in EXPORTERS.values():
        exporter(out, seed)
    return sorted(set(out.iterdir()) - before | set(out.iterdir()))
