"""Fig. 2 — R² and Adj.R² versus number of selected counters.

The same greedy trajectory as Table I, read as two monotone series.
The paper's observation: Adj.R² tracks R² closely at every step, so the
added predictors carry real information rather than inflating R².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_table
from repro.core.selection import SelectionResult, select_events
from repro.experiments.data import selection_dataset
from repro.experiments.paper_values import PAPER_TABLE1
from repro.seeding import DEFAULT_SEED

__all__ = ["Fig2Result", "run"]


@dataclass(frozen=True)
class Fig2Result:
    """The two series of Fig. 2."""

    selection: SelectionResult

    @property
    def r2_series(self) -> List[float]:
        return [s.rsquared for s in self.selection.steps]

    @property
    def adj_r2_series(self) -> List[float]:
        return [s.rsquared_adj for s in self.selection.steps]

    def max_r2_adj_gap(self) -> float:
        """Largest gap between R² and Adj.R² along the trajectory."""
        return max(
            r - a for r, a in zip(self.r2_series, self.adj_r2_series)
        )

    def is_monotone(self) -> bool:
        r = self.r2_series
        return all(b >= a - 1e-12 for a, b in zip(r, r[1:]))

    def render(self) -> str:
        rows = []
        for i, step in enumerate(self.selection.steps):
            paper_r2 = PAPER_TABLE1[i][1] if i < len(PAPER_TABLE1) else float("nan")
            paper_adj = PAPER_TABLE1[i][2] if i < len(PAPER_TABLE1) else float("nan")
            rows.append(
                (
                    f"{i + 1} ({step.counter})",
                    step.rsquared,
                    step.rsquared_adj,
                    paper_r2,
                    paper_adj,
                )
            )
        out = render_table(
            ["#counters", "R2", "Adj.R2", "paper R2", "paper Adj.R2"],
            rows,
            title="Fig. 2: R2 / Adj.R2 vs number of selected counters",
        )
        out += (
            f"\nmonotone R2: {self.is_monotone()}, "
            f"max R2-Adj.R2 gap: {self.max_r2_adj_gap():.4f}"
        )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    n_events: int = 6,
    seed: int = DEFAULT_SEED,
) -> Fig2Result:
    """Regenerate the Fig. 2 series."""
    ds = dataset if dataset is not None else selection_dataset(seed=seed)
    return Fig2Result(selection=select_events(ds, n_events))
