"""Table I — performance counters selected on all workloads.

Also reproduces the Section IV-A extension (X1): letting Algorithm 1
select further counters eventually adds one whose extra information is
nearly a linear combination of the already-selected events, raising
:math:`R^2` marginally while the mean VIF crosses the
multicollinearity threshold (the paper's CA_SNP anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.acquisition.dataset import PowerDataset
from repro.core.report import render_table
from repro.core.selection import SelectionResult, SelectionStep, select_events
from repro.experiments.data import selection_dataset
from repro.experiments.paper_values import PAPER_TABLE1, PAPER_TABLE1_EXTENDED
from repro.seeding import DEFAULT_SEED
from repro.stats.vif import VIF_PROBLEM_THRESHOLD

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    """Regenerated Table I plus the extended-selection anomaly."""

    selection: SelectionResult
    extended: SelectionResult
    """Selection continued past six counters (for the VIF blow-up)."""

    @property
    def steps(self) -> Tuple[SelectionStep, ...]:
        return self.selection.steps

    def unstable_step(self) -> Optional[SelectionStep]:
        """First extended step whose mean VIF exceeds the threshold."""
        idx = self.extended.first_unstable_step()
        if idx is None:
            return None
        return self.extended.steps[idx - 1]

    def render(self) -> str:
        rows = []
        paper = list(PAPER_TABLE1) + [(None, None, None, None)] * 10
        for step, (p_name, p_r2, p_adj, p_vif) in zip(self.steps, paper):
            rows.append(
                (
                    step.counter,
                    step.rsquared,
                    step.rsquared_adj,
                    step.mean_vif,
                    p_name or "-",
                    p_r2 if p_r2 is not None else float("nan"),
                    p_vif if p_vif is not None else float("nan"),
                )
            )
        out = render_table(
            [
                "counter",
                "R2",
                "Adj.R2",
                "mean VIF",
                "paper counter",
                "paper R2",
                "paper VIF",
            ],
            rows,
            title="Table I: selected performance counters (all workloads)",
        )
        unstable = self.unstable_step()
        p_name, p_r2, p_vif = PAPER_TABLE1_EXTENDED
        if unstable is not None:
            pos = self.extended.first_unstable_step()
            out += (
                f"\nExtended selection: step {pos} adds {unstable.counter} "
                f"(R2={unstable.rsquared:.3f}) but mean VIF rises to "
                f"{unstable.mean_vif:.2f} (> {VIF_PROBLEM_THRESHOLD:.0f}).\n"
                f"Paper: 7th counter {p_name} raises R2 to {p_r2} with "
                f"mean VIF {p_vif}."
            )
        else:
            out += (
                "\nExtended selection stayed below the VIF threshold "
                f"within {len(self.extended.steps)} steps "
                f"(paper: 7th counter {p_name} blew up to VIF {p_vif})."
            )
        return out


def run(
    dataset: Optional[PowerDataset] = None,
    *,
    n_events: int = 6,
    extended_events: int = 10,
    seed: int = DEFAULT_SEED,
) -> Table1Result:
    """Regenerate Table I (and the extended-selection anomaly)."""
    ds = dataset if dataset is not None else selection_dataset(seed=seed)
    extended = select_events(ds, extended_events)
    truncated = SelectionResult(
        steps=extended.steps[:n_events], criterion=extended.criterion
    )
    return Table1Result(selection=truncated, extended=extended)
