"""``sched`` — cluster chaos demo: bit-identity under node death.

Not a paper figure: an evaluation of the claim that makes clustered
acquisition a *reproduction* tool rather than just a scheduler.  The
same small campaign is run serially and through the cluster scheduler
on 16 heterogeneous nodes at several fault seeds (each killing a
large fraction of the cluster mid-campaign and slowing stragglers),
and the merged datasets are compared bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.acquisition import CampaignPlan, ResilientCampaign, RetryPolicy
from repro.cluster.nodes import build_cluster
from repro.core.report import render_table
from repro.faults.plan import FaultPlan
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS, Platform
from repro.sched.campaign import ScheduledCampaign
from repro.seeding import DEFAULT_SEED
from repro.workloads import get_workload

__all__ = ["SchedDemoResult", "run"]

#: Fault seeds matching the CI chaos matrix.
FAULT_SEEDS = (0, 1, 20170529)


@dataclass(frozen=True)
class SeedOutcome:
    fault_seed: int
    node_deaths: int
    stragglers: int
    reassignments: int
    quarantined: int
    completed: int
    total: int
    bit_identical: bool


@dataclass(frozen=True)
class SchedDemoResult:
    """Per-fault-seed outcomes of the cluster chaos campaign."""

    outcomes: Tuple[SeedOutcome, ...]

    @property
    def all_bit_identical(self) -> bool:
        return all(o.bit_identical for o in self.outcomes)

    def render(self) -> str:
        rows = [
            (
                str(o.fault_seed),
                f"{o.node_deaths}",
                f"{o.stragglers}",
                f"{o.reassignments}",
                f"{o.quarantined}",
                f"{o.completed}/{o.total}",
                "yes" if o.bit_identical else "NO",
            )
            for o in self.outcomes
        ]
        table = render_table(
            (
                "fault seed",
                "deaths",
                "stragglers",
                "reassigned",
                "quarantined",
                "cells",
                "bit-identical",
            ),
            rows,
            title="sched: 16-node cluster chaos vs serial campaign",
        )
        verdict = (
            "every dataset bit-identical to the serial campaign"
            if self.all_bit_identical
            else "MISMATCH: scheduled dataset differs from serial"
        )
        return f"{table}\n{verdict}\n"


def _plan() -> CampaignPlan:
    prog = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
    return CampaignPlan(
        workloads=(get_workload("compute"), get_workload("memory_read")),
        frequencies_mhz=(1200, 2400),
        events=tuple(FIXED_COUNTERS) + prog,
        thread_counts_override=(4, 8),
    )


def _datasets_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return (
        a.counter_names == b.counter_names
        and a.workloads == b.workloads
        and a.phase_names == b.phase_names
        and np.array_equal(a.counters, b.counters)
        and np.array_equal(a.power_w, b.power_w)
        and np.array_equal(a.voltage_v, b.voltage_v)
    )


def run(seed: int = DEFAULT_SEED) -> SchedDemoResult:
    platform = Platform(seed=seed)
    plan = _plan()
    retry = RetryPolicy(max_attempts=4)
    serial = ResilientCampaign(platform, plan, retry=retry).run()
    nodes = build_cluster(16, seed=seed)

    outcomes: List[SeedOutcome] = []
    for fault_seed in FAULT_SEEDS:
        faults = FaultPlan(
            node_death_rate=0.5, straggler_rate=0.3, fault_seed=fault_seed
        )
        result = ScheduledCampaign(
            platform, plan, nodes, faults=faults, retry=retry
        ).run()
        sched = result.report.scheduling
        outcomes.append(
            SeedOutcome(
                fault_seed=fault_seed,
                node_deaths=sum(
                    1 for n in sched.nodes if n.died_at_s is not None
                ),
                stragglers=sum(
                    1 for n in sched.nodes if n.straggler_factor is not None
                ),
                reassignments=sched.reassignments,
                quarantined=len(sched.quarantined),
                completed=result.report.completed_cells,
                total=result.report.total_cells,
                bit_identical=(
                    not sched.quarantined
                    and _datasets_equal(result.dataset, serial.dataset)
                ),
            )
        )
    return SchedDemoResult(outcomes=tuple(outcomes))
