"""Finding reporters: human-readable text and machine-readable JSON.

Thin wrappers over the shared :mod:`repro.reporting` renderers — the
report shapes (summary line, JSON payload, exit codes) are common to
``replint`` and ``repraudit`` and live there.
"""

from __future__ import annotations

from typing import Sequence

from repro.lint.framework import Finding
from repro.reporting import render_json_report, render_text_report

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding], *, files_checked: int) -> str:
    """flake8-style ``path:line:col: RLxxx message`` lines + summary."""
    return render_text_report(
        "replint", findings, checked=files_checked, noun="files"
    )


def render_json(findings: Sequence[Finding], *, files_checked: int) -> str:
    return render_json_report(
        findings, checked=files_checked, checked_key="files_checked"
    )
