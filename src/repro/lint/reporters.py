"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.lint.framework import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding], *, files_checked: int) -> str:
    """flake8-style ``path:line:col: RLxxx message`` lines + summary."""
    lines: List[str] = [f.format() for f in findings]
    if findings:
        by_rule = Counter(f.rule_id for f in findings)
        breakdown = ", ".join(
            f"{rule} ×{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"replint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} in {files_checked} files "
            f"({breakdown})"
        )
    else:
        lines.append(f"replint: clean ({files_checked} files)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, files_checked: int) -> str:
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
