"""Core abstractions of the ``replint`` static-analysis pass.

The pass exists because the paper's headline numbers (R² > 0.99,
MAPE ≈ 7.54 %) rest on invariants that ordinary tests cannot see
being violated: event rates must be normalized *per cycle* (Eq. 1),
every random draw must descend from the root seed, and on-disk
campaign caches must be versioned and written atomically.  Each
invariant is encoded as a :class:`Rule`; rules emit :class:`Finding`
objects which the engine filters through inline suppressions and
per-path ignores before reporting.

Two rule flavours exist:

* :class:`FileRule` — an AST-level check, run once per Python file;
* :class:`RepoRule` — a repository-state check (e.g. "the working
  diff touches physics modules, therefore ``DATA_VERSION`` must be
  bumped"), run once per invocation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.reporting import BaseFinding

__all__ = [
    "Finding",
    "Rule",
    "FileRule",
    "RepoRule",
    "FileContext",
    "ImportAliases",
    "dotted_name",
    "parse_suppressions",
    "is_suppressed",
    "PARSE_ERROR_ID",
]

#: Pseudo rule id attached to findings for files that fail to parse.
PARSE_ERROR_ID = "RL000"

# --------------------------------------------------------------------------
# findings


@dataclass(frozen=True, order=True)
class Finding(BaseFinding):
    """One diagnostic: a rule violated at a source location.

    Shares the :class:`repro.reporting.BaseFinding` contract with the
    audit layer's findings; every lint finding is gate-failing, so the
    inherited ``major`` severity stands.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


# --------------------------------------------------------------------------
# rule base classes


class Rule:
    """Base class: subclasses set ``id``, ``name`` and ``description``."""

    id: str = ""
    name: str = ""
    description: str = ""


class FileRule(Rule):
    """A rule evaluated against one parsed Python file."""

    def check(self, ctx: "FileContext") -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class RepoRule(Rule):
    """A rule evaluated once against the repository state."""

    def check_repo(self, root: Path, config) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------
# per-file context


@dataclass
class FileContext:
    """Everything a :class:`FileRule` needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    config: "object"
    aliases: "ImportAliases" = field(init=False)

    def __post_init__(self) -> None:
        self.aliases = ImportAliases.collect(self.tree)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule.id,
            message=message,
        )


# --------------------------------------------------------------------------
# import-alias resolution

_FULL_MODULE_PREFIXES = ("numpy",)


class ImportAliases:
    """Maps local names to the dotted module path they were imported as.

    Lets rules recognise ``np.load`` / ``numpy.load`` /
    ``from numpy import load as npload`` uniformly: all resolve to the
    canonical dotted name ``numpy.load``.
    """

    def __init__(self, mapping: Dict[str, str]) -> None:
        self.mapping = mapping

    @classmethod
    def collect(cls, tree: ast.Module) -> "ImportAliases":
        mapping: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mapping[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hide numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mapping[local] = f"{node.module}.{alias.name}"
        return cls(mapping)

    def resolve(self, name: str) -> str:
        return self.mapping.get(name, name)


def dotted_name(node: ast.AST, aliases: Optional[ImportAliases] = None) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` → ``"numpy.random.default_rng"`` when
    ``np`` aliases ``numpy``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.resolve(node.id) if aliases is not None else node.id
    parts.append(head)
    return ".".join(reversed(parts))


# --------------------------------------------------------------------------
# inline suppressions

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number → suppressed rule ids (``None`` = all rules).

    A trailing ``# replint: ignore`` silences every rule on that line;
    ``# replint: ignore[RL004]`` (comma-separated ids allowed) silences
    only the listed rules.  Anything after ``--`` in the comment is a
    free-form justification and is not parsed.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        ids = m.group("ids")
        if ids is None:
            out[lineno] = None
        else:
            out[lineno] = {part.strip().upper() for part in ids.split(",") if part.strip()}
    return out


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    if finding.line not in suppressions:
        return False
    ids = suppressions[finding.line]
    return ids is None or finding.rule_id in ids
