"""File collection and rule execution for ``replint``.

The engine walks the requested paths, parses each Python file once,
runs every enabled :class:`~repro.lint.framework.FileRule` over the
AST, runs each :class:`~repro.lint.framework.RepoRule` once per
invocation, then filters the merged findings through inline
suppressions and the configured per-path ignores.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.framework import (
    PARSE_ERROR_ID,
    FileContext,
    FileRule,
    Finding,
    RepoRule,
    Rule,
    is_suppressed,
    parse_suppressions,
)

__all__ = ["iter_python_files", "lint_source", "lint_paths"]

_SKIP_DIRS = {
    "__pycache__", ".git", ".repro-cache", ".pytest_cache",
    ".hypothesis", ".benchmarks", "build", "dist",
}


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    out: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for sub in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in sub.parts):
                continue
            out.append(sub)
    return sorted(set(out))


def lint_source(
    source: str,
    path: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob (the unit-test entry point).

    Applies inline suppressions and the config's per-path ignores, so
    fixture tests exercise exactly what the CLI would report.
    """
    config = config or LintConfig()
    if rules is None:
        from repro.lint.rules import all_rules

        rules = all_rules()
    posix = path.as_posix()
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree, config=config)
    suppressions = parse_suppressions(source)
    ignored = config.ignored_for_path(posix)
    findings: List[Finding] = []
    for rule in rules:
        if not isinstance(rule, FileRule):
            continue
        if not config.rule_enabled(rule.id) or rule.id in ignored:
            continue
        for finding in rule.check(ctx):
            if not is_suppressed(finding, suppressions):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    *,
    repo_root: Optional[Path] = None,
    run_repo_rules: bool = True,
) -> List[Finding]:
    """Lint files/directories plus the repository-state rules."""
    config = config or LintConfig()
    if rules is None:
        from repro.lint.rules import all_rules

        rules = all_rules()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=file_path.as_posix(),
                    line=1,
                    col=1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"file is unreadable: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, file_path, config, rules))
    if run_repo_rules:
        root = repo_root or Path.cwd()
        for rule in rules:
            if not isinstance(rule, RepoRule):
                continue
            if not config.rule_enabled(rule.id):
                continue
            findings.extend(rule.check_repo(root, config))
    return sorted(findings)
