"""``replint`` — statistical-rigor static analysis for this reproduction.

The paper's claims depend on invariants no unit test observes directly:
per-cycle event normalization (Eq. 1), root-seed-derived randomness,
versioned campaign caches and crash-safe artifact writes.  This package
encodes each as a lint rule; see :mod:`repro.lint.rules` for the rule
set and ``python -m repro.lint --list-rules`` for a summary.
"""

from repro.lint.config import LintConfig, find_pyproject
from repro.lint.engine import iter_python_files, lint_paths, lint_source
from repro.lint.framework import (
    FileContext,
    FileRule,
    Finding,
    RepoRule,
    Rule,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules

__all__ = [
    "LintConfig",
    "find_pyproject",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "FileContext",
    "FileRule",
    "Finding",
    "RepoRule",
    "Rule",
    "render_json",
    "render_text",
    "all_rules",
]
