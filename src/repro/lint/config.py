"""``[tool.replint]`` configuration loaded from ``pyproject.toml``.

All knobs have defaults tuned for this repository, so the linter works
out of the box on any checkout; the pyproject section only needs to
list deviations (disabled rules, per-path ignores).

Example::

    [tool.replint]
    disable = ["RL004"]

    [tool.replint.per-path-ignores]
    "tests/*" = ["RL004", "RL006"]
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # degrade to defaults; warn in loader

__all__ = ["LintConfig", "find_pyproject"]

#: Unit suffixes a physical-quantity name may carry (RL003).
DEFAULT_UNIT_SUFFIXES: Tuple[str, ...] = (
    "w", "mw", "kw",               # power
    "v", "mv",                     # voltage
    "j", "kj", "pj",               # energy
    "hz", "khz", "mhz", "ghz",     # frequency
    "c", "k",                      # temperature
    "s", "ms", "us", "ns",         # time
    "per_cycle", "per_second", "per_s",  # rates (Eq. 1)
)

#: Bare quantity stems that must not appear unsuffixed (RL003).
DEFAULT_QUANTITY_STEMS: Tuple[str, ...] = (
    "power",
    "voltage",
    "energy",
    "frequency",
    "freq",
    "temperature",
)

#: Name suffixes treated as float-typed for RL004.
DEFAULT_FLOAT_SUFFIXES: Tuple[str, ...] = (
    "_w", "_mw", "_kw", "_v", "_mv", "_j", "_kj", "_pj",
    "_s", "_ms", "_c", "_per_cycle", "_per_second", "_per_s",
)

#: Modules allowed to construct RNG state without a literal seed (RL001).
DEFAULT_SEEDING_MODULES: Tuple[str, ...] = ("*/seeding.py", "seeding.py")

#: Modules allowed to call raw write primitives (RL006): the atomic
#: write helpers themselves.
DEFAULT_ATOMIC_MODULES: Tuple[str, ...] = ("*/repro/io/atomic.py",)

#: Modules allowed to call raw ``numpy.linalg`` solvers (RL008): the
#: guarded linear-algebra layer itself.
DEFAULT_LINALG_MODULES: Tuple[str, ...] = (
    "*/stats/linalg.py",
    "stats/linalg.py",
)

#: Modules allowed to import ``concurrent.futures``/``multiprocessing``
#: (RL009): the deterministic executor layer itself.
DEFAULT_PARALLEL_MODULES: Tuple[str, ...] = (
    "*/repro/parallel/*",
    "repro/parallel/*",
)

#: Fast-fit hot modules (RL010): files whose inner loops must answer
#: fits from the Gram cache, never via a per-iteration full refit.
DEFAULT_FASTFIT_HOT_MODULES: Tuple[str, ...] = (
    "*/core/selection.py",
    "*/stats/vif.py",
    "*/stats/crossval.py",
)

#: Acquisition-hot modules (RL015): files whose loops drive bulk
#: simulation and must go through the batched fastsim kernel, never a
#: per-phase ``evaluate``/``compute_power`` call.
DEFAULT_SIM_HOT_MODULES: Tuple[str, ...] = (
    "*/acquisition/campaign.py",
    "*/tracing/scorep.py",
    "*/tracing/plugins.py",
    "*/repro/sched/*",
)

#: Directories whose changes alter campaign physics (RL005).
DEFAULT_PHYSICS_PATHS: Tuple[str, ...] = (
    "src/repro/hardware/",
    "src/repro/workloads/",
)

DEFAULT_VERSION_FILE = "src/repro/experiments/data.py"
DEFAULT_VERSION_SYMBOL = "DATA_VERSION"

#: Audit-gated modules (RL011): files that render or persist fitted
#: results and therefore must consult the :mod:`repro.audit` gate.
DEFAULT_AUDIT_GATED_MODULES: Tuple[str, ...] = (
    "*/core/report.py",
    "*/core/persistence.py",
)

#: Modules allowed to sleep inside a retry loop (RL012): the retry
#: policy that owns backoff, and the scheduler that serves backoff on
#: a virtual clock.
DEFAULT_SLEEP_RETRY_MODULES: Tuple[str, ...] = (
    "*/repro/sched/*",
    "repro/sched/*",
    "*/acquisition/campaign.py",
)

#: Modules allowed to build raw queues/deques without a capacity
#: (RL013): the serving layer's bounded-queue abstraction itself,
#: which must count every drop instead of letting ``deque(maxlen=...)``
#: evict silently.
DEFAULT_QUEUE_MODULES: Tuple[str, ...] = (
    "*/repro/serve/*",
    "repro/serve/*",
)


@dataclass
class LintConfig:
    """Resolved replint configuration."""

    enable: Optional[Set[str]] = None
    """If set, only these rule ids run."""
    disable: Set[str] = field(default_factory=set)
    per_path_ignores: Dict[str, List[str]] = field(default_factory=dict)
    unit_suffixes: Tuple[str, ...] = DEFAULT_UNIT_SUFFIXES
    quantity_stems: Tuple[str, ...] = DEFAULT_QUANTITY_STEMS
    float_suffixes: Tuple[str, ...] = DEFAULT_FLOAT_SUFFIXES
    seeding_modules: Tuple[str, ...] = DEFAULT_SEEDING_MODULES
    atomic_modules: Tuple[str, ...] = DEFAULT_ATOMIC_MODULES
    linalg_modules: Tuple[str, ...] = DEFAULT_LINALG_MODULES
    parallel_modules: Tuple[str, ...] = DEFAULT_PARALLEL_MODULES
    fastfit_hot_modules: Tuple[str, ...] = DEFAULT_FASTFIT_HOT_MODULES
    sim_hot_modules: Tuple[str, ...] = DEFAULT_SIM_HOT_MODULES
    physics_paths: Tuple[str, ...] = DEFAULT_PHYSICS_PATHS
    version_file: str = DEFAULT_VERSION_FILE
    version_symbol: str = DEFAULT_VERSION_SYMBOL
    audit_gated_modules: Tuple[str, ...] = DEFAULT_AUDIT_GATED_MODULES
    sleep_retry_modules: Tuple[str, ...] = DEFAULT_SLEEP_RETRY_MODULES
    queue_modules: Tuple[str, ...] = DEFAULT_QUEUE_MODULES

    # ------------------------------------------------------------------
    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        if self.enable is not None:
            return rule_id in self.enable
        return True

    @staticmethod
    def _match(posix_path: str, pattern: str) -> bool:
        # Repo-relative patterns ("tests/*") must also match when the
        # linter is handed absolute paths, hence the */ fallback.
        return fnmatch.fnmatch(posix_path, pattern) or fnmatch.fnmatch(
            posix_path, f"*/{pattern}"
        )

    def ignored_for_path(self, posix_path: str) -> Set[str]:
        """Rule ids ignored for the given file path."""
        out: Set[str] = set()
        for pattern, ids in self.per_path_ignores.items():
            if self._match(posix_path, pattern):
                out.update(ids)
        return out

    def path_matches_any(self, posix_path: str, patterns: Sequence[str]) -> bool:
        return any(self._match(posix_path, p) for p in patterns)

    # ------------------------------------------------------------------
    @classmethod
    def from_pyproject(cls, pyproject: Optional[Path]) -> "LintConfig":
        """Load ``[tool.replint]`` (missing file/section → defaults)."""
        cfg = cls()
        if pyproject is None or not pyproject.is_file() or _toml is None:
            return cfg
        with pyproject.open("rb") as fh:
            data = _toml.load(fh)
        section = data.get("tool", {}).get("replint", {})
        if not isinstance(section, dict):
            return cfg
        if "enable" in section:
            cfg.enable = {str(r).upper() for r in section["enable"]}
        if "disable" in section:
            cfg.disable = {str(r).upper() for r in section["disable"]}
        ignores = section.get("per-path-ignores", {})
        if isinstance(ignores, dict):
            cfg.per_path_ignores = {
                str(pat): [str(r).upper() for r in ids]
                for pat, ids in ignores.items()
            }
        for toml_key, attr in (
            ("unit-suffixes", "unit_suffixes"),
            ("quantity-stems", "quantity_stems"),
            ("float-suffixes", "float_suffixes"),
            ("seeding-modules", "seeding_modules"),
            ("atomic-modules", "atomic_modules"),
            ("linalg-modules", "linalg_modules"),
            ("parallel-modules", "parallel_modules"),
            ("fastfit-hot-modules", "fastfit_hot_modules"),
            ("sim-hot-modules", "sim_hot_modules"),
            ("physics-paths", "physics_paths"),
            ("audit-gated-modules", "audit_gated_modules"),
            ("sleep-retry-modules", "sleep_retry_modules"),
            ("queue-modules", "queue_modules"),
        ):
            if toml_key in section:
                setattr(cfg, attr, tuple(str(v) for v in section[toml_key]))
        if "version-file" in section:
            cfg.version_file = str(section["version-file"])
        if "version-symbol" in section:
            cfg.version_symbol = str(section["version-symbol"])
        return cfg


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    start = start.resolve()
    for candidate in [start, *start.parents]:
        path = candidate / "pyproject.toml"
        if path.is_file():
            return path
    return None
