"""``replint`` command line: ``python -m repro.lint [paths...]``.

Exit codes follow the linter convention: 0 clean, 1 findings, 2 usage
or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import LintConfig, find_pyproject
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description=(
            "Statistical-rigor static analysis for the power-model "
            "reproduction: seeding discipline, per-cycle unit hygiene, "
            "cache versioning and atomic artifact writes."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "-f", "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. RL001,RL003)",
    )
    parser.add_argument(
        "--disable", metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--diff-base", default="HEAD", metavar="REV",
        help="git revision repo-state rules diff against (default: HEAD)",
    )
    parser.add_argument(
        "--no-repo-rules", action="store_true",
        help="skip repository-state rules (RL005)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = all_rules(diff_base=args.diff_base)
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name:28s} {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    pyproject = find_pyproject(
        paths[0] if paths and paths[0].exists() else Path.cwd()
    )
    config = LintConfig.from_pyproject(pyproject)
    if args.select:
        config.enable = {s.strip().upper() for s in args.select.split(",") if s.strip()}
    if args.disable:
        config.disable |= {
            s.strip().upper() for s in args.disable.split(",") if s.strip()
        }

    repo_root = pyproject.parent if pyproject is not None else Path.cwd()
    try:
        files = iter_python_files(paths)
        findings = lint_paths(
            paths,
            config,
            rules,
            repo_root=repo_root,
            run_repo_rules=not args.no_repo_rules,
        )
    except FileNotFoundError as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2

    render = render_json if args.format == "json" else render_text
    print(render(findings, files_checked=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
