"""Rule registry: one module per rule, discovered via ``all_rules``."""

from __future__ import annotations

from typing import List

from repro.lint.framework import Rule
from repro.lint.rules.rl001_unseeded_rng import NoUnseededRng
from repro.lint.rules.rl002_allow_pickle import RequireAllowPickleFalse
from repro.lint.rules.rl003_unit_suffix import UnitSuffixConsistency
from repro.lint.rules.rl004_float_equality import NoFloatEquality
from repro.lint.rules.rl005_cache_version import CacheVersionDiscipline
from repro.lint.rules.rl006_atomic_write import NonAtomicCacheWrite
from repro.lint.rules.rl007_silent_except import SilentBroadExcept
from repro.lint.rules.rl008_raw_linalg import NoRawLinalgSolvers
from repro.lint.rules.rl009_parallel_primitives import NoRawParallelPrimitives
from repro.lint.rules.rl010_hot_loop_fit import NoHotLoopRefit
from repro.lint.rules.rl011_unaudited_report import NoUnauditedReport
from repro.lint.rules.rl012_raw_sleep_retry import NoRawSleepRetry
from repro.lint.rules.rl013_unbounded_queue import NoUnboundedQueue
from repro.lint.rules.rl014_raw_shm import NoRawSharedMemory
from repro.lint.rules.rl015_no_scalar_hot_sim import NoScalarHotSim

__all__ = [
    "all_rules",
    "NoUnseededRng",
    "RequireAllowPickleFalse",
    "UnitSuffixConsistency",
    "NoFloatEquality",
    "CacheVersionDiscipline",
    "NonAtomicCacheWrite",
    "SilentBroadExcept",
    "NoRawLinalgSolvers",
    "NoRawParallelPrimitives",
    "NoHotLoopRefit",
    "NoUnauditedReport",
    "NoRawSleepRetry",
    "NoUnboundedQueue",
    "NoRawSharedMemory",
    "NoScalarHotSim",
]


def all_rules(*, diff_base: str = "HEAD") -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [
        NoUnseededRng(),
        RequireAllowPickleFalse(),
        UnitSuffixConsistency(),
        NoFloatEquality(),
        CacheVersionDiscipline(base=diff_base),
        NonAtomicCacheWrite(),
        SilentBroadExcept(),
        NoRawLinalgSolvers(),
        NoRawParallelPrimitives(),
        NoHotLoopRefit(),
        NoUnauditedReport(),
        NoRawSleepRetry(),
        NoUnboundedQueue(),
        NoRawSharedMemory(),
        NoScalarHotSim(),
    ]
