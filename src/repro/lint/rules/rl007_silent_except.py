"""RL007 — no silently swallowed broad exception handlers.

The fault-tolerance layer works precisely because every failure is
*accounted for*: retried, quarantined, or surfaced in the campaign
report.  A bare ``except:`` or ``except Exception:`` whose body neither
re-raises nor logs defeats that accounting — a fault disappears without
a trace, which in a measurement campaign means silently corrupted data
rather than a visible hole.

The rule flags handlers that catch everything (``except:``,
``except Exception``, ``except BaseException``, or a tuple containing
either) and whose body contains no ``raise`` and no logging/warning
call.  Narrow handlers (``except OSError:``) are fine — catching a
*specific* error and moving on is a decision about that error, not a
blanket mute.  Where a broad silent handler is genuinely intended
(``contextlib.suppress`` territory), it carries an inline
``# replint: ignore[RL007] -- <why>`` suppression, so the
justification is in the diff.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["SilentBroadExcept"]

#: Exception types whose handlers count as "catches everything".
_BROAD_TYPES = {"Exception", "BaseException"}

#: Method names that count as reporting the error (logger idiom).
_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}


def _is_broad(handler: ast.ExceptHandler, ctx: FileContext) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = dotted_name(node, ctx.aliases)
        if name is not None and name.split(".")[-1] in _BROAD_TYPES:
            return True
    return False


def _is_reporting_call(node: ast.Call, ctx: FileContext) -> bool:
    name = dotted_name(node.func, ctx.aliases)
    if name is not None and (
        name == "warnings.warn" or name.startswith("logging.")
    ):
        return True
    # logger.warning(...), self.log.error(...), …: method-name based,
    # since logger objects cannot be resolved statically.
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _LOG_METHODS
    )


def _handles_visibly(handler: ast.ExceptHandler, ctx: FileContext) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and _is_reporting_call(node, ctx):
            return True
    return False


class SilentBroadExcept(FileRule):
    id = "RL007"
    name = "silent-broad-except"
    description = (
        "bare except / except Exception that neither re-raises nor "
        "logs; faults must be surfaced, not swallowed"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node, ctx):
                continue
            if _handles_visibly(node, ctx):
                continue
            findings.append(
                ctx.finding(
                    self,
                    node,
                    "broad exception handler swallows the error; re-raise, "
                    "log it, or narrow the exception type (suppress with a "
                    "reason if the mute is intentional)",
                )
            )
        return findings
