"""RL009 — concurrency primitives only inside ``repro.parallel``.

The determinism contract (DESIGN.md §11) holds because every fan-out in
the repository goes through the executor layer: results assembled by
work-item index, side effects confined to the calling process, one
environment switch (``REPRO_PARALLEL``) flipping every pipeline at
once.  A stray ``ThreadPoolExecutor`` or ``multiprocessing.Pool`` at a
random call site re-introduces completion-order nondeterminism and
escapes the pool cache, the bit-identity tests and the timing reports.
This rule flags any import of ``concurrent.futures`` or
``multiprocessing`` outside the configured ``parallel-modules`` (the
executor layer itself).  Plain ``threading`` stays allowed — locks and
events are synchronisation, not fan-out.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding

__all__ = ["NoRawParallelPrimitives"]

#: Top-level modules whose import marks a hand-rolled fan-out.
_FORBIDDEN_ROOTS = ("concurrent", "multiprocessing")


def _root(module: str) -> str:
    return module.split(".", 1)[0]


class NoRawParallelPrimitives(FileRule):
    id = "RL009"
    name = "no-raw-parallel-primitives"
    description = (
        "direct concurrent.futures/multiprocessing use belongs in "
        "repro.parallel; use resolve_executor/BaseExecutor.map elsewhere"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.parallel_modules
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay inside the package
                names = [node.module]
            else:
                continue
            for name in names:
                if _root(name) in _FORBIDDEN_ROOTS:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"import of {name!r} outside repro.parallel; "
                            "go through resolve_executor()/executor.map() "
                            "so fan-out stays deterministic (ordered by "
                            "work-item index) and pool-cached",
                        )
                    )
                    break
        return findings
