"""RL012 — no hand-rolled sleep-retry loops.

Bounded retry with backoff is owned by exactly two places: the
campaign's :class:`~repro.acquisition.campaign.RetryPolicy` (which
also accounts every backoff second into the report) and the cluster
scheduler (which serves backoff on a *virtual* clock, so chaos tests
finish in milliseconds).  A ``time.sleep`` inside a ``for``/``while``
body anywhere else is an unaccounted, untestable retry loop: it hides
wall-clock in a code path the timing reports never see, stalls the
deterministic test suite, and duplicates policy that already exists
with quarantine semantics.  Flagged outside the configured
``sleep-retry-modules``; injected ``sleep_fn`` callables stay fine —
they are recordable and fake-able, which is the point.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoRawSleepRetry"]

_LOOPS = (ast.For, ast.While, ast.AsyncFor)


class NoRawSleepRetry(FileRule):
    id = "RL012"
    name = "no-raw-sleep-retry"
    description = (
        "time.sleep inside a loop is a hand-rolled retry; use "
        "RetryPolicy (accounted backoff) or the scheduler's virtual "
        "clock"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.sleep_retry_modules
        ):
            return []
        findings: List[Finding] = []
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, _LOOPS):
                continue
            # Only the loop's own body retries; the else-clause runs
            # once after completion and is not a retry path.
            for node in ast.walk(ast.Module(body=loop.body, type_ignores=[])):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, ctx.aliases)
                if name == "time.sleep":
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "time.sleep in a loop body is an unaccounted "
                            "retry/poll; route backoff through "
                            "RetryPolicy.delay_s (accounted, testable) "
                            "or an injected sleep_fn",
                        )
                    )
        return findings
