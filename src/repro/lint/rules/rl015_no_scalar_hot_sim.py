"""RL015 — no per-phase scalar simulation in acquisition hot loops.

The batched fastsim kernel (DESIGN.md §17) exists because campaign
acquisition used to evaluate the microarchitecture and power models one
phase at a time — thousands of dict-arithmetic ``evaluate`` /
``compute_power`` calls per campaign, which capped throughput well
below what the 10⁵-cell regime needs.  Those call sites now go through
:meth:`Platform.execute`, which stacks a run's phases into ndarrays and
answers repeats from the phase-state memo; a direct
``evaluate``/``compute_power`` call inside a loop of one of the
configured ``sim-hot-modules`` would silently reintroduce the scalar
path.  The scalar reference implementations themselves
(``hardware/microarch.py``, ``hardware/power.py``, ``hardware/platform.py``)
stay out of scope — they *are* the bit-identity oracle.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoScalarHotSim"]

#: Scalar model entry points that must not run per loop iteration
#: inside the acquisition-hot modules.
_FORBIDDEN = ("evaluate", "compute_power")


class NoScalarHotSim(FileRule):
    id = "RL015"
    name = "no-scalar-hot-sim"
    description = (
        "direct evaluate/compute_power calls inside acquisition hot "
        "loops defeat the batched fastsim kernel; execute runs through "
        "Platform.execute (repro.hardware.fastsim) instead"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if not ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.sim_hot_modules
        ):
            return []
        findings: List[Finding] = []
        seen = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                seen.add(id(node))
                name = dotted_name(node.func, ctx.aliases)
                if name is None:
                    continue
                terminal = name.rsplit(".", 1)[-1]
                if terminal in _FORBIDDEN:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"{terminal} called inside a hot loop of "
                            f"{ctx.posix_path.rsplit('/', 1)[-1]}; "
                            "simulate through Platform.execute so the "
                            "batched kernel and phase-state memo "
                            "(repro.hardware.fastsim) stay on the path",
                        )
                    )
        return findings
