"""RL006 — no raw artifact writes outside the atomic-write helpers.

A process killed mid-``np.savez_compressed`` leaves a truncated
``.npz`` in the campaign cache; every later run then dies with
``zipfile.BadZipFile`` instead of regenerating — exactly the failure
this repository shipped with.  The cure is structural: *all* durable
artifact writes (cache files, exported tables, serialized models,
trace dumps) go through :mod:`repro.io.atomic`, which writes to a
sibling temp file and publishes with the atomic ``os.replace``.

Because an AST pass cannot reliably prove which paths point into a
cache directory, the enforced invariant is the simpler, stronger one:
raw write primitives — ``np.save*``, ``open(..., "w"/"a"/"x")``,
``Path.write_text`` / ``write_bytes`` — may appear only inside the
designated helper module (``atomic-modules`` config glob).  Test
fixture writes don't need crash-safety and are excused via
``per-path-ignores``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NonAtomicCacheWrite"]

_NUMPY_WRITERS = {"numpy.save", "numpy.savez", "numpy.savez_compressed"}
_WRITE_METHODS = {"write_text", "write_bytes"}
_WRITE_MODE_CHARS = set("wax")


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode of an open()-style call, if determinable."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    elif node.func and isinstance(node.func, ast.Attribute) and node.args:
        mode_node = node.args[0]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return "r"  # open() defaults to read
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None  # dynamic mode: assume the worst


class NonAtomicCacheWrite(FileRule):
    id = "RL006"
    name = "non-atomic-cache-write"
    description = (
        "durable writes must go through repro.io.atomic (temp file + "
        "os.replace) so a crash can never publish a truncated artifact"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(ctx.posix_path, ctx.config.atomic_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, ctx.aliases)
            if name in _NUMPY_WRITERS:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"direct {name.split('.', 1)[1]}() is not crash-safe; "
                        "use repro.io.atomic.atomic_savez",
                    )
                )
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in _WRITE_METHODS:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f".{node.func.attr}() publishes a partial file on "
                        "crash; use repro.io.atomic.atomic_write_text/"
                        "atomic_write_bytes",
                    )
                )
                continue
            is_open = name == "open" or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "open"
            )
            if is_open:
                mode = _open_mode(node)
                if mode is None or _WRITE_MODE_CHARS & set(mode):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "open() for writing is not crash-safe; use "
                            "repro.io.atomic.atomic_open",
                        )
                    )
        return findings
