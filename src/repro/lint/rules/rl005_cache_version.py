"""RL005 — physics changes must bump ``DATA_VERSION``.

The on-disk campaign cache is keyed by root seed *and* a data-version
stamp.  If a diff changes the simulated physics (anything under
``src/repro/hardware/`` or ``src/repro/workloads/``) without bumping
``DATA_VERSION`` in ``src/repro/experiments/data.py``, every developer
and CI cache silently keeps serving pre-change campaign data — the
figures regenerate "successfully" from stale physics, which is the
worst reproducibility failure mode because nothing errors.

This is a *repository-state* rule: it inspects the working diff
against a base revision (``HEAD`` by default) rather than a single
file's AST.  Outside a git checkout, or with a clean tree, it reports
nothing.  The rule is deliberately conservative — comment-only physics
edits also demand a bump; suppress with ``--disable RL005`` for such
one-offs.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import List, Optional

from repro.lint.framework import Finding, RepoRule

__all__ = ["CacheVersionDiscipline"]


def _git(root: Path, *args: str) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


class CacheVersionDiscipline(RepoRule):
    id = "RL005"
    name = "cache-version-discipline"
    description = (
        "diffs touching physics modules must bump DATA_VERSION so "
        "cached campaign data cannot leak across revisions"
    )

    def __init__(self, base: str = "HEAD") -> None:
        self.base = base

    def check_repo(self, root: Path, config) -> List[Finding]:
        changed = _git(root, "diff", "--name-only", self.base, "--")
        if changed is None:
            return []  # not a git checkout, or unknown base: nothing to say
        changed_paths = [line.strip() for line in changed.splitlines() if line.strip()]
        physics = [
            p
            for p in changed_paths
            if any(p.startswith(prefix) for prefix in config.physics_paths)
        ]
        if not physics:
            return []
        version_diff = _git(
            root, "diff", self.base, "--", config.version_file
        ) or ""
        bump_re = re.compile(
            rf"^\+.*\b{re.escape(config.version_symbol)}\b", re.MULTILINE
        )
        if bump_re.search(version_diff):
            return []
        line = self._version_line(root / config.version_file, config.version_symbol)
        shown = ", ".join(physics[:3]) + ("…" if len(physics) > 3 else "")
        return [
            Finding(
                path=config.version_file,
                line=line,
                col=1,
                rule_id=self.id,
                message=(
                    f"physics modules changed ({shown}) but "
                    f"{config.version_symbol} was not bumped; stale campaign "
                    "caches would leak across revisions"
                ),
            )
        ]

    @staticmethod
    def _version_line(version_file: Path, symbol: str) -> int:
        try:
            source = version_file.read_text()
        except OSError:
            return 1
        for lineno, text in enumerate(source.splitlines(), start=1):
            if re.match(rf"\s*{re.escape(symbol)}\s*[:=]", text):
                return lineno
        return 1
