"""RL008 — raw ``numpy.linalg`` solvers only inside the guarded layer.

``np.linalg.solve`` raises ``LinAlgError`` on singular input and
``np.linalg.inv`` happily amplifies a near-singular matrix into garbage
coefficients.  The robustness contract (DESIGN.md §10) routes every
solve through :mod:`repro.stats.linalg` — ``guarded_lstsq`` and
``safe_solve`` degrade deterministically (ridge → pinv) and record what
they did — so a degraded dataset can never crash or silently poison a
fit from some far-away call site.  This rule flags direct calls to the
raising/fragile solver entry points (``solve``, ``inv``, ``cholesky``,
``tensorsolve``, ``tensorinv``) anywhere outside the configured
``linalg-modules``.  Rank-revealing primitives (``svd``, ``qr``,
``eigh``, ``norm``, ``matrix_rank``, ``lstsq``, ``pinv``) stay allowed:
they are the tools the guarded layer itself is built from and they do
not raise on rank deficiency.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoRawLinalgSolvers"]

#: Raising/fragile solver entry points that must go through the guarded
#: layer.  ``numpy.linalg`` and ``scipy.linalg`` spell them the same.
_FORBIDDEN = ("solve", "inv", "cholesky", "tensorsolve", "tensorinv")

_PREFIXES = ("numpy.linalg.", "scipy.linalg.")


class NoRawLinalgSolvers(FileRule):
    id = "RL008"
    name = "no-raw-linalg-solvers"
    description = (
        "direct numpy.linalg/scipy.linalg solve/inv calls belong in "
        "repro.stats.linalg; use guarded_lstsq/safe_solve elsewhere"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.linalg_modules
        ):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, ctx.aliases)
            if name is None:
                continue
            for prefix in _PREFIXES:
                if name.startswith(prefix) and name[len(prefix):] in _FORBIDDEN:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"raw {name} call outside repro.stats.linalg; "
                            "use guarded_lstsq/safe_solve so degraded "
                            "designs degrade deterministically instead of "
                            "raising LinAlgError",
                        )
                    )
                    break
        return findings
