"""RL003 — physical-quantity names carry a unit suffix; no mixed time bases.

Equation 1 regresses power against event rates normalized **per cpu
cycle**; the raw plugins record events **per second**.  Hofmann et
al. (2018) and Mazzola et al. (2024) both identify unit and
normalization slips as the dominant source of irreproducible power
models, and a name like ``power`` or ``freq`` is exactly where such a
slip hides — nothing stops a caller passing MHz where Hz is expected.

Two checks:

* every binding (assignment target, loop variable, function parameter,
  annotated field) whose final name component is a bare quantity stem
  (``power``, ``voltage``, ``energy``, ``frequency``/``freq``,
  ``temperature``) must instead carry a registered unit suffix
  (``_w``, ``_v``, ``_mhz``, ``_per_cycle``, ``_per_second``, …) or be
  renamed to a non-quantity word (``power_breakdown``, ``power_model``);
* additive arithmetic or comparisons mixing a ``_per_cycle`` operand
  with a ``_per_second`` operand is an error — that is precisely the
  Eq. 1 normalization bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.framework import FileContext, FileRule, Finding

__all__ = ["UnitSuffixConsistency"]

_PER_CYCLE = ("_per_cycle",)
_PER_SECOND = ("_per_second", "_per_s")


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The identifier a value expression is named by, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        # x.rate_per_cycle(...) — the call result carries the suffix
        return _terminal_name(node.func)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _time_base(node: ast.AST) -> Optional[str]:
    name = _terminal_name(node)
    if name is None:
        return None
    lowered = name.lower()
    if lowered.endswith(_PER_CYCLE):
        return "per_cycle"
    if lowered.endswith(_PER_SECOND):
        return "per_second"
    return None


class UnitSuffixConsistency(FileRule):
    id = "RL003"
    name = "unit-suffix-consistency"
    description = (
        "physical-quantity names need a registered unit suffix; "
        "per-cycle and per-second operands must not mix"
    )

    # ------------------------------------------------------------------
    def _bad_stem(self, name: str, ctx: FileContext) -> Optional[str]:
        """The offending stem if ``name`` is an unsuffixed quantity."""
        if name.startswith("_"):
            stripped = name.lstrip("_")
        else:
            stripped = name
        last = stripped.rsplit("_", 1)[-1].lower()
        if last in ctx.config.quantity_stems:
            return last
        return None

    def _bindings(self, tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
        """All (name, node) binding sites the rule inspects."""

        def targets(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
            if isinstance(node, ast.Name):
                yield node.id, node
            elif isinstance(node, ast.Starred):
                yield from targets(node.value)
            elif isinstance(node, (ast.Tuple, ast.List)):
                for elt in node.elts:
                    yield from targets(elt)

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                a = node.args
                for arg in [
                    *a.posonlyargs, *a.args, *a.kwonlyargs,
                    *([a.vararg] if a.vararg else []),
                    *([a.kwarg] if a.kwarg else []),
                ]:
                    yield arg.arg, arg
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    yield from targets(t)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                yield from targets(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from targets(node.target)
            elif isinstance(node, ast.comprehension):
                yield from targets(node.target)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                yield from targets(node.optional_vars)
            elif isinstance(node, ast.NamedExpr):
                yield from targets(node.target)

    # ------------------------------------------------------------------
    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        suffixes = ", ".join(f"_{s}" for s in ctx.config.unit_suffixes[:6])
        for name, node in self._bindings(ctx.tree):
            stem = self._bad_stem(name, ctx)
            if stem is None:
                continue
            findings.append(
                ctx.finding(
                    self,
                    node,
                    f"quantity name {name!r} lacks a unit suffix "
                    f"(e.g. {suffixes}, …); ambiguous units are how "
                    "Eq. 1 normalization bugs start",
                )
            )
        for node in ast.walk(ctx.tree):
            operands: List[ast.AST] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                operands = [node.left, node.right]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
            bases = {b for b in (_time_base(o) for o in operands) if b}
            if len(bases) > 1:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "mixing _per_cycle and _per_second operands; convert "
                        "to one time base first (Eq. 1 normalizes per cycle)",
                    )
                )
        return findings
