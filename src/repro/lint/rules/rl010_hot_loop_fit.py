"""RL010 — no per-candidate ``fit_ols`` in fast-fit hot loops.

The Gram-cache fast-fit kernels (DESIGN.md §12) exist because greedy
selection, VIF screening and k-fold CV used to re-fit Equation 1 from
scratch inside their inner loops — hundreds of redundant O(n·k²)
solves over column subsets of one design matrix.  Those call sites now
answer fits from cached sufficient statistics, and a direct
``fit_ols``/``fit_robust`` call inside a loop of one of the configured
``fastfit-hot-modules`` would silently reintroduce the O(n) refit the
refactor removed.  Per-fit fallbacks are still legitimate — the fast
kernels decline degraded fits on purpose — but they are routed through
the module-level fallback helpers (which the kernels certify against),
not open-coded loops, so this rule flags any ``fit_ols``/``fit_robust``
call lexically inside a ``for``/``while`` body in those modules.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoHotLoopRefit"]

#: Full-refit entry points that must not run per loop iteration inside
#: the fast-fit hot modules.
_FORBIDDEN = ("fit_ols", "fit_robust")


class NoHotLoopRefit(FileRule):
    id = "RL010"
    name = "no-hot-loop-refit"
    description = (
        "direct fit_ols/fit_robust calls inside selection/VIF/CV hot "
        "loops defeat the Gram-cache fast path; fit from the cached "
        "sufficient statistics (repro.stats.fastfit) instead"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if not ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.fastfit_hot_modules
        ):
            return []
        findings: List[Finding] = []
        seen = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                seen.add(id(node))
                name = dotted_name(node.func, ctx.aliases)
                if name is None:
                    continue
                terminal = name.rsplit(".", 1)[-1]
                if terminal in _FORBIDDEN:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"{terminal} called inside a hot loop of "
                            f"{ctx.posix_path.rsplit('/', 1)[-1]}; score "
                            "from the Gram cache "
                            "(repro.stats.fastfit) and fall back through "
                            "the module-level helpers instead of "
                            "re-fitting per iteration",
                        )
                    )
        return findings
