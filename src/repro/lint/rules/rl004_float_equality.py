"""RL004 — no ``==`` / ``!=`` between float-typed expressions.

Power, voltage and rate values pass through enough floating-point
arithmetic (windowed means, regression, DVFS interpolation) that exact
equality is either vacuously true (comparing a value to itself) or
flakily false.  Comparisons should use ``np.isclose`` /
``math.isclose`` with an explicit tolerance.

An operand counts as float-typed when it is a float literal, a
``float(...)`` call, or a name/attribute carrying one of the
registered float unit suffixes (``_w``, ``_v``, ``_per_cycle``, …).
Discrete-valued quantities (``_mhz`` frequencies, thread counts) are
intentionally *not* in the float-suffix set: they are exact integers
by construction and may be compared directly.

Intentional exact comparisons — the exact-zero sentinel guards in the
stats layer, bit-reproducibility assertions — carry an inline
``# replint: ignore[RL004] -- <why>`` suppression.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoFloatEquality"]

#: Comparators that make an equality check acceptable (test idiom).
_APPROX_CALLS = {"pytest.approx", "approx"}


def _is_float_typed(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_typed(node.operand, ctx)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func, ctx.aliases)
        return name == "float"
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Subscript):
        return _is_float_typed(node.value, ctx)
    if name is None:
        return False
    lowered = name.lower()
    return any(lowered.endswith(s) for s in ctx.config.float_suffixes)


def _is_approx(node: ast.AST, ctx: FileContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func, ctx.aliases)
    return name in _APPROX_CALLS


class NoFloatEquality(FileRule):
    id = "RL004"
    name = "no-float-equality"
    description = (
        "== / != on float-typed expressions; use np.isclose or "
        "math.isclose with an explicit tolerance"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_approx(left, ctx) or _is_approx(right, ctx):
                    continue
                if _is_float_typed(left, ctx) or _is_float_typed(right, ctx):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "float equality comparison; use np.isclose/"
                            "math.isclose, or suppress with a reason if the "
                            "exact comparison is intentional",
                        )
                    )
                    break
        return findings
