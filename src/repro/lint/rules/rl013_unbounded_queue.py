"""RL013 — no unbounded in-memory queues.

An unbounded queue between a producer and a slower consumer is a
memory leak with extra steps: under sustained overload it grows until
the process dies, and it hides the overload from every health metric
until then.  The serving layer owns exactly one answer to this —
:class:`repro.serve.queue.BoundedIngestQueue`, whose explicit capacity
makes the overload *visible* (rejected/shed/diverted counts feed the
``FleetReport`` and the AU013 grade).  Everywhere else, a
``queue.Queue()`` without a positive ``maxsize`` or a
``collections.deque()`` without a ``maxlen`` is flagged.  Modules
matching the configured ``queue-modules`` (the serve layer itself) are
exempt — they implement the bounded abstraction and must account for
every drop, which ``deque(maxlen=...)``'s silent eviction cannot do.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoUnboundedQueue"]

#: Queue constructors whose first argument / ``maxsize`` keyword bounds
#: the queue (0 and negative mean "unbounded" for these classes).
_MAXSIZE_QUEUES = (
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "asyncio.Queue",
    "asyncio.LifoQueue",
    "asyncio.PriorityQueue",
    "multiprocessing.Queue",
)


def _is_unbounding_constant(node: ast.AST) -> bool:
    """True when the expression is a constant that disables the bound
    (``None``, ``0`` or a negative literal)."""
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None:
            return True
        return isinstance(value, (int, float)) and value <= 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = node.operand
        return isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float)
        )
    return False


def _bound_argument(
    call: ast.Call, keyword: str, position: Optional[int]
) -> Optional[ast.AST]:
    """The expression passed as the bounding argument, or ``None``."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if position is not None and len(call.args) > position:
        return call.args[position]
    return None


class NoUnboundedQueue(FileRule):
    id = "RL013"
    name = "no-unbounded-queue"
    description = (
        "queue.Queue()/deque() without a capacity grows without bound "
        "under overload; use BoundedIngestQueue or pass maxsize/maxlen"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(ctx.posix_path, ctx.config.queue_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, ctx.aliases)
            if name in _MAXSIZE_QUEUES:
                if name.endswith("SimpleQueue"):
                    # SimpleQueue takes no maxsize at all — inherently
                    # unbounded, so the construction itself is the bug.
                    findings.append(self._finding(ctx, node, name))
                    continue
                bound = _bound_argument(node, "maxsize", 0)
                if bound is None or _is_unbounding_constant(bound):
                    findings.append(self._finding(ctx, node, name))
            elif name == "collections.deque":
                bound = _bound_argument(node, "maxlen", 1)
                if bound is None or _is_unbounding_constant(bound):
                    findings.append(self._finding(ctx, node, name))
        return findings

    def _finding(self, ctx: FileContext, node: ast.Call, name: str) -> Finding:
        return ctx.finding(
            self,
            node,
            f"{name} without a positive capacity is unbounded under "
            "overload; pass maxsize/maxlen or route ingestion through "
            "repro.serve.BoundedIngestQueue (counted backpressure)",
        )
