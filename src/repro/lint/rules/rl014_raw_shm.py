"""RL014 — shared-memory segments only inside ``repro.parallel``.

The arena's leak-proof lifecycle (DESIGN.md §16) holds because every
``multiprocessing.shared_memory`` segment in the repository is owned by
a :class:`~repro.parallel.arena.SharedArena`: created there, tracked in
the live-arena registry, and unlinked by ``close()`` /
``release_arenas()`` / ``shutdown_pools()`` / ``atexit`` — so a normal
exit, a worker crash or an injected fault all leave ``/dev/shm`` clean.
A raw ``SharedMemory(...)`` at a random call site escapes all of that:
nothing unlinks it on the error paths, the leak test cannot attribute
it, and a crashed process can strand the segment until reboot.  This
rule flags any import or attribute use of
``multiprocessing.shared_memory`` outside the configured
``parallel-modules``; publish arrays through
``SharedArena.publish()``/``ArrayHandle.resolve()`` instead.

RL009 already fences off ``multiprocessing`` as a whole; RL014 exists
so a suppression of the broad rule (e.g. a ``cpu_count`` probe) cannot
quietly smuggle in raw segment ownership — the narrow rule still fires.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.framework import FileContext, FileRule, Finding

__all__ = ["NoRawSharedMemory"]

_ADVICE = (
    "own segments through repro.parallel (SharedArena.publish() / "
    "ArrayHandle.resolve()) so unlink is guaranteed on close, "
    "shutdown_pools(), atexit and worker crash"
)


class NoRawSharedMemory(FileRule):
    id = "RL014"
    name = "no-raw-shm"
    description = (
        "multiprocessing.shared_memory belongs in repro.parallel; use "
        "SharedArena/ArrayHandle elsewhere so segments cannot leak"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.parallel_modules
        ):
            return []
        findings: List[Finding] = []
        mp_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("multiprocessing.shared_memory"):
                        findings.append(
                            ctx.finding(
                                self,
                                node,
                                f"import of {alias.name!r} outside "
                                f"repro.parallel; {_ADVICE}",
                            )
                        )
                        break
                    if alias.name.split(".", 1)[0] == "multiprocessing":
                        mp_aliases.add(alias.asname or "multiprocessing")
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay inside the package
                if node.module.startswith("multiprocessing.shared_memory"):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            f"import from {node.module!r} outside "
                            f"repro.parallel; {_ADVICE}",
                        )
                    )
                elif node.module == "multiprocessing" and any(
                    a.name == "shared_memory" for a in node.names
                ):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "import of 'multiprocessing.shared_memory' "
                            f"outside repro.parallel; {_ADVICE}",
                        )
                    )
        if mp_aliases:
            # `import multiprocessing as mp` dodges the import checks
            # (and may carry an RL009 suppression for a cpu_count
            # probe); attribute use of mp.shared_memory still counts.
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "shared_memory"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in mp_aliases
                ):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "use of 'multiprocessing.shared_memory' "
                            f"outside repro.parallel; {_ADVICE}",
                        )
                    )
        findings.sort(key=lambda f: (f.line, f.col))
        return findings
