"""RL001 — no unseeded randomness outside the seeding module.

Bit-reproducibility of every table and figure (Section IV) requires
every random draw to descend from the root seed via
:func:`repro.seeding.derive_rng`.  Two constructs silently break that:

* ``np.random.<fn>()`` module-state calls (``np.random.normal``,
  ``np.random.seed``, …) share one hidden global generator, so the
  draw order of unrelated components becomes coupled;
* ``np.random.default_rng()`` *without* an explicit seed pulls fresh
  OS entropy, so the same campaign produces different numbers on
  every run.

The seeding module itself (``seeding-modules`` config glob) is exempt:
it is the one place allowed to touch generator construction.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["NoUnseededRng"]

#: numpy.random module-level functions that mutate/use the global state.
_MODULE_STATE_FNS = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "random_integers", "ranf", "sample", "choice", "shuffle",
        "permutation", "bytes", "normal", "uniform", "standard_normal",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "beta", "binomial", "chisquare", "dirichlet", "exponential",
        "gamma", "geometric", "gumbel", "hypergeometric", "laplace",
        "logistic", "lognormal", "multinomial", "multivariate_normal",
        "negative_binomial", "pareto", "poisson", "power", "rayleigh",
        "triangular", "vonmises", "wald", "weibull", "zipf",
        "get_state", "set_state",
    }
)


class NoUnseededRng(FileRule):
    id = "RL001"
    name = "no-unseeded-rng"
    description = (
        "numpy module-state RNG calls and seedless default_rng() break "
        "root-seed reproducibility; derive generators via repro.seeding"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.config.path_matches_any(ctx.posix_path, ctx.config.seeding_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, ctx.aliases)
            if name is None:
                continue
            if name.startswith("numpy.random.") and name.rsplit(".", 1)[1] in _MODULE_STATE_FNS:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"module-state RNG call {name}() couples unrelated "
                        "random streams; use a Generator from "
                        "repro.seeding.derive_rng instead",
                    )
                )
            elif name.endswith("default_rng") and (
                name == "numpy.random.default_rng" or name == "default_rng"
            ):
                if not node.args and not node.keywords:
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "default_rng() without an explicit seed draws OS "
                            "entropy and is not reproducible; pass a seed "
                            "derived from the root seed",
                        )
                    )
        return findings
