"""RL002 — every ``np.load`` must pass ``allow_pickle=False``.

The campaign cache is a plain-array ``.npz``; nothing in it needs
pickling.  ``np.load`` defaults to ``allow_pickle=False`` on modern
numpy, but relying on the default is fragile (older numpy flipped it)
and spelling it out documents that cache files are treated as *data*,
never as code — a corrupted or attacker-supplied cache must fail the
array parse, not execute a pickle payload.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding, dotted_name

__all__ = ["RequireAllowPickleFalse"]


class RequireAllowPickleFalse(FileRule):
    id = "RL002"
    name = "require-allow-pickle-false"
    description = "np.load must pass allow_pickle=False explicitly"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func, ctx.aliases) != "numpy.load":
                continue
            kw = next(
                (k for k in node.keywords if k.arg == "allow_pickle"), None
            )
            if kw is None:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "np.load without explicit allow_pickle=False; cache "
                        "files are data, not code",
                    )
                )
            elif not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            ):
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "np.load must pass the literal allow_pickle=False",
                    )
                )
        return findings
