"""RL011 — modules that report or persist fitted results must consult
the audit gate.

The statistical-rigor audit (:mod:`repro.audit`, DESIGN.md §13) only
protects results that actually pass through it.  The configured
``audit-gated-modules`` — by default the table renderer
(``core/report.py``) and model persistence (``core/persistence.py``) —
are the two spots where a fitted result leaves the pipeline for human
eyes or deployment, so each must import ``repro.audit`` (the gate
check, the verdict renderer, or the report type) somewhere in the
file.  A gated module with no such import is a path by which an
unaudited R² or a fail-verdict model escapes the repository.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.framework import FileContext, FileRule, Finding

__all__ = ["NoUnauditedReport"]

_GATE_PACKAGE = "repro.audit"


def _imports_gate(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == _GATE_PACKAGE
                or alias.name.startswith(_GATE_PACKAGE + ".")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == _GATE_PACKAGE or mod.startswith(_GATE_PACKAGE + "."):
                return True
    return False


class NoUnauditedReport(FileRule):
    id = "RL011"
    name = "no-unaudited-report"
    description = (
        "result-reporting/persistence modules must consult the "
        "repro.audit gate; an unaudited exit path lets fail-verdict "
        "results escape"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if not ctx.config.path_matches_any(
            ctx.posix_path, ctx.config.audit_gated_modules
        ):
            return []
        if _imports_gate(ctx.tree):
            return []
        return [
            ctx.finding(
                self,
                ctx.tree,
                f"{ctx.posix_path.rsplit('/', 1)[-1]} reports or "
                "persists fitted results but never imports repro.audit; "
                "route results through the audit gate (render_audit / "
                "save_model's gate) so no unaudited number leaves the "
                "pipeline",
            )
        ]
